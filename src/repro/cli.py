"""Command-line interface mirroring the original artifact's ``main.py``,
plus subcommands for the subsystems grown on top of it.

The DeFiNES artifact is driven as::

    python main.py --accelerator inputs.HW.Edge_TPU_like \
                   --workload inputs.WL...workload_mccnn \
                   --dfmode 1 --tilex 16 --tiley 8

This reproduction exposes the same experiment as::

    python -m repro --accelerator edge_tpu_like --workload mccnn \
                    --mode h_cached_v_recompute --tilex 16 --tiley 8

``--tilex``/``--tiley`` accept comma-separated lists; more than one grid
point turns the run into a tile-size sweep executed by the exploration
runtime, which ``--jobs N`` spreads over worker processes.  ``--cache``
names a JSON mapping-cache file that persists LOMA search results
across runs (the second run of the same experiment skips the search).

Subcommands (the first CLI token selects one; no token = the classic
evaluation above):

``repro dse``
    Multi-objective design-space exploration: Pareto-frontier search
    over tile sizes, overlap modes, stack partitions and accelerators
    with exhaustive, random or genetic strategies (deterministic per
    ``--seed``, parallel via ``--jobs``).  The stack-partition axis is
    the ``--fuse-depths`` cap grid by default; ``--partition-genes``
    searches every explicit partition of the workload's branch-free
    segments instead (``--stacks 'auto;1;1,3'`` pins a candidate
    list).  ``--workloads a,b:2,c``
    searches a weighted multi-workload scenario; ``--memory-budget``,
    ``--latency-cap`` and ``--energy-cap`` add feasibility constraints
    (infeasible designs are listed by ``--show-infeasible``); the
    per-generation hypervolume convergence is printed after the
    frontier.
``repro cache-info``
    Inspect a persistent mapping-cache file (format version, entries,
    size, last session's hit/miss stats).
``repro stats``
    Inspect telemetry artifacts: every evaluating subcommand accepts
    ``--trace OUT.jsonl`` (structured span trace) and ``--metrics
    OUT.prom`` (counters/gauges/histograms, Prometheus text or JSON);
    ``repro stats FILE`` renders top spans by self time, wall-clock
    coverage, cache hit rates and per-shard service utilization.
    Telemetry is identity-neutral: results are bit-identical with it
    on or off.
``repro serve``
    Run a standalone live cache server: every run pointed at it with
    ``--cache-server HOST:PORT`` (classic sweeps and ``dse`` alike)
    reads and writes one shared mapping table, so workers — across
    processes *and* machines — share LOMA results while runs are still
    in flight.  ``--cache FILE`` makes the server persist periodic
    atomic snapshots in the unchanged mapping-cache format;
    ``--metrics-port N`` adds an HTTP ``/metrics`` Prometheus endpoint.
``repro runs``
    The durable run ledger: every ``evaluate``/``dse`` invocation
    appends a JSON record under ``.repro/runs/`` (manifest, versions,
    convergence series, final metrics, outcome — crashed runs
    included).  ``runs list|show|diff|gc`` browse it; ``runs regress
    --baseline REF`` compares the latest run (and optionally a
    ``BENCH_loma.json``) against a baseline with per-metric thresholds
    and exits nonzero on regression — the CI perf gate.
``repro top``
    Live fleet monitoring: poll a cache server's ``stats``/``metrics``
    wire ops and render a refreshing terminal view — shard utilization,
    queue depth, in-flight jobs, hit rate, evals/s.
``repro check``
    Static invariant checker: determinism (DET0xx), guarded-by
    concurrency (RACE0xx), cache-token purity (CACHE0xx) and doc-drift
    (DOC0xx) rules over the source tree itself, reconciled against the
    committed ``check_baseline.json`` of blessed exceptions.  ``check
    run --strict`` is the CI gate; ``check baseline`` regenerates the
    baseline; ``check rules`` lists the codes.

Evaluating subcommands also accept ``--backend service``: batches then
run through a long-lived :class:`~repro.serve.service.EvalService`
(async job queue, worker shards, in-flight dedup) whose shards share a
live cache server — results stay bit-identical to serial.

Results are printed and optionally written as JSON (the artifact wrote
pickle files; JSON keeps them human-readable and diffable).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from . import obs
from .analysis import (
    access_breakdown,
    convergence_table,
    frontier_csv,
    frontier_table,
    infeasible_table,
    metrics_report,
    regress_report,
    run_diff_report,
    run_report,
    runs_table,
    trace_report,
)
from .check.cli import run_check
from .core import DepthFirstEngine, DFStrategy, OverlapMode
from .core.optimizer import PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y
from .dse import (
    DesignSpace,
    DSERunner,
    MemoryBudgetConstraint,
    PartitionAxis,
    Scenario,
    create_strategy,
    energy_cap,
    latency_cap,
    load_reference_frontier,
    workload_segments,
)
from .explore import Executor, MappingCache, SweepSpec
from .hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator
from .mapping import ENGINES, OBJECTIVE_NAMES, SearchConfig, validate_objectives
from .mapping.cache import cache_file_info
from .obs import ledger, parse_prometheus, regress
from .obs import top as obs_top
from .serve import AUTH_TOKEN_ENV, CacheClient, CacheServer, CacheServerError
from .workloads.zoo import WORKLOAD_FACTORIES, get_workload

#: The artifact's --dfmode integers, kept as aliases.
DFMODE_ALIASES = {
    "0": OverlapMode.FULLY_RECOMPUTE,
    "1": OverlapMode.H_CACHED_V_RECOMPUTE,
    "2": OverlapMode.FULLY_CACHED,
}

#: Every zoo accelerator name accepted by the CLI.
ACCELERATOR_NAMES = sorted(ACCELERATOR_FACTORIES) + ["depfin_like"]


# ----------------------------------------------------------------------
# Shared argument validators and option groups
# ----------------------------------------------------------------------
def _int_list(text: str) -> tuple[int, ...]:
    """Parse ``"4"`` or ``"4,16,60"`` into a tuple of ints."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"empty int list: {text!r}")
    return values


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _seed(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _name_list(text: str) -> tuple[str, ...]:
    """Parse a comma-separated list of names (``"a,b"``)."""
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"empty name list: {text!r}")
    return names


def _mode_list(text: str) -> tuple[OverlapMode, ...]:
    """Parse a comma-separated list of overlap modes (names or 0/1/2)."""
    modes = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            modes.append(_resolve_mode(part))
        except SystemExit as exc:
            # _resolve_mode serves non-argparse paths too; inside a
            # type= callable the failure must be an ArgumentTypeError
            # so argparse prints usage like every other bad argument.
            raise argparse.ArgumentTypeError(str(exc))
    if not modes:
        raise argparse.ArgumentTypeError(f"empty mode list: {text!r}")
    return tuple(modes)


def _byte_size(text: str) -> "int | str":
    """Parse a byte budget: a plain int with an optional K/M/G (or
    KB/MB/GB, KiB/MiB/GiB — all binary) suffix, or ``fit`` for "each
    accelerator's own on-chip activation capacity" (passed through as
    the string ``"fit"``; absence of the option stays None)."""
    t = text.strip().lower()
    if t == "fit":
        return "fit"
    for suffix, mult in (
        ("kib", 1024),
        ("mib", 1024**2),
        ("gib", 1024**3),
        ("kb", 1024),
        ("mb", 1024**2),
        ("gb", 1024**3),
        ("k", 1024),
        ("m", 1024**2),
        ("g", 1024**3),
    ):
        if t.endswith(suffix):
            t, scale = t[: -len(suffix)], mult
            break
    else:
        scale = 1
    try:
        value = int(float(t) * scale)
    except (ValueError, OverflowError):
        raise argparse.ArgumentTypeError(
            f"not a byte size: {text!r} (use an int, K/M/G suffixes, or 'fit')"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(f"byte size must be >= 1: {text!r}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    # NaN fails this comparison too, so caps are always finite positives.
    if not (value > 0 and math.isfinite(value)):
        raise argparse.ArgumentTypeError(f"must be a finite number > 0: {text!r}")
    return value


def _fuse_list(text: str) -> tuple[int | None, ...]:
    """Parse fuse depths: ints plus ``auto`` for the weights-fit rule."""
    values: list[int | None] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "auto":
            values.append(None)
            continue
        try:
            depth = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"fuse depth must be an int or 'auto': {part!r}"
            )
        if depth < 1:
            raise argparse.ArgumentTypeError(f"fuse depth must be >= 1: {depth}")
        values.append(depth)
    if not values:
        raise argparse.ArgumentTypeError(f"empty fuse-depth list: {text!r}")
    return tuple(values)


def _partition_list(text: str) -> "tuple[tuple[int, ...] | None, ...]":
    """Parse explicit stack-partition candidates: semicolon-separated
    cut-position lists (``'1,3'``), with ``'auto'`` for the weights-fit
    rule and ``'all'`` for no cuts (one fully fused stack); e.g.
    ``'auto;1;1,3;all'``."""
    candidates: "list[tuple[int, ...] | None]" = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        if part == "auto":
            candidates.append(None)
            continue
        if part == "all":
            candidates.append(())
            continue
        try:
            cuts = tuple(
                int(p) for p in part.split(",") if p.strip()
            )
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad partition cuts {part!r}: use 'auto', 'all', or "
                "comma-separated cut positions like '1,3'"
            )
        if not cuts or any(c < 1 for c in cuts):
            raise argparse.ArgumentTypeError(
                f"partition cut positions must be >= 1: {part!r}"
            )
        candidates.append(tuple(sorted(set(cuts))))
    if not candidates:
        raise argparse.ArgumentTypeError(f"empty partition list: {text!r}")
    return tuple(candidates)


def _loss_fraction(text: str) -> float:
    """A regression tolerance: 0 <= value < 1 (0 = no loss allowed)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not (0.0 <= value < 1.0):
        raise argparse.ArgumentTypeError(
            f"tolerance must be in [0, 1), got {text!r}"
        )
    return value


def _sample_fraction(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not (0.0 < value <= 1.0):
        raise argparse.ArgumentTypeError(
            f"sample fraction must be in (0, 1], got {text!r}"
        )
    return value


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every evaluating subcommand: parallelism,
    persistent cache, LOMA search knobs, and the seed every randomized
    path (DSE samplers, future stochastic searches) must draw from."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for sweeps (1 = in-process serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent mapping-cache JSON file (loaded if present, "
        "saved after the run)",
    )
    parser.add_argument(
        "--cache-server",
        default=None,
        metavar="HOST:PORT",
        help="live mapping-cache server ('repro serve') to read/write "
        "instead of a local cache; the server owns persistence, so "
        "this excludes --cache",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "service"),
        default="auto",
        help="evaluation backend: 'auto' picks serial/process from "
        "--jobs; 'service' runs batches through a long-lived sharded "
        "evaluation service whose workers share cache hits live "
        "(results are identical on every backend)",
    )
    parser.add_argument(
        "--lpf-limit",
        type=int,
        default=6,
        help="LOMA loop-prime-factor limit (speed/quality knob; paper: 8)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="temporal-mapping orderings evaluated per layer-tile",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="batch",
        help="mapping-search engine: 'batch' scores all orderings in "
        "numpy array ops, 'scalar' is the pure-python reference; "
        "results are bit-identical (see README)",
    )
    parser.add_argument(
        "--seed",
        type=_seed,
        default=0,
        help="seed for randomized search paths (results are "
        "deterministic given a seed, whatever --jobs is)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.jsonl",
        help="write a structured JSON-lines trace of the run (spans "
        "with monotonic timestamps; inspect with 'repro stats'); "
        "results are bit-identical with tracing on or off",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="OUT.prom",
        help="write run metrics on exit: Prometheus text exposition, or "
        "the registry JSON dump when the path ends in .json",
    )
    parser.add_argument(
        "--trace-sample",
        type=_sample_fraction,
        default=1.0,
        metavar="FRACTION",
        help="fraction of root spans kept in the trace (deterministic "
        "counter rule, no rng; default: 1.0 = keep everything)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-ledger directory (default: $REPRO_RUNS_DIR, else "
        ".repro/runs); every run leaves a durable record there, "
        "inspectable with 'repro runs'",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this run in the run ledger "
        "(equivalent: REPRO_LEDGER=0)",
    )


def _resolve_cache(args) -> "MappingCache | CacheClient":
    """The run's mapping cache: a live server client when
    ``--cache-server`` is given, a (possibly disk-backed) local cache
    otherwise.  The server owns its own persistence, so combining the
    two is rejected."""
    if args.cache_server is not None:
        if args.cache is not None:
            raise SystemExit(
                "--cache and --cache-server are mutually exclusive: the "
                "server owns the persistent file (run 'repro serve "
                "--cache FILE')"
            )
        try:
            return CacheClient(args.cache_server)
        except (ValueError, CacheServerError) as exc:
            raise SystemExit(str(exc))
    return MappingCache(args.cache) if args.cache else MappingCache()


def _backend(args) -> "str | None":
    return None if args.backend == "auto" else args.backend


def _finish_cache(args, cache) -> None:
    """Post-run cache reporting/persistence: save a local file cache,
    or report (and leave persistence to) the live server."""
    if args.cache_server is not None:
        print(
            f"cache server {args.cache_server}: "
            f"{cache.server_stats()} (this run: {cache.hits} hits / "
            f"{cache.misses} misses)"
        )
        cache.close()
    elif args.cache:
        cache.save()
        print(f"mapping cache: {cache.stats} -> {args.cache}")


def _setup_obs(args) -> None:
    """Turn telemetry on when ``--trace``/``--metrics`` asks for it
    (metrics-only mode when only ``--metrics`` is given)."""
    if args.trace is None and args.metrics is None:
        return
    obs.enable(trace=args.trace, sample=args.trace_sample)


def _finish_obs(args) -> None:
    """Write the telemetry artifacts and reset the layer (so in-process
    callers — tests drive the CLI via ``main()`` — start clean)."""
    if not obs.enabled:
        return
    if args.metrics is not None:
        registry = obs.metrics()
        if str(args.metrics).endswith(".json"):
            registry.write_json(args.metrics)
        else:
            registry.write_prometheus(args.metrics)
        print(f"wrote {args.metrics} ({len(registry)} series)")
    tracer = obs.tracer()
    if tracer is not None:
        written, dropped = tracer.spans_written, tracer.spans_dropped
        obs.disable()  # closes the trace file before we report it
        note = f" ({dropped} sampled out)" if dropped else ""
        print(f"wrote {args.trace} ({written} span(s){note})")
    obs.reset()


def _begin_ledger(command: str, argv, args, **manifest) -> "ledger.RunHandle | None":
    """Open the run's ledger record (``None`` when the ledger is off or
    its directory is unwritable — a broken ledger must never take the
    run down, so the failure degrades to a stderr warning)."""
    if getattr(args, "no_ledger", False) or not ledger.ledger_enabled():
        return None
    manifest.update(
        seed=args.seed,
        engine=args.engine,
        backend=args.backend,
        jobs=args.jobs,
        budget=args.budget,
        lpf_limit=args.lpf_limit,
        cache=args.cache,
        cache_server=args.cache_server,
        trace=args.trace,
        metrics=args.metrics,
    )
    try:
        return ledger.begin_run(
            command, list(argv), manifest, directory=args.runs_dir
        )
    except OSError as exc:
        print(f"warning: run ledger disabled: {exc}", file=sys.stderr)
        return None


def _ledger_finish(
    handle, status: str = "ok", error: "str | None" = None, result=None
) -> None:
    if handle is None:
        return
    try:
        handle.finish(status, error=error, result=result)
    except OSError as exc:
        print(f"warning: run ledger write failed: {exc}", file=sys.stderr)


def _ledger_crash(handle, exc: BaseException) -> None:
    """Seal the record for a run that is about to re-raise."""
    status = "interrupted" if isinstance(exc, KeyboardInterrupt) else "crashed"
    _ledger_finish(handle, status, error=f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# Classic evaluation (the artifact's main.py)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeFiNES reproduction: evaluate a depth-first schedule.",
    )
    parser.add_argument(
        "--accelerator",
        required=True,
        choices=ACCELERATOR_NAMES,
        help="accelerator from the Table I(a) zoo",
    )
    parser.add_argument(
        "--workload",
        required=True,
        choices=sorted(WORKLOAD_FACTORIES),
        help="workload from the Table I(b) zoo",
    )
    parser.add_argument(
        "--mode",
        "--dfmode",
        dest="mode",
        default="fully_cached",
        help="overlap storing mode (name, or the artifact's 0/1/2)",
    )
    parser.add_argument(
        "--tilex",
        type=_int_list,
        default=(16,),
        help="tile width(s); a comma-separated list sweeps the grid",
    )
    parser.add_argument(
        "--tiley",
        type=_int_list,
        default=(8,),
        help="tile height(s); a comma-separated list sweeps the grid",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the result summary to this JSON file",
    )
    _add_runtime_options(parser)
    return parser


def _resolve_mode(text: str) -> OverlapMode:
    if text in DFMODE_ALIASES:
        return DFMODE_ALIASES[text]
    try:
        return OverlapMode(text)
    except ValueError:
        names = [m.value for m in OverlapMode] + sorted(DFMODE_ALIASES)
        raise SystemExit(f"unknown mode {text!r}; choose from {names}")


def result_summary(accel, result) -> dict:
    """A JSON-serializable summary of a schedule evaluation."""
    breakdown = access_breakdown(accel, result.total)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "strategy": result.strategy_label,
        "energy_pj": result.energy_pj,
        "energy_mj": result.energy_mj,
        "latency_cycles": result.latency_cycles,
        "mac_count": result.mac_count,
        "edp": result.edp,
        "dram_accesses_elems": result.dram_accesses(),
        "accesses_by_tier": breakdown.by_tier(),
        "accesses_by_category": breakdown.by_category(),
        "stacks": [
            {
                "layers": list(sr.layer_names),
                "tile_grid": [sr.tiling.grid_cols, sr.tiling.grid_rows],
                "tile_types": sr.tile_type_count,
                "energy_pj": sr.total.energy_pj,
                "latency_cycles": sr.total.latency_cycles,
            }
            for sr in result.stacks
        ],
    }


def _print_schedule(result) -> None:
    print(result.describe())
    for sr in result.stacks:
        print(
            f"  stack[{'/'.join(sr.layer_names[:2])}"
            f"{'...' if len(sr.layer_names) > 2 else ''}]: "
            f"{sr.tiling.grid_cols}x{sr.tiling.grid_rows} tiles, "
            f"{sr.tile_type_count} types, "
            f"E={sr.total.energy_pj / 1e9:.3f} mJ"
        )


def run_evaluate(argv: Sequence[str]) -> int:
    """The classic artifact-style evaluation / tile sweep."""
    args = build_parser().parse_args(argv)
    accel = get_accelerator(args.accelerator)
    workload = get_workload(args.workload)
    mode = _resolve_mode(args.mode)
    config = SearchConfig(
        lpf_limit=args.lpf_limit, budget=args.budget, engine=args.engine
    )
    handle = _begin_ledger(
        "evaluate",
        argv,
        args,
        workload=args.workload,
        accelerators=[args.accelerator],
        accelerator_fingerprints={args.accelerator: accel.fingerprint()},
        mode=mode.value,
        tiles=len(args.tilex) * len(args.tiley),
    )
    _setup_obs(args)
    try:
        cache = _resolve_cache(args)

        tiles = [(tx, ty) for tx in args.tilex for ty in args.tiley]
        with obs.span(
            "repro.evaluate",
            accelerator=args.accelerator,
            workload=args.workload,
            tiles=len(tiles),
        ):
            if len(tiles) == 1 and args.backend in ("auto", "serial"):
                engine = DepthFirstEngine(accel, config, cache=cache)
                result = engine.evaluate(
                    workload,
                    DFStrategy(
                        tile_x=tiles[0][0], tile_y=tiles[0][1], mode=mode
                    ),
                )
                _print_schedule(result)
                summary = result_summary(accel, result)
            else:
                spec = SweepSpec.tile_grid(accel, workload, tiles, (mode,))
                with Executor(
                    jobs=args.jobs,
                    search_config=config,
                    cache=cache,
                    backend=_backend(args),
                ) as executor:
                    results = executor.run(spec)
                for r in results:
                    print(
                        f"{r.strategy.describe():28s} "
                        f"E={r.result.energy_mj:8.3f} mJ "
                        f"L={r.result.latency_cycles / 1e6:9.2f} Mcycles"
                    )
                best = min(results, key=lambda r: r.score("energy"))
                print(f"best (energy): {best.strategy.describe()}")
                _print_schedule(best.result)
                summary = {
                    "points": [result_summary(accel, r.result) for r in results],
                    "best_strategy": best.strategy.describe(),
                }

            _finish_cache(args, cache)
        if args.output:
            with open(args.output, "w") as f:
                json.dump(summary, f, indent=2)
            print(f"wrote {args.output}")
    except BaseException as exc:
        _ledger_crash(handle, exc)
        _finish_obs(args)
        raise
    if "points" in summary:
        outcome = {
            "points": len(summary["points"]),
            "best_strategy": summary["best_strategy"],
        }
    else:
        outcome = {
            "energy_mj": summary["energy_mj"],
            "latency_cycles": summary["latency_cycles"],
        }
    # The record must be sealed before _finish_obs resets the registry,
    # or a telemetry-on run would lose its metrics dump.
    _ledger_finish(handle, "ok", result=outcome)
    _finish_obs(args)
    return 0


# ----------------------------------------------------------------------
# repro dse — multi-objective Pareto-frontier search
# ----------------------------------------------------------------------
def build_dse_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro dse",
        description="Multi-objective design-space exploration: search the "
        "joint space of tile sizes, overlap modes, fuse depths and "
        "accelerators, maintaining a Pareto frontier.",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_FACTORIES),
        help="single workload from the Table I(b) zoo",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="multi-workload scenario: comma-separated zoo workloads "
        "with optional :weight suffixes (e.g. 'resnet18:3,fsrcnn,mccnn'); "
        "objectives become weight-averaged aggregates",
    )
    parser.add_argument(
        "--accelerators",
        type=_name_list,
        default=("meta_proto_like_df",),
        help="comma-separated zoo accelerators, or 'all'",
    )
    parser.add_argument(
        "--objectives",
        type=_name_list,
        default=("energy",),
        help=f"comma-separated objectives, all minimized; "
        f"choose from: {', '.join(OBJECTIVE_NAMES)}",
    )
    parser.add_argument(
        "--strategy",
        choices=("exhaustive", "random", "genetic"),
        default="genetic",
        help="search strategy over the design space",
    )
    parser.add_argument(
        "--tilex",
        type=_int_list,
        default=PAPER_TILE_GRID_X,
        help="candidate tile widths (default: the paper's Fig. 12 grid)",
    )
    parser.add_argument(
        "--tiley",
        type=_int_list,
        default=PAPER_TILE_GRID_Y,
        help="candidate tile heights (default: the paper's Fig. 12 grid)",
    )
    parser.add_argument(
        "--modes",
        type=_mode_list,
        default=tuple(OverlapMode),
        help="candidate overlap modes (names or the artifact's 0/1/2)",
    )
    parser.add_argument(
        "--fuse-depths",
        type=_fuse_list,
        default=(None,),
        help="candidate per-stack layer caps; 'auto' = weights-fit rule "
        "(e.g. 'auto,1,2,4')",
    )
    parser.add_argument(
        "--partition-genes",
        action="store_true",
        help="search explicit stack partitions (axis 3) as genes: every "
        "subset of cut positions over the workload's branch-free "
        "segments, plus the automatic weights-fit rule; replaces the "
        "--fuse-depths axis",
    )
    parser.add_argument(
        "--stacks",
        type=_partition_list,
        default=None,
        metavar="CUTS[;CUTS...]",
        help="explicit stack-partition candidates instead of the full "
        "--partition-genes space: semicolon-separated cut-position "
        "lists over the workload's branch-free segments, 'auto' for "
        "the weights-fit rule, 'all' for one fully fused stack (e.g. "
        "'auto;1;1,3')",
    )
    parser.add_argument(
        "--population",
        type=_positive_int,
        default=16,
        help="genetic: designs per generation",
    )
    parser.add_argument(
        "--generations",
        type=_positive_int,
        default=8,
        help="genetic: number of generations",
    )
    parser.add_argument(
        "--samples",
        type=_positive_int,
        default=64,
        help="random: designs to sample",
    )
    parser.add_argument(
        "--memory-budget",
        type=_byte_size,
        default=None,
        help="feasibility: peak activation working set must fit this "
        "many on-chip bytes (K/M/G suffixes allowed), or 'fit' for each "
        "accelerator's own activation capacity",
    )
    parser.add_argument(
        "--latency-cap",
        type=_positive_float,
        default=None,
        help="feasibility: per-workload latency must stay <= this many cycles",
    )
    parser.add_argument(
        "--energy-cap",
        type=_positive_float,
        default=None,
        help="feasibility: per-workload energy must stay <= this many pJ",
    )
    parser.add_argument(
        "--show-infeasible",
        action="store_true",
        help="also list evaluated designs that violate a constraint, "
        "with their violation magnitudes",
    )
    parser.add_argument(
        "--max-evals",
        type=_positive_int,
        default=None,
        help="evaluation budget: cap on fresh design evaluations "
        "(a scenario costs one cost-model run per member workload)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSON checkpoint: resumed if present, saved every generation",
    )
    parser.add_argument(
        "--reference",
        default=None,
        metavar="FRONTIER.json",
        help="reference frontier (a frontier checkpoint or a previous "
        "--output file): per-generation additive epsilon against it is "
        "tracked alongside the hypervolume",
    )
    parser.add_argument(
        "--csv",
        default=None,
        help="write the frontier as CSV to this file",
    )
    parser.add_argument(
        "--plot",
        default=None,
        metavar="OUT.png",
        help="write a frontier + convergence figure to this image file "
        "(skipped with a note when matplotlib is not installed)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the frontier summary to this JSON file",
    )
    _add_runtime_options(parser)
    return parser


def run_dse(argv: Sequence[str]) -> int:
    args = build_dse_parser().parse_args(argv)

    accelerators = args.accelerators
    if accelerators == ("all",):
        accelerators = tuple(ACCELERATOR_NAMES)
    for name in accelerators:
        if name not in ACCELERATOR_NAMES:
            raise SystemExit(
                f"unknown accelerator {name!r}; choose from "
                f"{', '.join(ACCELERATOR_NAMES)} (or 'all')"
            )
    try:
        validate_objectives(args.objectives)
    except ValueError as exc:
        raise SystemExit(str(exc))

    if (args.workload is None) == (args.workloads is None):
        raise SystemExit(
            "pass exactly one of --workload NAME or --workloads A,B:2,..."
        )
    if args.workloads is not None:
        try:
            workload = Scenario.parse(args.workloads)
        except ValueError as exc:
            raise SystemExit(str(exc))
        for name in workload.workload_names():
            if name not in WORKLOAD_FACTORIES:
                raise SystemExit(
                    f"unknown workload {name!r}; choose from "
                    f"{', '.join(sorted(WORKLOAD_FACTORIES))}"
                )
    else:
        workload = args.workload

    constraints = []
    if args.memory_budget is not None:
        budget = None if args.memory_budget == "fit" else args.memory_budget
        constraints.append(MemoryBudgetConstraint(budget_bytes=budget))
    if args.latency_cap is not None:
        constraints.append(latency_cap(args.latency_cap))
    if args.energy_cap is not None:
        constraints.append(energy_cap(args.energy_cap))

    partitions = None
    member_segments = None
    if args.partition_genes or args.stacks is not None:
        if args.partition_genes and args.stacks is not None:
            raise SystemExit(
                "--partition-genes and --stacks are mutually exclusive: "
                "the first searches every cut subset, the second a fixed "
                "candidate list"
            )
        if args.fuse_depths != (None,):
            raise SystemExit(
                "--fuse-depths and partition genes are mutually "
                "exclusive: the partition axis replaces the fuse-depth cap"
            )
        names = (
            workload.workload_names()
            if isinstance(workload, Scenario)
            else (workload,)
        )
        # The genome is sized for the largest member; smaller members
        # ignore out-of-range cuts when their partitions decode.  The
        # tables also feed the runner, which decodes genomes per member.
        tables = {name: workload_segments(name) for name in names}
        member_segments = tuple(tables[name] for name in names)
        segments = max(len(table) for table in tables.values())
        try:
            if args.stacks is not None:
                partitions = PartitionAxis(
                    segments=segments, candidates=args.stacks
                )
            else:
                partitions = PartitionAxis(segments=segments)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(
            "partition genes: "
            + ", ".join(
                f"{name}: {len(table)} segments"
                for name, table in tables.items()
            )
            + f"; axis = {partitions.describe()}"
        )

    try:
        space = DesignSpace(
            accelerators=accelerators,
            tile_x=args.tilex,
            tile_y=args.tiley,
            modes=args.modes,
            fuse_depths=args.fuse_depths,
            partitions=partitions,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    reference = None
    if args.reference is not None:
        try:
            reference = load_reference_frontier(args.reference)
        except ValueError as exc:
            raise SystemExit(str(exc))

    config = SearchConfig(
        lpf_limit=args.lpf_limit, budget=args.budget, engine=args.engine
    )
    workload_label = (
        workload.describe() if isinstance(workload, Scenario) else workload
    )
    handle = _begin_ledger(
        "dse",
        argv,
        args,
        workload=workload_label,
        accelerators=list(accelerators),
        accelerator_fingerprints={
            name: get_accelerator(name).fingerprint()
            for name in accelerators
        },
        strategy=args.strategy,
        objectives=list(args.objectives),
        max_evals=args.max_evals,
        checkpoint=args.checkpoint,
    )
    _setup_obs(args)
    try:
        cache = _resolve_cache(args)
        strategy = create_strategy(
            args.strategy,
            population=args.population,
            generations=args.generations,
            samples=args.samples,
        )
        try:
            with obs.span(
                "repro.dse", strategy=args.strategy, seed=args.seed
            ), Executor(
                jobs=args.jobs,
                search_config=config,
                cache=cache,
                backend=_backend(args),
            ) as executor:
                runner = DSERunner(
                    space,
                    workload,
                    objectives=args.objectives,
                    executor=executor,
                    constraints=constraints,
                    max_evals=args.max_evals,
                    checkpoint=args.checkpoint,
                    reference=reference,
                    member_segments=member_segments,
                    seed=args.seed,
                )
                result = runner.run(strategy)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc

        print(
            f"dse: {workload_label}, strategy={args.strategy}, "
            f"seed={args.seed}, space={space.size} designs, "
            f"objectives={','.join(args.objectives)}"
        )
        if constraints:
            print(
                "constraints: "
                + "; ".join(c.describe() for c in constraints)
            )
        print(result.describe())
        print(frontier_table(result.frontier))
        print()
        print(convergence_table(result.generations))
        if args.show_infeasible:
            print()
            print("infeasible designs (total relative violation):")
            print(
                infeasible_table(
                    result.infeasible, result.frontier.objectives
                )
            )

        if args.csv:
            with open(args.csv, "w") as f:
                f.write(frontier_csv(result.frontier))
            print(f"wrote {args.csv}")
        if args.plot:
            from .analysis import plot_dse_summary

            written = plot_dse_summary(
                result.frontier, result.generations, args.plot
            )
            if written is None:
                print(
                    f"matplotlib is not installed; skipping --plot {args.plot}"
                )
            else:
                print(f"wrote {written}")
        if args.output:
            summary = {
                "workload": workload_label,
                "accelerators": list(accelerators),
                "objectives": list(args.objectives),
                "constraints": [c.token() for c in constraints],
                "strategy": args.strategy,
                "seed": args.seed,
                "evaluations": result.evaluations,
                "total_evaluations": result.total_evaluations,
                "generations": [s.to_json() for s in result.generations],
                "hv_reference": (
                    None
                    if result.hv_reference is None
                    else list(result.hv_reference)
                ),
                "frontier": result.frontier.to_json(),
                "infeasible": [e.to_json() for e in result.infeasible],
            }
            with open(args.output, "w") as f:
                json.dump(summary, f, indent=2)
            print(f"wrote {args.output}")
        _finish_cache(args, cache)
    except BaseException as exc:
        _ledger_crash(handle, exc)
        _finish_obs(args)
        raise
    last = result.generations[-1] if result.generations else None
    # Seal the record before _finish_obs resets the metrics registry.
    _ledger_finish(
        handle,
        "ok",
        result={
            "evaluations": result.total_evaluations,
            "frontier_size": len(result.frontier),
            "hypervolume": last.hypervolume if last else None,
            "epsilon": last.epsilon if last else None,
        },
    )
    _finish_obs(args)
    return 0


# ----------------------------------------------------------------------
# repro serve — standalone live cache server
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a standalone live mapping-cache server: point "
        "any evaluation at it with --cache-server HOST:PORT and all "
        "workers (across processes and machines) share LOMA search "
        "results while runs are in flight.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks a free port (printed on startup)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent mapping-cache JSON file: pre-loaded on start, "
        "snapshotted periodically and on shutdown (atomic, merge-on-"
        "save, unchanged cache format)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="seconds between periodic snapshots (needs --cache)",
    )
    parser.add_argument(
        "--max-entries",
        type=_positive_int,
        default=None,
        help="LRU capacity bound applied at snapshot time",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="exit after this many seconds (default: serve until "
        "interrupted); used by smoke tests and batch jobs",
    )
    parser.add_argument(
        "--auth-token",
        default=os.environ.get(AUTH_TOKEN_ENV),
        metavar="TOKEN",
        help="shared-secret token every request must carry (clients "
        f"pass CacheClient(token=...) or set ${AUTH_TOKEN_ENV}, which "
        "is also this flag's default); omit for an open server",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve HTTP GET /metrics (Prometheus text exposition) "
        "and /healthz on this port; 0 picks a free port (printed on "
        "startup); exposes aggregate numbers only and is deliberately "
        "not behind --auth-token, so scrapers never hold the secret",
    )
    return parser


def run_serve(argv: Sequence[str]) -> int:
    import threading

    args = build_serve_parser().parse_args(argv)
    cache = MappingCache(args.cache, max_entries=args.max_entries)
    server = CacheServer(
        cache=cache,
        host=args.host,
        port=args.port,
        snapshot_path=args.cache,
        snapshot_interval=args.snapshot_interval if args.cache else None,
        auth_token=args.auth_token,
        metrics_port=args.metrics_port,
    )
    server.start()
    # The address line is the startup contract: wrappers parse it to
    # learn the picked port, so print and flush it first.
    print(f"cache server listening on {server.describe()}", flush=True)
    if server.metrics_address is not None:
        host, port = server.metrics_address
        print(f"metrics endpoint on http://{host}:{port}/metrics", flush=True)
    if args.auth_token is not None:
        print("authentication: shared-secret token required", flush=True)
    print(
        f"{len(cache)} entr{'y' if len(cache) == 1 else 'ies'} loaded"
        + (f" from {args.cache}" if args.cache else ""),
        flush=True,
    )
    try:
        # Serve until the timeout elapses, the server is shut down
        # remotely (a client's 'shutdown' op), or Ctrl-C.
        deadline = threading.Event()
        step = 0.2
        waited = 0.0
        while server.running and not deadline.wait(step):
            waited += step
            if args.timeout is not None and waited >= args.timeout:
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()
    stats = dict(cache.stats)
    print(f"cache server stopped: {stats}")
    if args.cache:
        print(f"final snapshot: {args.cache}")
    return 0


# ----------------------------------------------------------------------
# repro cache-info — mapping-cache file inspection
# ----------------------------------------------------------------------
def build_cache_info_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache-info",
        description="Inspect a persistent mapping-cache JSON file, or a "
        "live cache server's table and load counters.",
    )
    parser.add_argument(
        "path", nargs="?", default=None, help="mapping-cache file to inspect"
    )
    parser.add_argument(
        "--cache-server",
        default=None,
        metavar="HOST:PORT",
        help="query a live 'repro serve' instance (hits, misses, size, "
        "per-op requests, connections, in-flight, queue depth) instead "
        "of reading a file",
    )
    return parser


def run_cache_info(argv: Sequence[str]) -> int:
    args = build_cache_info_parser().parse_args(argv)
    if args.cache_server is not None and args.path is not None:
        raise SystemExit(
            "give either a cache file path or --cache-server, not both"
        )
    if args.cache_server is not None:
        try:
            with CacheClient(args.cache_server) as client:
                stats = client.server_stats()
        except (ValueError, CacheServerError) as exc:
            raise SystemExit(str(exc))
        print(f"server:      {args.cache_server}")
        print(f"size:        {stats.get('size', 0)} entries")
        print(
            f"table:       {stats.get('hits', 0)} hits / "
            f"{stats.get('misses', 0)} misses"
        )
        requests = stats.get("requests", {})
        if requests:
            ops = ", ".join(f"{op}={n}" for op, n in sorted(requests.items()))
            print(f"requests:    {ops}")
        print(
            f"connections: {stats.get('connections', 0)} open "
            f"({stats.get('connections_total', 0)} total)"
        )
        print(
            f"load:        {stats.get('in_flight', 0)} in flight, "
            f"{stats.get('queue_depth', 0)} queued"
        )
        print(f"snapshots:   {stats.get('snapshots_written', 0)} written")
        return 0
    if args.path is None:
        raise SystemExit("give a cache file path (or --cache-server HOST:PORT)")
    info = cache_file_info(args.path)
    print(f"path:    {info['path']}")
    print(f"status:  {info['status']}")
    if info["status"] == "missing":
        return 1
    print(f"size:    {info['size_bytes']} bytes")
    print(f"format:  {info['format']}")
    print(f"entries: {info['entries']}")
    stats = info["stats"]
    if stats:
        print(
            f"stats:   {stats.get('hits', 0)} hits / "
            f"{stats.get('misses', 0)} misses at last save"
        )
    # Only a loadable file exits 0, so scripts can gate on the status.
    return 0 if info["status"] == "ok" else 1


# ----------------------------------------------------------------------
# repro stats — telemetry artifact inspection
# ----------------------------------------------------------------------
def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Inspect telemetry artifacts written by --trace and "
        "--metrics: JSON-lines traces (top spans by self time, wall-"
        "clock coverage) and Prometheus text / metrics JSON snapshots "
        "(cache hit rates, per-shard utilization, top counters).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="FILE",
        help="trace (.jsonl), Prometheus text (.prom) or metrics JSON file",
    )
    parser.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="rows shown per table (default: 10)",
    )
    return parser


def _stats_report(path: str, top: int) -> str:
    """The report for one telemetry file, whatever its format: a metrics
    JSON dump (one object), a JSON-lines trace, or Prometheus text.

    Robust against the artifacts a crashed run leaves behind: a missing
    or empty file and a trace cut mid-line all produce a clear message
    (plus a best-effort report for the partial trace), never a
    traceback."""
    from .obs import MetricsRegistry, load_trace_tolerant

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SystemExit(str(exc))
    if not text.strip():
        raise SystemExit(
            f"{path}: empty telemetry file — the run likely crashed (or "
            "was killed) before writing anything"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "metrics" in data:
        registry = MetricsRegistry()
        try:
            registry.merge_json(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"{path}: not a metrics dump: {exc}")
        return metrics_report(
            parse_prometheus(registry.render_prometheus()), top=top
        )
    records, problems = load_trace_tolerant(path)
    if records:
        report = trace_report(records, top=top)
        if problems:
            report += (
                f"\nwarning: skipped {len(problems)} malformed line(s) — "
                f"truncated by a crashed run? (first: {problems[0]})"
            )
        return report
    values = parse_prometheus(text)
    if values:
        return metrics_report(values, top=top)
    raise SystemExit(
        f"{path}: not a recognizable telemetry file (expected a "
        "JSON-lines trace, a Prometheus text exposition, or a metrics "
        "JSON dump)"
        + (
            f"; {len(problems)} unparseable line(s) suggest a truncated "
            "or corrupted trace"
            if problems
            else ""
        )
    )


def run_stats(argv: Sequence[str]) -> int:
    args = build_stats_parser().parse_args(argv)
    for index, path in enumerate(args.paths):
        if len(args.paths) > 1:
            if index:
                print()
            print(f"== {path} ==")
        print(_stats_report(path, args.top))
    return 0


# ----------------------------------------------------------------------
# repro runs — the durable run ledger
# ----------------------------------------------------------------------
def _add_runs_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="ledger directory (default: $REPRO_RUNS_DIR, else .repro/runs)",
    )


def build_runs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="Inspect the run ledger: every 'repro evaluate' and "
        "'repro dse' invocation leaves a durable record under "
        ".repro/runs/ (manifest, wall-clock, final metrics, convergence "
        "series, outcome — crashed runs included).",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p_list = sub.add_parser("list", help="list recorded runs, newest last")
    _add_runs_dir_option(p_list)
    p_list.add_argument(
        "-n",
        "--limit",
        type=_positive_int,
        default=20,
        help="most recent runs shown (default: 20)",
    )
    p_list.set_defaults(func=_runs_list)

    p_show = sub.add_parser("show", help="render one run's record")
    _add_runs_dir_option(p_show)
    p_show.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run reference: 'latest' (default), an id, a unique id "
        "prefix, or a record-file path",
    )
    p_show.add_argument(
        "--tail",
        type=_positive_int,
        default=5,
        help="convergence generations shown (default: 5)",
    )
    p_show.set_defaults(func=_runs_show)

    p_diff = sub.add_parser(
        "diff", help="compare two runs' key metrics side by side"
    )
    _add_runs_dir_option(p_diff)
    p_diff.add_argument("baseline", help="baseline run reference")
    p_diff.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run to compare (default: latest)",
    )
    p_diff.set_defaults(func=_runs_diff)

    p_gc = sub.add_parser(
        "gc", help="drop the oldest records beyond a keep count"
    )
    _add_runs_dir_option(p_gc)
    p_gc.add_argument(
        "--keep",
        type=int,
        default=20,
        help="newest records kept (default: 20)",
    )
    p_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without removing it",
    )
    p_gc.set_defaults(func=_runs_gc)

    p_regress = sub.add_parser(
        "regress",
        help="gate a run against a baseline: exits 1 on any regression",
    )
    _add_runs_dir_option(p_regress)
    p_regress.add_argument(
        "--baseline",
        required=True,
        metavar="REF",
        help="baseline run reference (id, unique prefix, or record-file "
        "path — e.g. a committed fixture)",
    )
    p_regress.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run to gate (default: latest)",
    )
    p_regress.add_argument(
        "--max-slowdown",
        type=_loss_fraction,
        default=regress.DEFAULT_MAX_SLOWDOWN,
        metavar="FRACTION",
        help="tolerated relative throughput loss (orderings/s, bench "
        f"points; default {regress.DEFAULT_MAX_SLOWDOWN} — generous, "
        "baselines travel across machines)",
    )
    p_regress.add_argument(
        "--max-hv-loss",
        type=_loss_fraction,
        default=regress.DEFAULT_MAX_HV_LOSS,
        metavar="FRACTION",
        help="tolerated relative hypervolume loss at a fixed eval "
        f"budget (default {regress.DEFAULT_MAX_HV_LOSS} — the search "
        "is deterministic per seed)",
    )
    p_regress.add_argument(
        "--max-hit-rate-drop",
        type=_loss_fraction,
        default=regress.DEFAULT_MAX_HIT_RATE_DROP,
        metavar="FRACTION",
        help="tolerated absolute mapping-cache hit-rate drop "
        f"(default {regress.DEFAULT_MAX_HIT_RATE_DROP})",
    )
    p_regress.add_argument(
        "--bench",
        default=None,
        metavar="BENCH.json",
        help="also gate a BENCH_loma.json-shaped throughput file "
        "against --bench-baseline",
    )
    p_regress.add_argument(
        "--bench-baseline",
        default="BENCH_loma.json",
        metavar="BENCH.json",
        help="baseline bench file for --bench (default: the repo's "
        "blessed BENCH_loma.json)",
    )
    p_regress.set_defaults(func=_runs_regress)
    return parser


def _runs_list(args) -> int:
    print(runs_table(ledger.list_runs(args.runs_dir), limit=args.limit))
    return 0


def _load_run_or_exit(ref: str, runs_dir) -> dict:
    try:
        return ledger.load_run(ref, runs_dir)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))


def _runs_show(args) -> int:
    print(run_report(_load_run_or_exit(args.run, args.runs_dir), tail=args.tail))
    return 0


def _runs_diff(args) -> int:
    baseline = _load_run_or_exit(args.baseline, args.runs_dir)
    current = _load_run_or_exit(args.run, args.runs_dir)
    print(run_diff_report(baseline, current))
    return 0


def _runs_gc(args) -> int:
    if args.keep < 0:
        raise SystemExit(f"--keep must be >= 0, got {args.keep}")
    removed = ledger.gc_runs(
        args.runs_dir, keep=args.keep, dry_run=args.dry_run
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {len(removed)} run record(s), "
        f"keeping the newest {args.keep}"
    )
    for run_id in removed:
        print(f"  {run_id}")
    return 0


def _runs_regress(args) -> int:
    baseline = _load_run_or_exit(args.baseline, args.runs_dir)
    current = _load_run_or_exit(args.run, args.runs_dir)
    checks = regress.compare_runs(
        baseline,
        current,
        max_slowdown=args.max_slowdown,
        max_hv_loss=args.max_hv_loss,
        max_hit_rate_drop=args.max_hit_rate_drop,
    )
    if args.bench is not None:
        try:
            checks += regress.compare_bench(
                regress.load_bench(args.bench_baseline),
                regress.load_bench(args.bench),
                max_slowdown=args.max_slowdown,
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    print(regress_report(checks))
    return 1 if regress.has_regressions(checks) else 0


def run_runs(argv: Sequence[str]) -> int:
    args = build_runs_parser().parse_args(argv)
    return args.func(args)


# ----------------------------------------------------------------------
# repro top — live fleet monitoring
# ----------------------------------------------------------------------
def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live view of a cache-server fleet: polls the "
        "server's stats/metrics wire ops and renders a refreshing "
        "terminal frame (entries, hit rate, connections, in-flight, "
        "queue depth, request and evaluation rates, per-shard "
        "utilization when an embedded EvalService reports).",
    )
    parser.add_argument(
        "address", metavar="HOST:PORT", help="a running 'repro serve'"
    )
    parser.add_argument(
        "--interval",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between refreshes (default: 2)",
    )
    parser.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (same as --iterations 1)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (useful for "
        "logs and pipes; clearing is skipped automatically when stdout "
        "is not a terminal)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="shared-secret token for an authenticated server "
        f"(default: ${AUTH_TOKEN_ENV})",
    )
    return parser


def run_top(argv: Sequence[str]) -> int:
    args = build_top_parser().parse_args(argv)
    iterations = 1 if args.once else args.iterations
    try:
        client = CacheClient(args.address, token=args.auth_token)
    except (ValueError, CacheServerError) as exc:
        raise SystemExit(str(exc))
    clear = sys.stdout.isatty() and not args.no_clear
    previous = None
    frames = 0
    try:
        while True:
            try:
                current = obs_top.sample_server(client)
            except CacheServerError as exc:
                raise SystemExit(f"server went away: {exc}")
            frame = obs_top.top_report(args.address, current, previous)
            if clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, end="", flush=True)
            previous = current
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        client.close()
    return 0


# ----------------------------------------------------------------------
SUBCOMMANDS = {
    "dse": run_dse,
    "serve": run_serve,
    "cache-info": run_cache_info,
    "stats": run_stats,
    "runs": run_runs,
    "top": run_top,
    "check": run_check,
}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    return run_evaluate(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
