"""Command-line interface mirroring the original artifact's ``main.py``.

The DeFiNES artifact is driven as::

    python main.py --accelerator inputs.HW.Edge_TPU_like \
                   --workload inputs.WL...workload_mccnn \
                   --dfmode 1 --tilex 16 --tiley 8

This reproduction exposes the same experiment as::

    python -m repro --accelerator edge_tpu_like --workload mccnn \
                    --mode h_cached_v_recompute --tilex 16 --tiley 8

``--tilex``/``--tiley`` accept comma-separated lists; more than one grid
point turns the run into a tile-size sweep executed by the exploration
runtime, which ``--jobs N`` spreads over worker processes.  ``--cache``
names a JSON mapping-cache file that persists LOMA search results
across runs (the second run of the same experiment skips the search).

Results are printed and optionally written as JSON (the artifact wrote
pickle files; JSON keeps them human-readable and diffable).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import access_breakdown
from .core import DepthFirstEngine, DFStrategy, OverlapMode
from .explore import Executor, MappingCache, SweepSpec
from .hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator
from .mapping import SearchConfig
from .workloads.zoo import WORKLOAD_FACTORIES, get_workload

#: The artifact's --dfmode integers, kept as aliases.
DFMODE_ALIASES = {
    "0": OverlapMode.FULLY_RECOMPUTE,
    "1": OverlapMode.H_CACHED_V_RECOMPUTE,
    "2": OverlapMode.FULLY_CACHED,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeFiNES reproduction: evaluate a depth-first schedule.",
    )
    parser.add_argument(
        "--accelerator",
        required=True,
        choices=sorted(ACCELERATOR_FACTORIES) + ["depfin_like"],
        help="accelerator from the Table I(a) zoo",
    )
    parser.add_argument(
        "--workload",
        required=True,
        choices=sorted(WORKLOAD_FACTORIES),
        help="workload from the Table I(b) zoo",
    )
    parser.add_argument(
        "--mode",
        "--dfmode",
        dest="mode",
        default="fully_cached",
        help="overlap storing mode (name, or the artifact's 0/1/2)",
    )
    parser.add_argument(
        "--tilex",
        type=_int_list,
        default=(16,),
        help="tile width(s); a comma-separated list sweeps the grid",
    )
    parser.add_argument(
        "--tiley",
        type=_int_list,
        default=(8,),
        help="tile height(s); a comma-separated list sweeps the grid",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for sweeps (1 = in-process serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent mapping-cache JSON file (loaded if present, "
        "saved after the run)",
    )
    parser.add_argument(
        "--lpf-limit",
        type=int,
        default=6,
        help="LOMA loop-prime-factor limit (speed/quality knob; paper: 8)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="temporal-mapping orderings evaluated per layer-tile",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the result summary to this JSON file",
    )
    return parser


def _int_list(text: str) -> tuple[int, ...]:
    """Parse ``"4"`` or ``"4,16,60"`` into a tuple of ints."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"empty int list: {text!r}")
    return values


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _resolve_mode(text: str) -> OverlapMode:
    if text in DFMODE_ALIASES:
        return DFMODE_ALIASES[text]
    try:
        return OverlapMode(text)
    except ValueError:
        names = [m.value for m in OverlapMode] + sorted(DFMODE_ALIASES)
        raise SystemExit(f"unknown mode {text!r}; choose from {names}")


def result_summary(accel, result) -> dict:
    """A JSON-serializable summary of a schedule evaluation."""
    breakdown = access_breakdown(accel, result.total)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "strategy": result.strategy_label,
        "energy_pj": result.energy_pj,
        "energy_mj": result.energy_mj,
        "latency_cycles": result.latency_cycles,
        "mac_count": result.mac_count,
        "edp": result.edp,
        "dram_accesses_elems": result.dram_accesses(),
        "accesses_by_tier": breakdown.by_tier(),
        "accesses_by_category": breakdown.by_category(),
        "stacks": [
            {
                "layers": list(sr.layer_names),
                "tile_grid": [sr.tiling.grid_cols, sr.tiling.grid_rows],
                "tile_types": sr.tile_type_count,
                "energy_pj": sr.total.energy_pj,
                "latency_cycles": sr.total.latency_cycles,
            }
            for sr in result.stacks
        ],
    }


def _print_schedule(result) -> None:
    print(result.describe())
    for sr in result.stacks:
        print(
            f"  stack[{'/'.join(sr.layer_names[:2])}"
            f"{'...' if len(sr.layer_names) > 2 else ''}]: "
            f"{sr.tiling.grid_cols}x{sr.tiling.grid_rows} tiles, "
            f"{sr.tile_type_count} types, "
            f"E={sr.total.energy_pj / 1e9:.3f} mJ"
        )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    accel = get_accelerator(args.accelerator)
    workload = get_workload(args.workload)
    mode = _resolve_mode(args.mode)
    config = SearchConfig(lpf_limit=args.lpf_limit, budget=args.budget)
    try:
        cache = MappingCache(args.cache) if args.cache else MappingCache()
    except ValueError as exc:
        raise SystemExit(f"--cache: {exc}")

    tiles = [(tx, ty) for tx in args.tilex for ty in args.tiley]
    if len(tiles) == 1:
        engine = DepthFirstEngine(accel, config, cache=cache)
        result = engine.evaluate(
            workload, DFStrategy(tile_x=tiles[0][0], tile_y=tiles[0][1], mode=mode)
        )
        _print_schedule(result)
        summary = result_summary(accel, result)
    else:
        spec = SweepSpec.tile_grid(accel, workload, tiles, (mode,))
        executor = Executor(jobs=args.jobs, search_config=config, cache=cache)
        results = executor.run(spec)
        for r in results:
            print(
                f"{r.strategy.describe():28s} "
                f"E={r.result.energy_mj:8.3f} mJ "
                f"L={r.result.latency_cycles / 1e6:9.2f} Mcycles"
            )
        best = min(results, key=lambda r: r.score("energy"))
        print(f"best (energy): {best.strategy.describe()}")
        _print_schedule(best.result)
        summary = {
            "points": [result_summary(accel, r.result) for r in results],
            "best_strategy": best.strategy.describe(),
        }

    if args.cache:
        cache.save()
        print(f"mapping cache: {cache.stats} -> {args.cache}")
    if args.output:
        with open(args.output, "w") as f:
            json.dump(summary, f, indent=2)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
