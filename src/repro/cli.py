"""Command-line interface mirroring the original artifact's ``main.py``.

The DeFiNES artifact is driven as::

    python main.py --accelerator inputs.HW.Edge_TPU_like \
                   --workload inputs.WL...workload_mccnn \
                   --dfmode 1 --tilex 16 --tiley 8

This reproduction exposes the same experiment as::

    python -m repro --accelerator edge_tpu_like --workload mccnn \
                    --mode h_cached_v_recompute --tilex 16 --tiley 8

Results are printed and optionally written as JSON (the artifact wrote
pickle files; JSON keeps them human-readable and diffable).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import access_breakdown
from .core import DepthFirstEngine, DFStrategy, OverlapMode
from .hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator
from .mapping import SearchConfig
from .workloads.zoo import WORKLOAD_FACTORIES, get_workload

#: The artifact's --dfmode integers, kept as aliases.
DFMODE_ALIASES = {
    "0": OverlapMode.FULLY_RECOMPUTE,
    "1": OverlapMode.H_CACHED_V_RECOMPUTE,
    "2": OverlapMode.FULLY_CACHED,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeFiNES reproduction: evaluate a depth-first schedule.",
    )
    parser.add_argument(
        "--accelerator",
        required=True,
        choices=sorted(ACCELERATOR_FACTORIES) + ["depfin_like"],
        help="accelerator from the Table I(a) zoo",
    )
    parser.add_argument(
        "--workload",
        required=True,
        choices=sorted(WORKLOAD_FACTORIES),
        help="workload from the Table I(b) zoo",
    )
    parser.add_argument(
        "--mode",
        "--dfmode",
        dest="mode",
        default="fully_cached",
        help="overlap storing mode (name, or the artifact's 0/1/2)",
    )
    parser.add_argument("--tilex", type=int, default=16, help="tile width")
    parser.add_argument("--tiley", type=int, default=8, help="tile height")
    parser.add_argument(
        "--lpf-limit",
        type=int,
        default=6,
        help="LOMA loop-prime-factor limit (speed/quality knob; paper: 8)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="temporal-mapping orderings evaluated per layer-tile",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the result summary to this JSON file",
    )
    return parser


def _resolve_mode(text: str) -> OverlapMode:
    if text in DFMODE_ALIASES:
        return DFMODE_ALIASES[text]
    try:
        return OverlapMode(text)
    except ValueError:
        names = [m.value for m in OverlapMode] + sorted(DFMODE_ALIASES)
        raise SystemExit(f"unknown mode {text!r}; choose from {names}")


def result_summary(accel, result) -> dict:
    """A JSON-serializable summary of a schedule evaluation."""
    breakdown = access_breakdown(accel, result.total)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "strategy": result.strategy_label,
        "energy_pj": result.energy_pj,
        "energy_mj": result.energy_mj,
        "latency_cycles": result.latency_cycles,
        "mac_count": result.mac_count,
        "edp": result.edp,
        "dram_accesses_elems": result.dram_accesses(),
        "accesses_by_tier": breakdown.by_tier(),
        "accesses_by_category": breakdown.by_category(),
        "stacks": [
            {
                "layers": list(sr.layer_names),
                "tile_grid": [sr.tiling.grid_cols, sr.tiling.grid_rows],
                "tile_types": sr.tile_type_count,
                "energy_pj": sr.total.energy_pj,
                "latency_cycles": sr.total.latency_cycles,
            }
            for sr in result.stacks
        ],
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    accel = get_accelerator(args.accelerator)
    workload = get_workload(args.workload)
    strategy = DFStrategy(
        tile_x=args.tilex, tile_y=args.tiley, mode=_resolve_mode(args.mode)
    )
    engine = DepthFirstEngine(
        accel, SearchConfig(lpf_limit=args.lpf_limit, budget=args.budget)
    )
    result = engine.evaluate(workload, strategy)

    print(result.describe())
    for sr in result.stacks:
        print(
            f"  stack[{'/'.join(sr.layer_names[:2])}"
            f"{'...' if len(sr.layer_names) > 2 else ''}]: "
            f"{sr.tiling.grid_cols}x{sr.tiling.grid_rows} tiles, "
            f"{sr.tile_type_count} types, "
            f"E={sr.total.energy_pj / 1e9:.3f} mJ"
        )
    summary = result_summary(accel, result)
    if args.output:
        with open(args.output, "w") as f:
            json.dump(summary, f, indent=2)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
