"""Rule registry: stable error codes mapped to check functions.

A rule is a function ``(CheckContext) -> Iterable[Finding]`` registered
under a stable code (``DET001``, ``RACE002``, ...).  Codes are part of
the repo's public contract — baselines, CI logs and docs reference
them — so a code is never reused for a different meaning; a retired
rule's code is retired with it.

Registration happens at import time through the :func:`rule` decorator;
importing :mod:`repro.check` pulls in every built-in rule module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from .context import CheckContext
from .findings import Finding

_CODE_RE = re.compile(r"^[A-Z]{2,8}\d{3}$")


class RuleFunc(Protocol):
    def __call__(self, ctx: CheckContext) -> Iterable[Finding]: ...


@dataclass(frozen=True)
class Rule:
    """One registered rule: code, short name, what it enforces."""

    code: str
    name: str
    description: str
    func: RuleFunc

    def run(self, ctx: CheckContext) -> list[Finding]:
        findings = list(self.func(ctx))
        for finding in findings:
            if finding.code != self.code:
                raise ValueError(
                    f"rule {self.code} emitted a finding coded "
                    f"{finding.code!r} ({finding.render()})"
                )
        return findings


_RULES: dict[str, Rule] = {}


def rule(
    code: str, name: str, description: str
) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under a stable error code."""
    if not _CODE_RE.match(code):
        raise ValueError(
            f"rule code must look like DET001 (letters + 3 digits), "
            f"got {code!r}"
        )

    def decorate(func: RuleFunc) -> RuleFunc:
        if code in _RULES:
            raise ValueError(f"rule code {code} registered twice")
        _RULES[code] = Rule(
            code=code, name=name, description=description, func=func
        )
        return func

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise ValueError(f"unknown rule code {code!r}; known: {known}") from None
