"""RACE0xx — guarded-by analysis for the shared-state classes.

The serving layer (``CacheServer``, ``EvalService``) and the cache they
front (``MappingCache``) are touched by handler threads, collector
threads and the foreground loop at once.  Their concurrency contract is
documented *in the source* with trailing annotations on the ``__init__``
assignment of every shared mutable attribute::

    self.connections = 0  # guarded-by: _counter_lock

and these rules enforce the contract lexically:

* **RACE001** — an attribute annotated ``# guarded-by: <lock>`` is only
  mutated inside a ``with self.<lock>:`` block (outside ``__init__``).
* **RACE002** — every mutable shared attribute of the classes listed in
  :data:`REQUIRED_GUARDED_CLASSES` carries an annotation (mutable
  shared = assigned in ``__init__`` and mutated in some other method).
* **RACE003** — the lock-acquisition graph has no order inversion: if
  any code path acquires A then B, no path may acquire B then A
  (acquiring a non-reentrant lock while already holding it is the
  one-lock case of the same deadlock).

The special annotation ``# guarded-by: <owner>`` documents an attribute
that is externally synchronized — mutated only by a single owning
thread, or under a lock held by the *caller* (e.g. ``MappingCache``
behind ``CacheServer._lock``).  It satisfies RACE002 and is exempt from
RACE001's lexical check.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from . import astutil
from .context import CheckContext, SourceFile
from .findings import Finding
from .registry import rule

#: (file, class) pairs whose mutable shared attributes MUST be annotated.
REQUIRED_GUARDED_CLASSES = (
    ("src/repro/serve/cache_server.py", "CacheServer"),
    ("src/repro/serve/service.py", "EvalService"),
    ("src/repro/mapping/cache.py", "MappingCache"),
)

#: Packages scanned for annotations and lock graphs.
RACE_DIRS = ("src/repro",)

#: The externally-synchronized annotation value.
OWNER = "<owner>"

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

_ANNOTATION_RE = re.compile(r"#\s*guarded-by:\s*(<\w+>|\w+)")

#: ``threading`` constructors that create an exclusive lock.
_LOCK_CONSTRUCTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "Lock": False,
    "RLock": True,
}

#: Constructors of objects that are thread-safe by design; attributes
#: holding one need no guarded-by annotation (the primitive *is* the
#: synchronization).
_SYNC_CONSTRUCTORS = frozenset(
    {
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
        "threading.Barrier",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "Barrier",
        "queue.Queue",
        "Queue",
    }
)


@dataclass
class ClassContract:
    """One class's annotated attributes and lock inventory."""

    file: SourceFile
    node: ast.ClassDef
    #: attr -> lock name (or ``OWNER``) from guarded-by annotations.
    guarded: dict[str, str] = field(default_factory=dict)
    #: attrs assigned in ``__init__``.
    init_attrs: dict[str, int] = field(default_factory=dict)
    #: lock attr -> reentrant?
    locks: dict[str, bool] = field(default_factory=dict)
    #: attrs holding a thread-safe primitive (Event, Semaphore, ...).
    sync_attrs: set[str] = field(default_factory=set)


def _annotations_by_line(file: SourceFile) -> dict[int, str]:
    found: dict[int, str] = {}
    for index, line in enumerate(file.lines, start=1):
        match = _ANNOTATION_RE.search(line)
        if match:
            found[index] = match.group(1)
    return found


def _init_method(node: ast.ClassDef) -> ast.FunctionDef | None:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return item
    return None


def _collect_contract(file: SourceFile, node: ast.ClassDef) -> ClassContract:
    contract = ClassContract(file=file, node=node)
    annotations = _annotations_by_line(file)
    init = _init_method(node)
    if init is None:
        return contract
    for stmt in ast.walk(init):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                attr = astutil.self_attribute(target)
                if attr is None:
                    continue
                contract.init_attrs.setdefault(attr, stmt.lineno)
                for line in range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1):
                    if line in annotations:
                        contract.guarded[attr] = annotations[line]
                        break
                value = stmt.value
                if value is None:
                    continue
                # The value may be wrapped (e.g. a conditional
                # expression); any lock/sync constructor inside it
                # classifies the attribute.
                for call in ast.walk(value):
                    if not isinstance(call, ast.Call):
                        continue
                    dotted = astutil.dotted_name(call.func)
                    if dotted in _LOCK_CONSTRUCTORS:
                        contract.locks[attr] = _LOCK_CONSTRUCTORS[dotted]
                    elif dotted in _SYNC_CONSTRUCTORS:
                        contract.sync_attrs.add(attr)
    return contract


def _mutated_self_attrs(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """``(attr, node)`` for every ``self.<attr>`` mutation in the node:
    assignment, augmented assignment, deletion, item assignment and
    in-place mutator method calls."""
    for child in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        for target in targets:
            flat: list[ast.expr] = (
                list(target.elts)
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in flat:
                attr = astutil.self_attribute(element)
                if attr is not None:
                    yield attr, child
                    continue
                # self.x[...] = / del self.x[...] / self.x[...] += ...
                if isinstance(element, ast.Subscript):
                    attr = astutil.self_attribute(element.value)
                    if attr is not None:
                        yield attr, child
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in MUTATOR_METHODS:
                attr = astutil.self_attribute(child.func.value)
                if attr is not None:
                    yield attr, child


def _class_contracts(ctx: CheckContext) -> Iterator[ClassContract]:
    for file in ctx.python_files(*RACE_DIRS):
        assert file.tree is not None
        astutil.walk_with_parents(file.tree)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield _collect_contract(file, node)


def _methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name != "__init__":
            yield item


@rule(
    "RACE001",
    "unguarded mutation",
    "An attribute annotated '# guarded-by: <lock>' may only be mutated "
    "inside a 'with self.<lock>:' block (outside __init__).",
)
def check_guarded_mutations(ctx: CheckContext) -> Iterator[Finding]:
    for contract in _class_contracts(ctx):
        enforced = {
            attr: lock
            for attr, lock in contract.guarded.items()
            if lock != OWNER
        }
        if not enforced:
            continue
        for method in _methods(contract.node):
            for attr, site in _mutated_self_attrs(method):
                lock = enforced.get(attr)
                if lock is None:
                    continue
                if lock not in astutil.held_locks(site):
                    yield Finding(
                        file=contract.file.rel,
                        line=site.lineno,
                        code="RACE001",
                        message=f"{contract.node.name}.{attr} is "
                        f"guarded-by {lock} but {method.name}() mutates "
                        f"it outside 'with self.{lock}'",
                    )


@rule(
    "RACE002",
    "missing guarded-by annotation",
    "Every mutable shared attribute of CacheServer, EvalService and "
    "MappingCache must carry a '# guarded-by:' annotation on its "
    "__init__ assignment ('<owner>' documents external "
    "synchronization).",
)
def check_annotation_coverage(ctx: CheckContext) -> Iterator[Finding]:
    required = set(REQUIRED_GUARDED_CLASSES)
    for contract in _class_contracts(ctx):
        if (contract.file.rel, contract.node.name) not in required:
            continue
        mutated: dict[str, int] = {}
        for method in _methods(contract.node):
            for attr, site in _mutated_self_attrs(method):
                if attr in contract.init_attrs:
                    mutated.setdefault(attr, site.lineno)
        for attr in sorted(mutated):
            if (
                attr in contract.guarded
                or attr in contract.locks
                or attr in contract.sync_attrs
            ):
                continue
            yield Finding(
                file=contract.file.rel,
                line=contract.init_attrs[attr],
                code="RACE002",
                message=f"mutable shared attribute "
                f"{contract.node.name}.{attr} has no guarded-by "
                "annotation; add '# guarded-by: <lock>' (or '<owner>' "
                "for externally synchronized state) on its __init__ "
                "assignment",
            )


def _direct_acquisitions(method: ast.FunctionDef, locks: set[str]) -> set[str]:
    acquired: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                name = astutil.self_attribute(item.context_expr)
                if name is not None and name in locks:
                    acquired.add(name)
    return acquired


def _called_self_methods(node: ast.AST) -> set[str]:
    called: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if astutil.self_attribute(child.func) is not None:
                called.add(child.func.attr)
    return called


@rule(
    "RACE003",
    "lock-order inversion",
    "The per-class lock-acquisition graph (nested 'with self.<lock>' "
    "blocks, followed through same-class method calls) must be free of "
    "cycles; a non-reentrant lock must never be re-acquired while "
    "held.",
)
def check_lock_order(ctx: CheckContext) -> Iterator[Finding]:
    for contract in _class_contracts(ctx):
        if not contract.locks:
            continue
        lock_names = set(contract.locks)
        methods = {m.name: m for m in _methods(contract.node)}
        init = _init_method(contract.node)
        if init is not None:
            methods["__init__"] = init
        # Locks each method may acquire, transitively through direct
        # self.method() calls (fixpoint; the call graph is tiny).
        acquires = {
            name: _direct_acquisitions(method, lock_names)
            for name, method in methods.items()
        }
        calls = {
            name: _called_self_methods(method) & set(methods)
            for name, method in methods.items()
        }
        changed = True
        while changed:
            changed = False
            for name in methods:
                merged = set(acquires[name])
                for callee in calls[name]:
                    merged |= acquires[callee]
                if merged != acquires[name]:
                    acquires[name] = merged
                    changed = True
        # Edges: held lock -> lock acquired while holding it.
        edges: dict[tuple[str, str], tuple[int, str]] = {}
        for name, method in methods.items():
            for node in ast.walk(method):
                newly: set[str] = set()
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        attr = astutil.self_attribute(item.context_expr)
                        if attr is not None and attr in lock_names:
                            newly.add(attr)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if astutil.self_attribute(node.func) is not None:
                        newly = set(acquires.get(node.func.attr, set()))
                if not newly:
                    continue
                held = astutil.held_locks(node) & lock_names
                for holder in held:
                    for acquired in newly:
                        if holder == acquired:
                            if not contract.locks[acquired]:
                                yield Finding(
                                    file=contract.file.rel,
                                    line=node.lineno,
                                    code="RACE003",
                                    message=f"{contract.node.name}."
                                    f"{acquired} is not reentrant but "
                                    f"{name}() may re-acquire it while "
                                    "it is already held",
                                )
                            continue
                        edges.setdefault(
                            (holder, acquired), (node.lineno, name)
                        )
        # Any cycle in the edge graph is an order inversion: some path
        # acquires the locks in one order, another path in the reverse.
        successors: dict[str, set[str]] = {}
        for a, b in edges:
            successors.setdefault(a, set()).add(b)
        reported: set[frozenset[str]] = set()
        for (a, b), (line, where) in sorted(edges.items()):
            path = _find_path(successors, b, a)
            if path is None:
                continue
            cycle = frozenset([a, *path])
            if cycle in reported:
                continue
            reported.add(cycle)
            chain = " -> ".join([a, *path])
            yield Finding(
                file=contract.file.rel,
                line=line,
                code="RACE003",
                message=f"lock-order inversion in {contract.node.name}: "
                f"{where}() acquires {a} then {b}, closing the "
                f"acquisition cycle {chain}",
            )


def _find_path(
    successors: dict[str, set[str]], start: str, goal: str
) -> list[str] | None:
    """Shortest edge path ``start -> ... -> goal`` (BFS), or ``None``."""
    frontier: list[list[str]] = [[start]]
    seen = {start}
    while frontier:
        next_frontier: list[list[str]] = []
        for path in frontier:
            if path[-1] == goal:
                return path
            for node in sorted(successors.get(path[-1], ())):
                if node not in seen:
                    seen.add(node)
                    next_frontier.append(path + [node])
        frontier = next_frontier
    return None
