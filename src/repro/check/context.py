"""The parsed view of a source tree that every rule runs against.

:class:`CheckContext` walks a repo root once — ``src/`` and
``benchmarks/`` python files plus ``README.md`` — and hands rules
pre-parsed :class:`SourceFile` records (source text, split lines, AST).
Parsing happens exactly once per file per run, whatever the rule count;
a file with a syntax error is reported by the runner (code ``CHK001``)
and skipped by the rules, so one broken file cannot hide findings in
the rest of the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Directories (relative to the root) whose python files are scanned.
SOURCE_DIRS = ("src", "benchmarks")


@dataclass
class SourceFile:
    """One parsed python file of the checked tree."""

    rel: str
    """Posix-style path relative to the checked root."""

    source: str
    lines: list[str]
    tree: ast.Module | None
    """The parsed module, or ``None`` when the file does not parse."""

    error: str | None = None
    """The syntax error that made ``tree`` ``None``, if any."""

    def is_under(self, *prefixes: str) -> bool:
        """True when the file lives under any of the given relative
        directory prefixes (posix style, e.g. ``src/repro/mapping``)."""
        return any(
            self.rel == prefix or self.rel.startswith(prefix + "/")
            for prefix in prefixes
        )


class CheckContext:
    """Parsed source tree + docs, shared by every rule in one run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.files: list[SourceFile] = []
        for base in SOURCE_DIRS:
            base_dir = self.root / base
            if not base_dir.is_dir():
                continue
            for path in sorted(base_dir.rglob("*.py")):
                self.files.append(self._parse(path))
        readme = self.root / "README.md"
        self.readme: str = readme.read_text() if readme.exists() else ""

    def _parse(self, path: Path) -> SourceFile:
        rel = path.relative_to(self.root).as_posix()
        source = path.read_text()
        lines = source.splitlines()
        try:
            tree: ast.Module | None = ast.parse(source, filename=rel)
            error = None
        except SyntaxError as exc:
            tree = None
            error = f"{type(exc).__name__}: {exc.msg} (line {exc.lineno})"
        return SourceFile(rel=rel, source=source, lines=lines, tree=tree, error=error)

    # ------------------------------------------------------------------
    def python_files(self, *prefixes: str) -> list[SourceFile]:
        """Parsed files under the given prefixes (all files when none
        is given); files that failed to parse are excluded — the runner
        reports those separately."""
        return [
            f
            for f in self.files
            if f.tree is not None and (not prefixes or f.is_under(*prefixes))
        ]

    def broken_files(self) -> list[SourceFile]:
        """Files that did not parse."""
        return [f for f in self.files if f.tree is None]
