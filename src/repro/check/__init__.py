"""Self-hosted static invariant checker (``repro check``).

The repo's load-bearing promises — serial == process == service
bit-identity, scalar == batch engine equality, cache keys that capture
exactly the semantic knobs — are enforced dynamically by the test
suite, but only on the paths a test happens to exercise.  This package
enforces the *source-level contracts* behind those promises on every
file, every commit:

* **DET0xx** — determinism lints: no wall-clock reads, no module-level
  ``random.*`` draws, no unseeded RNG construction, no iteration over
  unordered sets inside the result-producing packages (``mapping/``,
  ``dse/``, ``explore/``).
* **RACE0xx** — guarded-by analysis: shared mutable attributes carry a
  ``# guarded-by: <lock>`` annotation and are only mutated inside a
  ``with self.<lock>`` block; the lock-acquisition graph is checked
  for order inversions.
* **CACHE0xx** — cache-token purity: every field of a key-carrying
  config class appears in its token method or in an explicit
  ``NON_SEMANTIC`` allowlist.
* **DOC0xx** — drift checks: every ``REPRO_*`` environment variable
  and CLI flag read by the code is documented in the README.

Findings are :class:`~repro.check.findings.Finding` records with
stable error codes; deliberate exceptions live in a committed
``check_baseline.json`` with a one-line justification each (see
:mod:`repro.check.findings`).  The framework runs on its own source:
``src/repro/check`` is part of the scanned tree.
"""

from __future__ import annotations

# Importing the rule modules registers their rules.
from . import rules_cache, rules_det, rules_doc, rules_race  # noqa: F401
from .context import CheckContext, SourceFile
from .findings import Baseline, BaselineEntry, Finding
from .registry import Rule, all_rules, get_rule, rule
from .runner import CheckReport, render_report, run_checks

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CheckContext",
    "CheckReport",
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "render_report",
    "rule",
    "run_checks",
]
