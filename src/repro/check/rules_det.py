"""DET0xx — determinism lints for the result-producing packages.

The exploration stack's core promise is bit-identity: the same inputs
produce the same results whatever the backend, worker count or host.
These rules keep nondeterminism out of the packages that *compute*
results:

* **DET001** — wall-clock reads (``time.time()``, ``datetime.now()``,
  ...).  Timestamps in cost-affecting code make results depend on when
  they ran; telemetry uses ``time.monotonic()`` *durations*, which are
  never fed into results and stay allowed.
* **DET002** — module-level RNG draws (``random.random()``,
  ``np.random.rand()``, ...).  Global RNG state is shared across the
  process and reseeded by whoever got there first; all randomness must
  flow through a seeded instance (``random.Random(seed)``) threaded
  through call sites.
* **DET003** — unseeded RNG construction (``random.Random()``,
  ``np.random.default_rng()`` with no arguments): seeds the instance
  from the OS, so two runs diverge by design.
* **DET004** — iteration over an unordered set (``for x in {...}``,
  ``list(set(...))``).  Set iteration order depends on
  ``PYTHONHASHSEED`` for strings, so any result built by walking a set
  differs across processes; wrap the set in ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import astutil
from .context import CheckContext, SourceFile
from .findings import Finding
from .registry import rule

#: Packages (relative to the checked root) these rules police.
DETERMINISM_DIRS = (
    "src/repro/mapping",
    "src/repro/dse",
    "src/repro/explore",
)

#: Dotted call names that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: ``random.X`` attributes that are *not* module-level draws.
RANDOM_NON_DRAWS = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` constructors that take a seed as first argument.
NUMPY_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator"})

#: Callables whose argument's iteration order reaches the caller.
ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate"})


def _det_files(ctx: CheckContext) -> list[SourceFile]:
    return ctx.python_files(*DETERMINISM_DIRS)


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that are definitely an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = astutil.call_name(node)
        if name in ("set", "frozenset"):
            return True
    return False


@rule(
    "DET001",
    "wall-clock read",
    "No time.time()/datetime.now()-style wall-clock reads inside "
    "mapping/, dse/ or explore/ (results must not depend on when they "
    "ran; monotonic durations for telemetry are fine).",
)
def check_wall_clock(ctx: CheckContext) -> Iterator[Finding]:
    for file in _det_files(ctx):
        assert file.tree is not None
        for node in astutil.walk_with_parents(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = astutil.dotted_name(node.func)
            if dotted in WALL_CLOCK_CALLS:
                yield Finding(
                    file=file.rel,
                    line=node.lineno,
                    code="DET001",
                    message=f"wall-clock read {dotted}() in a "
                    "determinism-scoped package; results must not depend "
                    "on the time of the run",
                )


@rule(
    "DET002",
    "module-level RNG draw",
    "No random.*/np.random.* module-level draws inside mapping/, dse/ "
    "or explore/; randomness must flow through a seeded "
    "random.Random(seed) instance threaded through call sites.",
)
def check_global_rng(ctx: CheckContext) -> Iterator[Finding]:
    for file in _det_files(ctx):
        assert file.tree is not None
        for node in astutil.walk_with_parents(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = astutil.dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            head, _, tail = dotted.partition(".")
            if head == "random" and tail not in RANDOM_NON_DRAWS:
                yield Finding(
                    file=file.rel,
                    line=node.lineno,
                    code="DET002",
                    message=f"module-level RNG draw {dotted}(); thread a "
                    "seeded random.Random(seed) instance instead",
                )
            elif head in ("np", "numpy") and tail.startswith("random."):
                fn = tail.removeprefix("random.")
                if fn not in NUMPY_RNG_CONSTRUCTORS:
                    yield Finding(
                        file=file.rel,
                        line=node.lineno,
                        code="DET002",
                        message=f"module-level RNG draw {dotted}(); use a "
                        "seeded numpy Generator instance instead",
                    )


@rule(
    "DET003",
    "unseeded RNG",
    "RNG instances inside mapping/, dse/ or explore/ must be "
    "constructed with an explicit seed (random.Random() and "
    "np.random.default_rng() without arguments seed from the OS).",
)
def check_unseeded_rng(ctx: CheckContext) -> Iterator[Finding]:
    for file in _det_files(ctx):
        assert file.tree is not None
        for node in astutil.walk_with_parents(file.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            dotted = astutil.dotted_name(node.func)
            if dotted is None:
                continue
            unseeded = dotted in ("random.Random", "Random") or (
                dotted.partition(".")[0] in ("np", "numpy")
                and dotted.endswith(
                    ("random.default_rng", "random.RandomState")
                )
            )
            if unseeded:
                yield Finding(
                    file=file.rel,
                    line=node.lineno,
                    code="DET003",
                    message=f"unseeded RNG {dotted}(); pass an explicit "
                    "seed so runs are reproducible",
                )


@rule(
    "DET004",
    "unordered set iteration",
    "No iterating over a set expression inside mapping/, dse/ or "
    "explore/ (set order varies with PYTHONHASHSEED across processes); "
    "wrap the set in sorted(...).",
)
def check_set_iteration(ctx: CheckContext) -> Iterator[Finding]:
    for file in _det_files(ctx):
        assert file.tree is not None
        for node in astutil.walk_with_parents(file.tree):
            iter_exprs: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iter_exprs.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = astutil.call_name(node)
                if name in ORDER_SENSITIVE_CONSUMERS and node.args:
                    iter_exprs.append(node.args[0])
            for expr in iter_exprs:
                if _is_set_expr(expr):
                    yield Finding(
                        file=file.rel,
                        line=expr.lineno,
                        code="DET004",
                        message="iteration over an unordered set "
                        "expression; wrap it in sorted(...) so the order "
                        "is process-independent",
                    )
