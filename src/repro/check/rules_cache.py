"""CACHE0xx — cache-token purity for key-carrying config classes.

The mapping cache, DSE checkpoints and golden fixtures are keyed by
serialized config objects.  A config field that affects results but is
missing from the class's token method silently aliases distinct
configurations onto one cache entry — the bug class PR 6 dodged by
*deliberately* excluding ``SearchConfig.engine`` (the engines are
bit-identical, so the exclusion is sound, but it must be explicit).

These rules generalize that audit: every field of a class listed in
:data:`TOKEN_CONTRACTS` must either be referenced by its token method
(``cache_token``/``to_json``) or be named in a ``NON_SEMANTIC``
class-level allowlist — a ``frozenset`` of field names documented as
not affecting results.

* **CACHE001** — a field appears in neither the token method nor
  ``NON_SEMANTIC``.
* **CACHE002** — a ``NON_SEMANTIC`` entry names no current field
  (stale allowlist).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from . import astutil
from .context import CheckContext
from .findings import Finding
from .registry import rule

#: (file, class, token method) triples under the purity contract.
TOKEN_CONTRACTS = (
    ("src/repro/mapping/loma.py", "SearchConfig", "cache_token"),
    ("src/repro/dse/space.py", "DesignPoint", "to_json"),
    ("src/repro/dse/space.py", "DesignSpace", "to_json"),
)

#: Name of the class-level allowlist attribute.
ALLOWLIST_NAME = "NON_SEMANTIC"


@dataclass
class _TokenClass:
    node: ast.ClassDef
    fields: dict[str, int]
    allowlist: dict[str, int]
    allowlist_line: int | None
    token_method: ast.FunctionDef | None


def _collect(node: ast.ClassDef, token_method: str) -> _TokenClass:
    fields: dict[str, int] = {}
    allowlist: dict[str, int] = {}
    allowlist_line: int | None = None
    method: ast.FunctionDef | None = None
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            name = item.target.id
            annotation = ast.dump(item.annotation)
            if not name.startswith("_") and "ClassVar" not in annotation:
                fields[name] = item.lineno
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == ALLOWLIST_NAME
                ):
                    allowlist_line = item.lineno
                    for element in ast.walk(item.value):
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            allowlist[element.value] = element.lineno
        elif isinstance(item, ast.FunctionDef) and item.name == token_method:
            method = item
    return _TokenClass(
        node=node,
        fields=fields,
        allowlist=allowlist,
        allowlist_line=allowlist_line,
        token_method=method,
    )


def _referenced_fields(method: ast.FunctionDef) -> set[str]:
    """Field names the token method reads as ``self.<name>``."""
    refs: set[str] = set()
    for node in ast.walk(method):
        name = astutil.self_attribute(node)
        if name is not None:
            refs.add(name)
    return refs


def _token_classes(
    ctx: CheckContext,
) -> Iterator[tuple[str, str, _TokenClass]]:
    by_file: dict[str, list[tuple[str, str]]] = {}
    for rel, cls, method in TOKEN_CONTRACTS:
        by_file.setdefault(rel, []).append((cls, method))
    for file in ctx.python_files():
        wanted = by_file.get(file.rel)
        if not wanted:
            continue
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for cls, method in wanted:
                if node.name == cls:
                    yield file.rel, method, _collect(node, method)


@rule(
    "CACHE001",
    "field missing from cache token",
    "Every field of SearchConfig/DesignPoint/DesignSpace must be "
    "referenced by its token method (cache_token/to_json) or listed in "
    "the class's NON_SEMANTIC allowlist with a comment saying why it "
    "cannot affect results.",
)
def check_token_coverage(ctx: CheckContext) -> Iterator[Finding]:
    for rel, method_name, info in _token_classes(ctx):
        if info.token_method is None:
            yield Finding(
                file=rel,
                line=info.node.lineno,
                code="CACHE001",
                message=f"{info.node.name} is under the cache-token "
                f"purity contract but has no {method_name}() method",
            )
            continue
        referenced = _referenced_fields(info.token_method)
        for name in sorted(info.fields):
            if name in referenced or name in info.allowlist:
                continue
            yield Finding(
                file=rel,
                line=info.fields[name],
                code="CACHE001",
                message=f"field {info.node.name}.{name} appears in "
                f"neither {method_name}() nor {ALLOWLIST_NAME}; a "
                "result-affecting field outside the token aliases "
                "distinct configs onto one cache entry",
            )


@rule(
    "CACHE002",
    "stale NON_SEMANTIC entry",
    "Every name in a NON_SEMANTIC allowlist must be a current field of "
    "its class (a stale entry hides future coverage gaps).",
)
def check_allowlist_fresh(ctx: CheckContext) -> Iterator[Finding]:
    for rel, _method_name, info in _token_classes(ctx):
        for name in sorted(info.allowlist):
            if name not in info.fields:
                yield Finding(
                    file=rel,
                    line=info.allowlist[name],
                    code="CACHE002",
                    message=f"{ALLOWLIST_NAME} entry {name!r} on "
                    f"{info.node.name} names no current field; remove "
                    "the stale entry",
                )
