"""DOC0xx — documentation drift checks.

The README documents two operator-facing surfaces: the ``REPRO_*``
environment-variable table and the CLI flags of each subcommand.  Both
drift silently — a new env knob or flag lands in code and the docs a PR
behind.  These rules make the README load-bearing:

* **DOC001** — every ``REPRO_*`` environment variable the code reads
  (``os.environ`` / ``os.getenv`` / a ``*_ENV`` constant) appears in
  the README.
* **DOC002** — every long CLI option (``--flag``) registered by an
  ``add_argument`` call in ``src/`` appears in the README.

Both rules match by literal token, so documenting a knob anywhere in
the README satisfies them; the point is that the token exists at all.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .context import CheckContext
from .findings import Finding
from .registry import rule

#: Environment variables are matched by this shape.
_ENV_VAR_RE = re.compile(r"^REPRO_[A-Z][A-Z0-9_]*$")

#: Directories scanned for env-var reads (benchmarks read REPRO_JOBS &c).
ENV_DIRS = ("src", "benchmarks")

#: Directories whose argparse flags must be documented.
CLI_DIRS = ("src",)


@rule(
    "DOC001",
    "undocumented environment variable",
    "Every REPRO_* environment variable read anywhere in src/ or "
    "benchmarks/ must appear in the README (the env-var table).",
)
def check_env_vars_documented(ctx: CheckContext) -> Iterator[Finding]:
    documented = set(re.findall(r"REPRO_[A-Z][A-Z0-9_]*", ctx.readme))
    seen: set[str] = set()
    for file in ctx.python_files(*ENV_DIRS):
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _ENV_VAR_RE.match(node.value)
            ):
                continue
            name = node.value
            if name in documented or name in seen:
                continue
            seen.add(name)
            yield Finding(
                file=file.rel,
                line=node.lineno,
                code="DOC001",
                message=f"environment variable {name} is read by the "
                "code but missing from the README env table",
            )


def _argparse_flags(tree: ast.Module) -> Iterator[tuple[str, int]]:
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("--")
            ):
                yield arg.value, arg.lineno


@rule(
    "DOC002",
    "undocumented CLI flag",
    "Every long option (--flag) registered via add_argument in src/ "
    "must appear in the README.",
)
def check_cli_flags_documented(ctx: CheckContext) -> Iterator[Finding]:
    flag_re = re.compile(r"--[a-z][a-z0-9-]*")
    documented = set(flag_re.findall(ctx.readme))
    seen: set[str] = set()
    for file in ctx.python_files(*CLI_DIRS):
        assert file.tree is not None
        for flag, line in _argparse_flags(file.tree):
            if flag in documented or flag in seen:
                continue
            seen.add(flag)
            yield Finding(
                file=file.rel,
                line=line,
                code="DOC002",
                message=f"CLI flag {flag} is registered by the code but "
                "never mentioned in the README",
            )
