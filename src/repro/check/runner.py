"""Run every registered rule over a tree and reconcile with the baseline.

``run_checks`` produces a :class:`CheckReport` splitting findings into
*new* (unblessed — these fail the run), *blessed* (matched by a
baseline entry) and the baseline bookkeeping strict mode also gates on:
*stale* entries (blessing nothing — the underlying finding was fixed,
so the entry must be deleted) and *unjustified* entries (blessed
without a reason).  Files that do not parse are reported with the
pseudo-code ``CHK001`` and fail the run unconditionally — a syntax
error would otherwise hide every real finding in the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .context import CheckContext
from .findings import Baseline, BaselineEntry, Finding
from .registry import Rule, all_rules


@dataclass
class CheckReport:
    """Outcome of one checker run."""

    new: list[Finding] = field(default_factory=list)
    blessed: list[tuple[Finding, BaselineEntry]] = field(default_factory=list)
    broken: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    unjustified: list[BaselineEntry] = field(default_factory=list)
    rules_run: int = 0
    files_scanned: int = 0

    def failed(self, strict: bool = False) -> bool:
        """Whether the run should exit nonzero."""
        if self.new or self.broken:
            return True
        if strict and (self.stale or self.unjustified):
            return True
        return False

    @property
    def findings(self) -> list[Finding]:
        """Every finding, blessed or not (baseline regeneration input)."""
        return sorted(
            [*self.new, *(finding for finding, _ in self.blessed)]
        )


def run_checks(
    root: str | Path,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> CheckReport:
    """Run ``rules`` (default: all registered) over the tree at ``root``."""
    ctx = CheckContext(root)
    active = rules if rules is not None else all_rules()
    baseline = baseline if baseline is not None else Baseline()
    report = CheckReport(
        rules_run=len(active), files_scanned=len(ctx.files)
    )
    for file in ctx.broken_files():
        report.broken.append(
            Finding(
                file=file.rel,
                line=1,
                code="CHK001",
                message=f"file does not parse: {file.error}",
            )
        )
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.run(ctx))
    matched: set[int] = set()
    for finding in sorted(findings):
        entry = baseline.lookup(finding)
        if entry is None:
            report.new.append(finding)
        else:
            report.blessed.append((finding, entry))
            matched.add(id(entry))
    for entry in baseline.entries:
        if id(entry) not in matched:
            report.stale.append(entry)
        elif not entry.justification.strip():
            report.unjustified.append(entry)
    return report


def render_report(
    report: CheckReport, strict: bool = False, verbose: bool = False
) -> str:
    """Human-readable report (the ``repro check run`` output)."""
    lines: list[str] = []
    for finding in report.broken:
        lines.append(finding.render())
    for finding in report.new:
        lines.append(finding.render())
    if verbose and report.blessed:
        lines.append("")
        lines.append(f"blessed findings ({len(report.blessed)}):")
        for finding, entry in report.blessed:
            lines.append(f"  {finding.render()}")
            lines.append(f"    blessed: {entry.justification or '(no reason)'}")
    if report.stale:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(report.stale)}) — the finding "
            "was fixed; delete the entry:"
        )
        for entry in report.stale:
            lines.append(f"  {entry.code} {entry.file}: {entry.message}")
    if report.unjustified:
        lines.append("")
        lines.append(
            f"baseline entries without a justification "
            f"({len(report.unjustified)}):"
        )
        for entry in report.unjustified:
            lines.append(f"  {entry.code} {entry.file}: {entry.message}")
    lines.append("")
    verdict = "FAILED" if report.failed(strict) else "ok"
    lines.append(
        f"repro check: {verdict} — {len(report.new)} new, "
        f"{len(report.blessed)} blessed, {len(report.broken)} unparseable, "
        f"{len(report.stale)} stale baseline entr"
        f"{'y' if len(report.stale) == 1 else 'ies'} "
        f"({report.rules_run} rules over {report.files_scanned} files)"
    )
    return "\n".join(lines).lstrip("\n")
