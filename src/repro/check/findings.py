"""Finding records and the committed baseline of blessed exceptions.

A :class:`Finding` is one rule violation at one source location.  The
:class:`Baseline` is the repo's list of *deliberate* exceptions
(``check_baseline.json``): each entry names the finding it blesses —
matched by ``(code, file, message)``, never by line number, so
unrelated edits cannot silently unbless an entry — plus a one-line
justification.  ``repro check run --strict`` fails on any finding
without a baseline entry, any baseline entry without a justification,
and any *stale* entry (one that no longer matches a finding), so the
baseline can only shrink deliberately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: On-disk baseline format version; bump when the entry encoding changes.
BASELINE_FORMAT = 1

#: Default baseline filename, resolved against the checked tree's root.
BASELINE_NAME = "check_baseline.json"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``file`` is the posix-style path relative to the checked root;
    ``line`` is 1-based.  ``message`` is line-independent by contract
    (it names symbols, never positions) so baseline matching survives
    unrelated edits.
    """

    file: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.code} {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Baseline-matching identity (line number excluded)."""
        return (self.code, self.file, self.message)


@dataclass
class BaselineEntry:
    """One blessed exception: the finding it matches + why it is OK."""

    code: str
    file: str
    message: str
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.code, self.file, self.message)

    def to_json(self) -> dict[str, str]:
        return {
            "code": self.code,
            "file": self.file,
            "message": self.message,
            "justification": self.justification,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> BaselineEntry:
        try:
            return cls(
                code=str(data["code"]),
                file=str(data["file"]),
                message=str(data["message"]),
                justification=str(data.get("justification", "")),
            )
        except KeyError as exc:
            raise ValueError(
                f"baseline entry missing required field {exc}"
            ) from None


@dataclass
class Baseline:
    """The committed set of blessed findings."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def lookup(self, finding: Finding) -> BaselineEntry | None:
        for entry in self.entries:
            if entry.key() == finding.key():
                return entry
        return None

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline,
        anything unparseable raises ``ValueError`` naming the file."""
        source = Path(path)
        if not source.exists():
            return cls()
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{source}: not a check baseline: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != BASELINE_FORMAT
            or not isinstance(payload.get("entries"), list)
        ):
            raise ValueError(
                f"{source}: unsupported check-baseline format "
                f"(expected format={BASELINE_FORMAT} with an entries list)"
            )
        entries = []
        for raw in payload["entries"]:
            if not isinstance(raw, dict):
                raise ValueError(f"{source}: baseline entry is not an object")
            entries.append(BaselineEntry.from_json(raw))
        return cls(entries=entries)

    def save(self, path: str | Path) -> Path:
        """Write the baseline (sorted, one entry per finding)."""
        target = Path(path)
        payload = {
            "format": BASELINE_FORMAT,
            "entries": [
                entry.to_json()
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target
