"""The ``repro check`` CLI family.

* ``repro check run`` — run every rule over the tree, reconcile with
  the committed baseline, exit nonzero on unblessed findings
  (``--strict`` additionally fails on stale or unjustified baseline
  entries — the CI gate).
* ``repro check baseline`` — regenerate the baseline from the current
  findings, preserving the justifications of entries that still match;
  new entries land with an empty justification, which ``run --strict``
  rejects until a human writes the one-line reason.
* ``repro check rules`` — list every registered rule code.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from .findings import BASELINE_NAME, Baseline, BaselineEntry
from .registry import all_rules, get_rule
from .runner import render_report, run_checks


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="repo root to check (default: the current directory)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="CODE,CODE",
        help="comma-separated rule codes to run (default: all)",
    )


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Static invariant checker: determinism, guarded-by "
        "concurrency, cache-token purity and doc-drift rules over the "
        "source tree, with a committed baseline of blessed exceptions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run the rules; exit 1 on unblessed findings"
    )
    _add_common(p_run)
    p_run.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries and baseline entries "
        "without a justification (the CI mode)",
    )
    p_run.add_argument(
        "--verbose",
        action="store_true",
        help="also list blessed findings and their justifications",
    )
    p_run.set_defaults(func=_run)

    p_baseline = sub.add_parser(
        "baseline",
        help="regenerate the baseline from current findings "
        "(preserves existing justifications)",
    )
    _add_common(p_baseline)
    p_baseline.set_defaults(func=_baseline)

    p_rules = sub.add_parser("rules", help="list registered rule codes")
    p_rules.set_defaults(func=_rules)
    return parser


def _resolve(args: argparse.Namespace) -> tuple[Path, Path, "list | None"]:
    root = Path(args.root)
    if not root.is_dir():
        raise SystemExit(f"check root {root} is not a directory")
    baseline_path = (
        Path(args.baseline) if args.baseline is not None else root / BASELINE_NAME
    )
    rules = None
    if args.rules is not None:
        try:
            rules = [
                get_rule(code.strip())
                for code in args.rules.split(",")
                if code.strip()
            ]
        except ValueError as exc:
            raise SystemExit(str(exc))
        if not rules:
            raise SystemExit("--rules selected no rules")
    return root, baseline_path, rules


def _run(args: argparse.Namespace) -> int:
    root, baseline_path, rules = _resolve(args)
    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = run_checks(root, rules=rules, baseline=baseline)
    print(render_report(report, strict=args.strict, verbose=args.verbose))
    return 1 if report.failed(strict=args.strict) else 0


def _baseline(args: argparse.Namespace) -> int:
    root, baseline_path, rules = _resolve(args)
    try:
        previous = Baseline.load(baseline_path)
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = run_checks(root, rules=rules, baseline=previous)
    entries = []
    fresh = 0
    for finding in report.findings:
        entry = previous.lookup(finding)
        if entry is None:
            entry = BaselineEntry(
                code=finding.code,
                file=finding.file,
                message=finding.message,
                justification="",
            )
            fresh += 1
        entries.append(entry)
    Baseline(entries=entries).save(baseline_path)
    print(
        f"wrote {baseline_path}: {len(entries)} entr"
        f"{'y' if len(entries) == 1 else 'ies'} ({fresh} new — fill in "
        f"their justifications; 'repro check run --strict' rejects "
        f"empty ones)"
    )
    if report.broken:
        print("warning: unparseable files were NOT baselined:")
        for finding in report.broken:
            print(f"  {finding.render()}")
    return 0


def _rules(args: argparse.Namespace) -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"    {rule.description}")
    return 0


def run_check(argv: Sequence[str]) -> int:
    args = build_check_parser().parse_args(list(argv))
    result: int = args.func(args)
    return result
