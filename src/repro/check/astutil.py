"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator


def walk_with_parents(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that first stamps every node with ``.parent``
    (the module node's parent is ``None``)."""
    setattr(tree, "parent", getattr(tree, "parent", None))
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, "parent", node)
    return ast.walk(tree)


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The node's parent chain, innermost first (requires a tree walked
    by :func:`walk_with_parents`)."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def self_attribute(node: ast.AST) -> str | None:
    """``"x"`` when the node is exactly ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def dotted_name(node: ast.AST) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def enclosing_function(
    node: ast.AST,
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function the node sits in, if any."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    """The innermost class the node sits in, if any."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def held_locks(node: ast.AST) -> set[str]:
    """Names of every ``self.<lock>`` held at the node's position:
    the ``with self.X:`` (or ``with self.X as y:``) statements on the
    node's ancestor chain within its enclosing function."""
    held: set[str] = set()
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                name = self_attribute(item.context_expr)
                if name is not None:
                    held.add(name)
    return held


def call_name(node: ast.Call) -> str | None:
    """The called name (``"f"`` for ``f(...)``), else ``None``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None
