"""Mapping substrate: single-layer cost model (ZigZag substitute) and
temporal-mapping search engine (LOMA substitute)."""

from .allocation import AllocationError, allocate
from .batch import BatchEvaluation, BatchFallback, evaluate_candidates
from .cache import MappingCache
from .cost import (
    OBJECTIVE_NAMES,
    CostResult,
    Objective,
    Traffic,
    resolve_objective,
    validate_objectives,
)
from .loma import ENGINES, MappingSearchEngine, SearchConfig, SearchResult
from .loops import (
    Loop,
    count_multiset_permutations,
    lpf_decompose,
    multiset_permutations,
    prime_factors,
)
from .temporal import (
    TemporalMapping,
    cumulative_dim_products,
    operand_footprint_elems,
    temporal_sizes,
    utilized_spatial,
)
from .zigzag import evaluate_mapping

__all__ = [
    "AllocationError",
    "allocate",
    "BatchEvaluation",
    "BatchFallback",
    "evaluate_candidates",
    "ENGINES",
    "MappingCache",
    "CostResult",
    "Traffic",
    "Objective",
    "OBJECTIVE_NAMES",
    "resolve_objective",
    "validate_objectives",
    "MappingSearchEngine",
    "SearchConfig",
    "SearchResult",
    "Loop",
    "prime_factors",
    "lpf_decompose",
    "multiset_permutations",
    "count_multiset_permutations",
    "TemporalMapping",
    "temporal_sizes",
    "utilized_spatial",
    "cumulative_dim_products",
    "operand_footprint_elems",
    "evaluate_mapping",
]
