"""Loop-order-based memory allocation (the "MA" in LOMA [29]).

Given a loop ordering, each operand's memory-level boundaries are placed
greedily: walk the nest from the innermost loop outwards and keep
extending the current level's resident data set until its capacity is
exhausted, then move to the next level.

Capacity contention follows DeFiNES' step-3 semantics: every operand's
*top* level (chosen by the depth-first planner) permanently holds the
operand's full footprint, so those residencies are reserved first; the
remaining space is then handed out for transient sub-level tiles in the
fixed priority order W > I > O (Fig. 5(3)) — the mechanism behind
Fig. 10's "I keeps the LB, O is pushed to GB" behaviour.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..hardware.accelerator import Accelerator
from ..hardware.memory import MemoryLevel
from ..workloads.layer import LayerSpec
from .loops import Loop
from .temporal import (
    TemporalMapping,
    cumulative_dim_products,
    merge_products,
    operand_footprint_elems,
    utilized_spatial,
)

#: Capacity contention priority (paper Fig. 5 step 3).
PRIORITY = ("W", "I", "O")


class AllocationError(ValueError):
    """The loop nest cannot be allocated into the truncated hierarchy."""


def _resident_bytes(
    layer: LayerSpec,
    operand: str,
    level: MemoryLevel,
    prefix: int,
    loops: Sequence[Loop],
    spatial: Mapping[str, int],
    is_top: bool,
) -> float:
    """Resident bytes of ``operand`` at ``level`` for a loop prefix."""
    products = cumulative_dim_products(loops, prefix)
    if not level.instance.per_pe:
        products = merge_products(products, spatial)
    elems = operand_footprint_elems(layer, operand, products)
    if operand == "O":
        bits = layer.act_bits if is_top else layer.psum_bits
    else:
        bits = layer.operand_bits(operand)
    return elems * bits / 8.0


def active_operands(layer: LayerSpec) -> tuple[str, ...]:
    """The operands that occupy memory for ``layer`` (weight-less layers
    drop ``W``), in the paper's contention priority order."""
    return tuple(
        op for op in PRIORITY if not (op == "W" and layer.weight_count == 0)
    )


def reserve_top_levels(
    layer: LayerSpec,
    accel: Accelerator,
    tops: Mapping[str, int],
    loops: Sequence[Loop],
    spatial: Mapping[str, int],
) -> dict[int, float]:
    """Phase 1 of the greedy allocation: reserve every operand's full
    footprint at its top level, returning the per-instance used bytes.

    The residencies depend only on the loop *multiset* (full cumulative
    products), not the ordering, so the batched engine runs this once
    per search problem while :func:`allocate` runs it per ordering —
    both produce the identical floats.  Raises :class:`AllocationError`
    when the footprints do not jointly fit (every ordering of the same
    multiset is then infeasible).
    """
    n = len(loops)
    used_bytes: dict[int, float] = {}
    for operand in active_operands(layer):
        hierarchy = accel.hierarchy(operand)
        top = tops.get(operand, len(hierarchy) - 1)
        if not 0 <= top < len(hierarchy):
            raise AllocationError(
                f"{layer.name}/{operand}: top level {top} out of range"
            )
        level = hierarchy[top]
        if level.instance.is_dram:
            continue
        resident = _resident_bytes(layer, operand, level, n, loops, spatial, True)
        already = used_bytes.get(level.instance.uid, 0.0)
        if resident + already > level.instance.size_bytes:
            raise AllocationError(
                f"{layer.name}/{operand}: footprint {resident:.0f}B does not "
                f"fit top level {level.name} "
                f"({level.instance.size_bytes - already:.0f}B available)"
            )
        if not level.instance.per_pe:
            used_bytes[level.instance.uid] = already + resident
    return used_bytes


def allocate(
    layer: LayerSpec,
    accel: Accelerator,
    tops: Mapping[str, int],
    loops: Sequence[Loop],
) -> TemporalMapping:
    """Allocate ``loops`` (innermost first) to the truncated hierarchies.

    ``tops[op]`` is the index of the operand's top memory level (DeFiNES
    step 3 output); levels above it are invisible to the mapping, which is
    how the paper prevents the single-layer tools from "fetching data from
    or storing data to unnecessarily high memory levels".

    Raises :class:`AllocationError` when the operands' full footprints do
    not jointly fit their (non-DRAM) top levels.
    """
    spatial = utilized_spatial(layer, accel)
    loops = tuple(loops)
    n = len(loops)
    operands = active_operands(layer)

    # Phase 1: reserve every operand's full footprint at its top level.
    used_bytes = reserve_top_levels(layer, accel, tops, loops, spatial)

    # Phase 2: greedy innermost-first sub-level boundaries.
    boundaries: dict[str, tuple[int, ...]] = {}
    for operand in PRIORITY:
        if operand not in operands:
            boundaries[operand] = (n,)
            continue
        hierarchy = accel.hierarchy(operand)
        top = tops.get(operand, len(hierarchy) - 1)
        levels = hierarchy[: top + 1]
        bounds: list[int] = []
        prev = 0
        for idx, level in enumerate(levels):
            if idx == len(levels) - 1:
                bounds.append(n)
                break
            available = level.instance.size_bytes - used_bytes.get(
                level.instance.uid, 0.0
            )
            bound = prev
            while bound < n:
                need = _resident_bytes(
                    layer, operand, level, bound + 1, loops, spatial, False
                )
                if need > available:
                    break
                bound += 1
            resident = _resident_bytes(
                layer, operand, level, bound, loops, spatial, False
            )
            if not level.instance.per_pe:
                used_bytes[level.instance.uid] = (
                    used_bytes.get(level.instance.uid, 0.0) + min(resident, available)
                )
            bounds.append(bound)
            prev = bound
        boundaries[operand] = tuple(bounds)

    return TemporalMapping(loops=loops, boundaries=boundaries)
