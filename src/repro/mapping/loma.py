"""Temporal mapping search engine (LOMA [29] substitute).

LOMA enumerates permutations of the layer's loop prime factors (LPFs) and
allocates memory levels per ordering (see :mod:`repro.mapping.allocation`).
This module reimplements that search with two pragmatic additions:

* a *budget* capping the number of evaluated orderings — when the multiset
  has more distinct permutations than the budget, a deterministic sample is
  evaluated instead (the artifact's ``loma_lpf_limit`` speed/quality knob
  plays the same role in the original);
* a set of canonical dataflow orderings (weight-, output-, input-
  stationary flavors) always evaluated in addition, so a tight budget can
  never miss the classic dataflows entirely.

Results are memoized: DeFiNES evaluates identical layer-tile shapes many
times across tile types and sweep points.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping

from .. import obs
from ..hardware.accelerator import Accelerator
from ..workloads.layer import LayerSpec
from .allocation import AllocationError, allocate
from .batch import BatchFallback, evaluate_candidates
from .cost import CostResult, Objective, resolve_objective
from .loops import Loop, lpf_decompose, multiset_permutations
from .temporal import TemporalMapping, temporal_sizes
from .zigzag import evaluate_mapping

#: Valid values of :attr:`SearchConfig.engine`.
ENGINES = ("batch", "scalar")

if TYPE_CHECKING:  # imported lazily at runtime (cache.py imports this module)
    from .cache import MappingCache


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the mapping search.

    ``lpf_limit`` matches the paper artifact's ``loma_lpf_limit``
    (8 for paper-quality results, 6 for the fast mode); ``budget`` caps
    evaluated orderings per layer-tile.

    ``engine`` selects how the candidate orderings are scored:
    ``"batch"`` (default) evaluates the whole candidate list in numpy
    array operations, ``"scalar"`` runs the pure-python reference loop.
    Both produce bit-identical :class:`SearchResult`s — the batch path
    mirrors every scalar float operation and falls back to scalar
    whenever exactness cannot be guaranteed — so the knob is purely a
    speed/dependency trade-off and deliberately *not* part of
    :meth:`cache_token`: caches written by one engine are valid for the
    other.
    """

    lpf_limit: int = 6
    budget: int = 400
    objective: str = "energy"
    engine: str = "batch"

    #: Fields that cannot affect results and are therefore excluded
    #: from :meth:`cache_token` (checked by ``repro check`` CACHE001):
    #: the engines are bit-identical by contract, so ``engine`` is a
    #: pure speed/dependency knob.
    NON_SEMANTIC = frozenset({"engine"})

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown search engine {self.engine!r}; "
                f"choose from: {', '.join(ENGINES)}"
            )

    def cache_token(self) -> Hashable:
        # ``engine`` intentionally omitted: results are bit-identical.
        return (self.lpf_limit, self.budget, self.objective)


@dataclass
class SearchResult:
    """Best mapping found and its cost."""

    mapping: TemporalMapping
    cost: CostResult
    evaluated: int = 0


#: Canonical dim orders, innermost first (reduction-inner, output-
#: stationary, weight-stationary, input-stationary flavors).
_CANONICAL_DIM_ORDERS = (
    ("FX", "FY", "C", "K", "OX", "OY"),
    ("FX", "FY", "C", "OX", "OY", "K"),
    ("C", "FX", "FY", "K", "OX", "OY"),
    ("K", "OX", "OY", "FX", "FY", "C"),
    ("OX", "OY", "K", "C", "FX", "FY"),
    ("K", "C", "FX", "FY", "OX", "OY"),
    ("OX", "FX", "OY", "FY", "C", "K"),
)


def _canonical_orderings(loops: list[Loop]) -> list[tuple[Loop, ...]]:
    """Expand canonical dim orders over the LPF multiset."""
    by_dim: dict[str, list[Loop]] = {}
    for loop in loops:
        by_dim.setdefault(loop[0], []).append(loop)
    for dim_loops in by_dim.values():
        dim_loops.sort(key=lambda l: l[1])
    orderings = []
    for dim_order in _CANONICAL_DIM_ORDERS:
        ordering: list[Loop] = []
        for dim in dim_order:
            ordering.extend(by_dim.get(dim, ()))
        orderings.append(tuple(ordering))
    return orderings


class MappingSearchEngine:
    """Memoized LOMA-style mapping search.

    The memo store is a :class:`~repro.mapping.cache.MappingCache`; pass
    one to share results between engines (or across runs, when the cache
    is disk-backed).  By default each engine gets a private in-memory
    cache, matching the original behaviour.
    """

    def __init__(
        self,
        config: SearchConfig | None = None,
        cache: "MappingCache | None" = None,
    ) -> None:
        self.config = config or SearchConfig()
        if cache is None:
            from .cache import MappingCache

            cache = MappingCache()
        self.cache = cache

    # ------------------------------------------------------------------
    def _layer_key(self, layer: LayerSpec) -> Hashable:
        return (
            layer.op_type.value,
            layer.k,
            layer.c,
            layer.ox,
            layer.oy,
            layer.fx,
            layer.fy,
            layer.sx,
            layer.sy,
            layer.dx,
            layer.dy,
            layer.act_bits,
            layer.w_bits,
            layer.psum_bits,
            layer.ix_clip,
            layer.iy_clip,
        )

    def cache_key(
        self, layer: LayerSpec, accel: Accelerator, tops: Mapping[str, int]
    ) -> Hashable:
        """Process- and run-stable identity of one search problem.

        The accelerator contributes a structural fingerprint (not its
        object id), so caches can be shared between worker processes and
        persisted across runs while still distinguishing same-named
        architectures that differ structurally.
        """
        return (
            self._layer_key(layer),
            accel.fingerprint(),
            tuple(sorted(tops.items())),
            self.config.cache_token(),
        )

    @property
    def cache_size(self) -> int:
        return len(self.cache)

    def clear_cache(self) -> None:
        self.cache.clear()

    # ------------------------------------------------------------------
    def search(
        self,
        layer: LayerSpec,
        accel: Accelerator,
        tops: Mapping[str, int] | None = None,
        objective: str | Objective | None = None,
    ) -> SearchResult:
        """Find the best temporal mapping for one layer(-tile).

        ``tops`` truncates the per-operand hierarchies (DeFiNES step 3);
        ``None`` means every operand tops out at DRAM (plain single-layer
        operation).
        """
        if tops is None:
            tops = {op: accel.top_level_index(op) for op in ("W", "I", "O")}
        cacheable = objective is None
        key = self.cache_key(layer, accel, tops) if cacheable else None
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit

        goal = objective or self.config.objective
        loops = lpf_decompose(temporal_sizes(layer, accel), self.config.lpf_limit)

        candidates: list[tuple[Loop, ...]] = _canonical_orderings(loops)
        seen = set(candidates)
        budget = max(self.config.budget - len(candidates), 0)
        for ordering in itertools.islice(multiset_permutations(loops), budget):
            if ordering not in seen:
                candidates.append(ordering)
                seen.add(ordering)

        best: SearchResult | None = None
        engine = self.config.engine
        fell_back = False
        if engine == "batch":
            try:
                best = self._search_batch(layer, accel, tops, candidates, goal)
            except BatchFallback:
                engine = "scalar"
                fell_back = True
        if engine == "scalar":
            best = self._search_scalar(layer, accel, tops, candidates, goal)
        if obs.enabled:
            # Telemetry only — counters never feed back into the search.
            registry = obs.metrics()
            registry.counter("loma_searches_total").inc()
            registry.counter("loma_engine_dispatch_total", engine=engine).inc()
            if fell_back:
                registry.counter("loma_batch_fallbacks_total").inc()
            if best is not None:
                registry.counter("loma_orderings_evaluated_total").inc(
                    best.evaluated
                )
        if best is None:
            raise AllocationError(
                f"no feasible mapping for {layer.name} on {accel.name} "
                f"with tops {dict(tops)}"
            )
        if key is not None:
            self.cache.put(key, best)
        return best

    def _search_batch(
        self,
        layer: LayerSpec,
        accel: Accelerator,
        tops: Mapping[str, int],
        candidates: list[tuple[Loop, ...]],
        objective: str | Objective,
    ) -> SearchResult | None:
        """Vectorized candidate scoring (see :mod:`repro.mapping.batch`)."""
        evaluation = evaluate_candidates(layer, accel, tops, candidates)
        winner = evaluation.best_index(objective)
        if winner is None:
            return None
        return SearchResult(
            mapping=evaluation.mapping(winner),
            cost=evaluation.cost_result(winner),
            evaluated=evaluation.evaluated,
        )

    def _search_scalar(
        self,
        layer: LayerSpec,
        accel: Accelerator,
        tops: Mapping[str, int],
        candidates: list[tuple[Loop, ...]],
        objective: str | Objective,
    ) -> SearchResult | None:
        """Reference one-ordering-at-a-time scoring loop."""
        score = resolve_objective(objective)
        best: SearchResult | None = None
        evaluated = 0
        for ordering in candidates:
            try:
                mapping = allocate(layer, accel, tops, ordering)
            except AllocationError:
                continue
            cost = evaluate_mapping(layer, accel, tops, mapping)
            evaluated += 1
            if best is None or score(cost) < score(best.cost):
                best = SearchResult(mapping=mapping, cost=cost)
        if best is not None:
            best.evaluated = evaluated
        return best

    def evaluate_fixed(
        self,
        layer: LayerSpec,
        accel: Accelerator,
        ordering: list[Loop],
        tops: Mapping[str, int] | None = None,
    ) -> SearchResult:
        """Evaluate a user-fixed loop ordering (used by the DepFiN
        validation, where the paper fixes the temporal mapping to match
        the chip)."""
        if tops is None:
            tops = {op: accel.top_level_index(op) for op in ("W", "I", "O")}
        mapping = allocate(layer, accel, tops, ordering)
        cost = evaluate_mapping(layer, accel, tops, mapping)
        return SearchResult(mapping=mapping, cost=cost, evaluated=1)
