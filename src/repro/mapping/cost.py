"""Cost containers shared by the mapping layer and the DeFiNES core.

All energies are in pJ, all latencies in cycles, all access counts in
data elements (the unit of the paper's Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

#: Key of a traffic entry: (operand-or-category, memory level name).
TrafficKey = tuple[str, str]


@dataclass
class Traffic:
    """Access counts and energies at one memory for one data category."""

    reads_elems: float = 0.0
    writes_elems: float = 0.0
    energy_pj: float = 0.0

    def add(self, other: "Traffic", scale: float = 1.0) -> None:
        """Accumulate ``other`` (optionally scaled) into this entry."""
        self.reads_elems += other.reads_elems * scale
        self.writes_elems += other.writes_elems * scale
        self.energy_pj += other.energy_pj * scale

    @property
    def accesses_elems(self) -> float:
        """Total reads+writes in elements."""
        return self.reads_elems + self.writes_elems


@dataclass
class CostResult:
    """Energy/latency/traffic of one evaluation (a layer-tile, a data copy
    bundle, or an accumulated schedule)."""

    mac_count: float = 0.0
    mac_energy_pj: float = 0.0
    compute_cycles: float = 0.0
    latency_cycles: float = 0.0
    traffic: dict[TrafficKey, Traffic] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def traffic_entry(self, category: str, level_name: str) -> Traffic:
        """Get-or-create the traffic entry for (category, level)."""
        key = (category, level_name)
        entry = self.traffic.get(key)
        if entry is None:
            entry = Traffic()
            self.traffic[key] = entry
        return entry

    @property
    def memory_energy_pj(self) -> float:
        """Total memory access energy."""
        return sum(t.energy_pj for t in self.traffic.values())

    @property
    def energy_pj(self) -> float:
        """Total energy (MAC + memory)."""
        return self.mac_energy_pj + self.memory_energy_pj

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.latency_cycles

    # ------------------------------------------------------------------
    def accesses(
        self,
        categories: tuple[str, ...] | None = None,
        level_names: tuple[str, ...] | None = None,
    ) -> float:
        """Total element accesses, optionally filtered by data category
        (operand or 'copy') and/or memory level name."""
        total = 0.0
        for (category, level_name), t in self.traffic.items():
            if categories is not None and category not in categories:
                continue
            if level_names is not None and level_name not in level_names:
                continue
            total += t.accesses_elems
        return total

    def energy_of(
        self,
        categories: tuple[str, ...] | None = None,
        level_names: tuple[str, ...] | None = None,
    ) -> float:
        """Memory energy filtered like :meth:`accesses`."""
        total = 0.0
        for (category, level_name), t in self.traffic.items():
            if categories is not None and category not in categories:
                continue
            if level_names is not None and level_name not in level_names:
                continue
            total += t.energy_pj
        return total

    # ------------------------------------------------------------------
    def add(self, other: "CostResult", scale: float = 1.0) -> None:
        """Accumulate another result; latencies add (tiles run serially)."""
        self.mac_count += other.mac_count * scale
        self.mac_energy_pj += other.mac_energy_pj * scale
        self.compute_cycles += other.compute_cycles * scale
        self.latency_cycles += other.latency_cycles * scale
        for key, t in other.traffic.items():
            self.traffic_entry(*key).add(t, scale)

    @classmethod
    def from_arrays(
        cls,
        index: int,
        mac_count: float,
        mac_energy_pj: float,
        compute_cycles: float,
        latency_cycles: "Sequence[float]",
        traffic: Mapping[TrafficKey, tuple],
    ) -> "CostResult":
        """Materialize one candidate's cost from batched arrays.

        ``latency_cycles`` is a per-candidate vector and ``traffic`` maps
        each (category, level) key to a ``(reads, writes, energy)`` array
        triple whose leading axis is the candidate index — the layout the
        vectorized engine (:mod:`repro.mapping.batch`) produces.  Field
        types mirror the scalar path exactly (counts stay ints, traffic
        becomes plain floats) so encoded cache entries are byte-identical.
        """
        result = cls(
            mac_count=mac_count,
            mac_energy_pj=mac_energy_pj,
            compute_cycles=compute_cycles,
            latency_cycles=float(latency_cycles[index]),
        )
        for key, (reads, writes, energy) in traffic.items():
            result.traffic[key] = Traffic(
                float(reads[index]), float(writes[index]), float(energy[index])
            )
        return result

    def copy(self) -> "CostResult":
        """Deep copy."""
        out = CostResult(
            mac_count=self.mac_count,
            mac_energy_pj=self.mac_energy_pj,
            compute_cycles=self.compute_cycles,
            latency_cycles=self.latency_cycles,
        )
        for key, t in self.traffic.items():
            out.traffic[key] = Traffic(t.reads_elems, t.writes_elems, t.energy_pj)
        return out


#: An optimization objective maps a cost result to a scalar to minimize.
Objective = Callable[[CostResult], float]

_OBJECTIVES: Mapping[str, Objective] = {
    "energy": lambda c: c.energy_pj,
    "latency": lambda c: c.latency_cycles,
    "edp": lambda c: c.edp,
    "dram_accesses": lambda c: c.accesses(level_names=("DRAM",)),
    "activation_energy": lambda c: c.energy_of(categories=("I", "O", "copy")),
    # Traffic split for the multi-objective DSE: element accesses that
    # cross the chip boundary vs. those served on chip.
    "offchip_traffic": lambda c: c.accesses(level_names=("DRAM",)),
    "onchip_traffic": lambda c: c.accesses() - c.accesses(level_names=("DRAM",)),
}

#: The named objectives, for CLI choices and validation.
OBJECTIVE_NAMES: tuple[str, ...] = tuple(sorted(_OBJECTIVES))


def resolve_objective(objective: str | Objective) -> Objective:
    """Resolve an objective name (Section V-A: users can self-define the
    optimizing target) or pass a callable through."""
    if callable(objective):
        return objective
    try:
        return _OBJECTIVES[objective]
    except KeyError as exc:
        known = ", ".join(sorted(_OBJECTIVES))
        raise KeyError(f"unknown objective {objective!r}; known: {known}") from exc


def validate_objectives(names: "Sequence[str]") -> tuple[str, ...]:
    """Check a user-supplied objective-name list, returning it as a
    tuple; raises a ``ValueError`` naming the valid objectives on the
    first unknown or duplicated name (the CLI/report-friendly
    counterpart of :func:`resolve_objective`'s ``KeyError``)."""
    for name in names:
        if name not in _OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; choose from: "
                f"{', '.join(OBJECTIVE_NAMES)}"
            )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives: {', '.join(names)}")
    return tuple(names)
