"""Loop prime factor (LPF) machinery.

LOMA [29] generates temporal mappings by decomposing each temporal loop
dimension into its prime factors and permuting the resulting multiset.
The ``lpf_limit`` knob of the paper's artifact (speed/quality trade-off)
caps the multiset size by merging the smallest factors of the most
fragmented dimensions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

#: A single loop: (dimension name, trip count).
Loop = tuple[str, int]


def prime_factors(n: int) -> list[int]:
    """Prime factorization of ``n`` in ascending order (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"cannot factorize {n}")
    factors: list[int] = []
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return factors


def lpf_decompose(sizes: Mapping[str, int], lpf_limit: int = 6) -> list[Loop]:
    """Decompose loop sizes into a capped multiset of loop prime factors.

    Dimensions of size 1 are dropped.  While the total LPF count exceeds
    ``lpf_limit``, the two smallest factors of the dimension with the most
    factors are merged (multiplied), which mirrors LOMA's knob: a smaller
    limit means coarser tiling granularity and a faster search.
    """
    if lpf_limit < 1:
        raise ValueError("lpf_limit must be >= 1")
    per_dim: dict[str, list[int]] = {
        dim: prime_factors(size) for dim, size in sizes.items() if size > 1
    }
    while sum(len(f) for f in per_dim.values()) > lpf_limit:
        # Merge within the most fragmented dimension; ties broken by the
        # smallest resulting product to keep factors balanced.
        dim = max(
            (d for d in per_dim if len(per_dim[d]) >= 2),
            key=lambda d: (len(per_dim[d]), -per_dim[d][0] * per_dim[d][1]),
            default=None,
        )
        if dim is None:
            break
        factors = sorted(per_dim[dim])
        merged = factors[0] * factors[1]
        per_dim[dim] = sorted(factors[2:] + [merged])
    loops: list[Loop] = []
    for dim in sorted(per_dim):
        loops.extend((dim, f) for f in sorted(per_dim[dim]))
    return loops


def multiset_permutations(items: list[Loop]) -> Iterator[tuple[Loop, ...]]:
    """Yield all distinct permutations of a multiset of loops.

    Standard lexicographic next-permutation algorithm over the multiset,
    so duplicates are never generated (unlike ``itertools.permutations``).
    """
    current = sorted(items)
    n = len(current)
    if n == 0:
        yield ()
        return
    while True:
        yield tuple(current)
        # Find rightmost ascent.
        i = n - 2
        while i >= 0 and current[i] >= current[i + 1]:
            i -= 1
        if i < 0:
            return
        j = n - 1
        while current[j] <= current[i]:
            j -= 1
        current[i], current[j] = current[j], current[i]
        current[i + 1 :] = reversed(current[i + 1 :])


def count_multiset_permutations(items: Iterable[Loop]) -> int:
    """Number of distinct permutations of the loop multiset."""
    from math import factorial

    items = list(items)
    counts: dict[Loop, int] = {}
    for it in items:
        counts[it] = counts.get(it, 0) + 1
    total = factorial(len(items))
    for c in counts.values():
        total //= factorial(c)
    return total


def product(values: Iterable[int]) -> int:
    """Integer product with empty-product = 1."""
    out = 1
    for v in values:
        out *= v
    return out
