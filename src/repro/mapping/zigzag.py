"""Single-layer analytical cost model (ZigZag [21], [22] substitute).

Given a layer, an accelerator, per-operand top memory levels and a
temporal mapping, this module computes per-level per-operand memory access
counts, energy and latency.  See DESIGN.md §2.1 for the derivation; the
essentials:

* transfers across the boundary below level *i* =
  ``(product of loop factors above the boundary) / stationarity_credit x
  resident data elements below the boundary``;
* the stationarity credit is the contiguous run of operand-irrelevant
  loops immediately above the boundary (weight/output-stationary reuse);
* outputs get partial-sum read-modify-write accounting: every non-final
  crossing is a psum-precision write up plus a read back down;
* spatial reuse (broadcast / reduction across the PE array) divides
  datapath traffic by the utilized unrolls of operand-irrelevant array
  dimensions;
* latency = max(compute cycles, per-memory-port bytes / bandwidth), with
  DRAM fixed at 64 bit/cycle — on-chip memories are generously banked, so
  stalls come from DRAM exactly as in the paper's setup.
"""

from __future__ import annotations

from typing import Mapping

from ..hardware.accelerator import Accelerator
from ..workloads.layer import LayerSpec
from .cost import CostResult
from .temporal import (
    TemporalMapping,
    cumulative_dim_products,
    merge_products,
    operand_footprint_elems,

    utilized_spatial,
)


def spatial_relevant(
    layer: LayerSpec, operand: str, spatial: Mapping[str, int]
) -> float:
    """Operand elements fetched per spatial wave (one cycle).

    For W and O this is the distinct element count over the utilized
    array.  For I, consecutive waves overlap through the sliding window;
    arrays share those pixels across PEs (the inter-PE data-sharing
    patterns DeFiNES supports, Fig. 5), so the steady-state fetch rate is
    the window *advance* — ``ox_spatial * stride`` per axis — rather than
    the full window span.
    """
    products = {
        dim: factor
        for dim, factor in spatial.items()
        if dim in layer.relevant_dims(operand)
    }
    elems = operand_footprint_elems(layer, operand, products)
    if operand != "I":
        return float(elems)

    def _axis_discount(o_dim: str, f_dim: str, stride: int, full: int) -> float:
        o_sp = min(spatial.get(o_dim, 1), layer.loop_sizes[o_dim])
        f_sp = min(spatial.get(f_dim, 1), layer.loop_sizes[f_dim])
        span = min((o_sp - 1) * stride + f_sp, full)
        advance = min(o_sp * stride, span)
        return advance / span if span else 1.0

    discount = _axis_discount("OX", "FX", layer.sx, layer.ix)
    discount *= _axis_discount("OY", "FY", layer.sy, layer.iy)
    return elems * discount


def evaluate_mapping(
    layer: LayerSpec,
    accel: Accelerator,
    tops: Mapping[str, int],
    mapping: TemporalMapping,
) -> CostResult:
    """Evaluate one temporal mapping of one layer(-tile).

    ``tops[op]`` truncates the operand's hierarchy: no traffic is modeled
    above that level (DeFiNES step 3 decides where each operand's data
    lives; step 4's data-copy model accounts for getting it there).
    """
    result = CostResult()
    spatial = utilized_spatial(layer, accel)
    iterations = mapping.total_iterations

    total_macs = layer.mac_count
    result.mac_count = total_macs
    result.mac_energy_pj = total_macs * accel.mac_energy_pj
    result.compute_cycles = iterations

    # Suffix-product table: suffix[p] = product of loop factors from p
    # outwards, so each boundary's "iterations above" is one lookup
    # instead of an inner product loop (exact integer either way).
    n_loops = len(mapping.loops)
    suffix = [1] * (n_loops + 1)
    for i in range(n_loops - 1, -1, -1):
        suffix[i] = suffix[i + 1] * mapping.loops[i][1]

    bytes_demand: dict[int, float] = {}  # instance uid -> bytes moved

    for operand in ("W", "I", "O"):
        if operand == "W" and layer.weight_count == 0:
            continue
        hierarchy = accel.hierarchy(operand)
        top = tops.get(operand, len(hierarchy) - 1)
        levels = hierarchy[: top + 1]
        act_bytes = layer.operand_bits(operand) / 8.0
        psum_bytes = layer.psum_bits / 8.0

        # ------------------------------------------------------------
        # Datapath boundary: array <-> level 0.
        # ------------------------------------------------------------
        level0 = levels[0]
        wave_elems = spatial_relevant(layer, operand, spatial)
        datapath_elems = iterations * wave_elems
        entry = result.traffic_entry(operand, level0.name)
        inst0 = level0.instance
        if operand == "O":
            # Each spatial wave updates the resident psums: read + write.
            entry.reads_elems += datapath_elems
            entry.writes_elems += datapath_elems
            entry.energy_pj += datapath_elems * psum_bytes * (
                inst0.r_energy_pj_per_byte + inst0.w_energy_pj_per_byte
            )
            bytes_demand[inst0.uid] = bytes_demand.get(inst0.uid, 0.0) + (
                2.0 * datapath_elems * psum_bytes
            )
        else:
            entry.reads_elems += datapath_elems
            entry.energy_pj += (
                datapath_elems * act_bytes * inst0.r_energy_pj_per_byte
            )
            bytes_demand[inst0.uid] = bytes_demand.get(inst0.uid, 0.0) + (
                datapath_elems * act_bytes
            )

        # ------------------------------------------------------------
        # Inter-level boundaries.
        # ------------------------------------------------------------
        total_products = merge_products(
            cumulative_dim_products(mapping.loops, len(mapping.loops)), spatial
        )
        final_elems = operand_footprint_elems(layer, operand, total_products)

        for levelidx in range(1, len(levels)):
            lower = levels[levelidx - 1]
            upper = levels[levelidx]
            prefix = mapping.boundaries[operand][levelidx - 1]
            above = suffix[prefix]
            credit = mapping.stationarity_credit(layer, operand, levelidx - 1)
            products = cumulative_dim_products(mapping.loops, prefix)
            products = merge_products(products, spatial)
            resident = operand_footprint_elems(layer, operand, products)
            crossings = resident * above / credit

            lower_entry = result.traffic_entry(operand, lower.name)
            upper_entry = result.traffic_entry(operand, upper.name)
            li, ui = lower.instance, upper.instance

            if operand == "O":
                up = max(crossings, final_elems)
                back = up - final_elems
                psum_up = back  # non-final ascents carry psum precision
                # Final ascents (each output element exactly once).
                lower_entry.reads_elems += up
                upper_entry.writes_elems += up
                lower_entry.writes_elems += back
                upper_entry.reads_elems += back
                up_bytes = psum_up * psum_bytes + final_elems * act_bytes
                # Attribute boundary energy to the level being accessed, so
                # each traffic entry sums the cost of touching that memory.
                lower_entry.energy_pj += up_bytes * li.r_energy_pj_per_byte
                lower_entry.energy_pj += back * psum_bytes * li.w_energy_pj_per_byte
                upper_entry.energy_pj += up_bytes * ui.w_energy_pj_per_byte
                upper_entry.energy_pj += back * psum_bytes * ui.r_energy_pj_per_byte
                moved = up_bytes + back * psum_bytes
                bytes_demand[li.uid] = bytes_demand.get(li.uid, 0.0) + moved
                bytes_demand[ui.uid] = bytes_demand.get(ui.uid, 0.0) + moved
            else:
                down = max(crossings, final_elems)
                upper_entry.reads_elems += down
                lower_entry.writes_elems += down
                upper_entry.energy_pj += (
                    down * act_bytes * ui.r_energy_pj_per_byte
                )
                lower_entry.energy_pj += (
                    down * act_bytes * li.w_energy_pj_per_byte
                )
                moved = down * act_bytes
                bytes_demand[li.uid] = bytes_demand.get(li.uid, 0.0) + moved
                bytes_demand[ui.uid] = bytes_demand.get(ui.uid, 0.0) + moved

    # ------------------------------------------------------------------
    # Latency: compute cycles vs. the most demanded memory port.
    # ------------------------------------------------------------------
    stall_limited = 0.0
    by_uid = accel.instances_by_uid()
    for uid, demand in bytes_demand.items():
        inst = by_uid[uid]
        if inst.bandwidth_bytes <= 0 or inst.bandwidth_bytes == float("inf"):
            continue
        stall_limited = max(stall_limited, demand / inst.bandwidth_bytes)
    result.latency_cycles = max(float(iterations), stall_limited)
    return result
