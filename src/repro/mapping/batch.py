"""Vectorized batch evaluation of LOMA candidate orderings.

The scalar reference path (:func:`~repro.mapping.allocation.allocate` +
:func:`~repro.mapping.zigzag.evaluate_mapping`) scores one ordering at a
time; every DSE generation, sweep point and service job bottoms out in
that loop.  This module scores the *full candidate list* of one
``(layer, accelerator, tops)`` search problem in one set of numpy array
operations and is selected by ``SearchConfig(engine="batch")`` — the
default.  See DESIGN.md §2.2 for the axis-by-axis mapping to the §2.1
cost formulas; the layout in brief:

* axis 0 — the candidate (ordering) index, leading axis of every array;
* axis 1 — the loop-prefix position ``p`` (0..n): cumulative dimension
  products ``P[c, p, d]``, prefix factor products ``PF[c, p]`` and the
  per-prefix resident footprints are all indexed by it;
* axis 2 — the loop dimension, in :data:`~repro.mapping.temporal.DIMS`
  order.

The greedy boundary placement of ``allocate`` (walk outwards until the
level's capacity is exhausted) becomes a prefix scan: a boundary is the
length of the leading all-true run of ``resident[p] <= available``,
computed with a boolean cumulative product.  Stationarity credits use
the same scan over operand-irrelevant loop runs.  Candidates whose
multiset does not fit the truncated hierarchy are *masked out* in
:attr:`BatchEvaluation.feasible` instead of raising per ordering.

**Bit-identity contract.**  Every float the scalar path produces is
reproduced exactly: array expressions mirror the scalar expressions
operation-for-operation (same association, same accumulation order), and
integer quantities stay exact because the engine falls back to the
scalar reference (:class:`BatchFallback`) whenever a count could cross
2**53, where float64 rounding could diverge from Python's arbitrary-
precision ints.  The property suite in ``tests/mapping/test_batch.py``
asserts equality on every :class:`~repro.mapping.cost.CostResult` field,
so caches, checkpoints and golden fixtures stay byte-compatible.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

try:  # gated: the scalar engine keeps working without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from ..hardware.accelerator import Accelerator
from ..workloads.layer import LayerSpec
from .allocation import (
    PRIORITY,
    AllocationError,
    active_operands,
    reserve_top_levels,
)
from .cost import CostResult, TrafficKey, resolve_objective
from .loops import Loop
from .temporal import (
    DIM_INDEX,
    DIMS,
    TemporalMapping,
    cumulative_dim_products,
    merge_products,
    operand_footprint,
    operand_footprint_elems,
    utilized_spatial,
)
from .zigzag import spatial_relevant

#: Largest integer exactly representable as a float64; counts at or
#: beyond it could round differently than Python ints, so the batch
#: engine refuses (falls back to scalar) rather than risk divergence.
_EXACT = float(1 << 53)

#: Error raised when numpy is missing but the batch engine is selected.
NUMPY_ERROR = (
    "numpy (>=1.22) is required by the batched mapping engine, the default "
    "SearchConfig.engine='batch'; install it, or select the pure-python "
    "reference path with SearchConfig(engine=\"scalar\") "
    "(or `--engine scalar` on the CLI)"
)


class BatchFallback(Exception):
    """The vectorized path cannot guarantee bit-identical floats for this
    problem (a count could cross 2**53); callers run the scalar
    reference engine instead — correctness is never at stake."""


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(NUMPY_ERROR)


class BatchEvaluation:
    """All candidate orderings of one search problem, scored as arrays.

    Every per-candidate quantity has the candidate index as its leading
    axis: :attr:`latency` is ``(C,)``, each :attr:`traffic` value is a
    ``(reads, writes, energy)`` triple of ``(C,)`` arrays keyed exactly
    like the scalar :class:`~repro.mapping.cost.CostResult` (and in the
    same insertion order, so summed objectives accumulate identically).
    :attr:`feasible` masks orderings that do not allocate.
    """

    def __init__(
        self,
        layer: LayerSpec,
        accel: Accelerator,
        tops: Mapping[str, int],
        candidates: Sequence[tuple[Loop, ...]],
        feasible,
        boundaries: Mapping[str, object],
        latency,
        traffic: Mapping[TrafficKey, tuple],
        mac_count: int,
        mac_energy_pj: float,
        compute_cycles: int,
    ) -> None:
        self.layer = layer
        self.accel = accel
        self.tops = dict(tops)
        self.candidates = list(candidates)
        self.feasible = feasible
        self.boundaries = boundaries
        self.latency = latency
        self.traffic = traffic
        self.mac_count = mac_count
        self.mac_energy_pj = mac_energy_pj
        self.compute_cycles = compute_cycles

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of candidate orderings (feasible or not)."""
        return len(self.candidates)

    @property
    def evaluated(self) -> int:
        """Number of feasible (scored) orderings."""
        return int(self.feasible.sum())

    # ------------------------------------------------------------------
    def mapping(self, index: int) -> TemporalMapping:
        """Materialize candidate ``index``'s allocated temporal mapping."""
        bounds = {
            op: tuple(int(b) for b in rows[index])
            for op, rows in self.boundaries.items()
        }
        return TemporalMapping(loops=self.candidates[index], boundaries=bounds)

    def cost_result(self, index: int) -> CostResult:
        """Materialize candidate ``index``'s cost (scalar-path identical)."""
        return CostResult.from_arrays(
            index,
            self.mac_count,
            self.mac_energy_pj,
            self.compute_cycles,
            self.latency,
            self.traffic,
        )

    # ------------------------------------------------------------------
    def scores(self, objective) -> "np.ndarray":
        """Per-candidate objective values, ``(C,)`` float64.

        Named objectives are computed directly from the arrays with the
        exact accumulation order of the scalar ``CostResult`` formulas;
        callables fall back to materializing each candidate's cost.
        """
        if isinstance(objective, str) and objective in _SCORERS:
            raw = _SCORERS[objective](self)
        else:
            fn = resolve_objective(objective)
            raw = np.array(
                [fn(self.cost_result(i)) for i in range(self.count)],
                dtype=np.float64,
            )
        arr = np.asarray(raw, dtype=np.float64)
        if arr.ndim == 0:  # e.g. zero DRAM traffic under truncated tops
            arr = np.full(self.count, float(arr))
        return arr

    def best_index(self, objective) -> int | None:
        """Index of the winning feasible candidate, or ``None``.

        Replicates the scalar scan exactly: first strictly-smaller score
        wins, so ties keep the earliest candidate.
        """
        if not self.evaluated:
            return None
        s = self.scores(objective)
        best: int | None = None
        for i in range(self.count):
            if not self.feasible[i]:
                continue
            if best is None or s[i] < s[best]:
                best = i
        return best


# ----------------------------------------------------------------------
# Named-objective scorers (array mirrors of the CostResult formulas).
# Each sum starts at 0.0 and adds entries in traffic-insertion order —
# the same float accumulation sequence as the scalar properties.
# ----------------------------------------------------------------------
def _memory_energy(ev: BatchEvaluation):
    total = 0.0
    for _reads, _writes, energy in ev.traffic.values():
        total = total + energy
    return total


def _energy(ev: BatchEvaluation):
    return ev.mac_energy_pj + _memory_energy(ev)


def _accesses(ev, categories=None, level_names=None):
    total = 0.0
    for (category, name), (reads, writes, _energy) in ev.traffic.items():
        if categories is not None and category not in categories:
            continue
        if level_names is not None and name not in level_names:
            continue
        total = total + (reads + writes)
    return total


def _energy_of(ev, categories=None, level_names=None):
    total = 0.0
    for (category, name), (_reads, _writes, energy) in ev.traffic.items():
        if categories is not None and category not in categories:
            continue
        if level_names is not None and name not in level_names:
            continue
        total = total + energy
    return total


_SCORERS: dict[str, Callable[[BatchEvaluation], object]] = {
    "energy": _energy,
    "latency": lambda ev: ev.latency,
    "edp": lambda ev: _energy(ev) * ev.latency,
    "dram_accesses": lambda ev: _accesses(ev, level_names=("DRAM",)),
    "offchip_traffic": lambda ev: _accesses(ev, level_names=("DRAM",)),
    "onchip_traffic": lambda ev: (
        _accesses(ev) - _accesses(ev, level_names=("DRAM",))
    ),
    "activation_energy": lambda ev: _energy_of(ev, categories=("I", "O", "copy")),
}


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def evaluate_candidates(
    layer: LayerSpec,
    accel: Accelerator,
    tops: Mapping[str, int],
    candidates: Sequence[tuple[Loop, ...]],
) -> BatchEvaluation:
    """Allocate and score every candidate ordering in array operations.

    All candidates must permute one loop multiset (LOMA's enumeration
    guarantees this), which makes the full-footprint feasibility check
    and all total products candidate-independent.  Raises
    :class:`BatchFallback` when exact float reproduction cannot be
    guaranteed and ``RuntimeError`` when numpy is unavailable.
    """
    _require_numpy()
    candidates = list(candidates)
    if not candidates:
        raise ValueError("no candidate orderings to evaluate")
    n = len(candidates[0])
    if any(len(c) != n for c in candidates):
        raise ValueError("candidates must be permutations of one loop multiset")
    count = len(candidates)
    spatial = utilized_spatial(layer, accel)

    # ------------------------------------------------------------------
    # Exactness guards (python ints, before any float64 enters).
    # ------------------------------------------------------------------
    total_iter = 1
    for _dim, factor in candidates[0]:
        total_iter *= factor
    sp_prod = 1
    for unroll in spatial.values():
        sp_prod *= unroll
    if total_iter >= 1 << 53 or total_iter * sp_prod >= 1 << 62:
        raise BatchFallback(f"{layer.name}: loop volume beyond exact float64")
    full_products = merge_products(
        cumulative_dim_products(candidates[0], n), spatial
    )
    final_elems: dict[str, int] = {}
    for op in active_operands(layer):
        final_elems[op] = operand_footprint_elems(layer, op, full_products)
        if final_elems[op] >= 1 << 53:
            raise BatchFallback(f"{layer.name}/{op}: footprint beyond exact float64")

    # ------------------------------------------------------------------
    # Phase 1: full-footprint reservation (candidate-independent).
    # ------------------------------------------------------------------
    try:
        used0 = reserve_top_levels(layer, accel, tops, candidates[0], spatial)
    except AllocationError:
        return BatchEvaluation(
            layer, accel, tops, candidates,
            feasible=np.zeros(count, dtype=bool),
            boundaries={}, latency=np.zeros(count), traffic={},
            mac_count=layer.mac_count,
            mac_energy_pj=layer.mac_count * accel.mac_energy_pj,
            compute_cycles=total_iter,
        )

    # ------------------------------------------------------------------
    # Candidate tensors: P[c, p, d], PF[c, p], suffix[c, p].
    # ------------------------------------------------------------------
    dims_idx = np.fromiter(
        (DIM_INDEX[dim] for cand in candidates for dim, _ in cand),
        dtype=np.int64, count=count * n,
    ).reshape(count, n)
    factors = np.fromiter(
        (factor for cand in candidates for _, factor in cand),
        dtype=np.int64, count=count * n,
    ).reshape(count, n)
    one_hot = dims_idx[:, :, None] == np.arange(len(DIMS))
    step = np.where(one_hot, factors[:, :, None], 1)
    ones_dim = np.ones((count, 1, len(DIMS)), dtype=np.int64)
    P = np.concatenate([ones_dim, np.cumprod(step, axis=1)], axis=1)
    PF = np.concatenate(
        [np.ones((count, 1), dtype=np.int64), np.cumprod(factors, axis=1)],
        axis=1,
    )
    suffix = total_iter // PF  # exact: PF divides the total product

    sizes = layer.loop_sizes
    sizes_vec = np.array([sizes[d] for d in DIMS], dtype=np.int64)
    spatial_vec = np.array([spatial.get(d, 1) for d in DIMS], dtype=np.int64)
    clamp_plain = np.minimum(P, sizes_vec)
    clamp_merged = np.minimum(P * spatial_vec, sizes_vec)

    operands = active_operands(layer)

    def footprints(clamped) -> dict[str, "np.ndarray"]:
        out = {}
        for op in operands:
            def get(dim: str, _c=clamped):
                return _c[:, :, DIM_INDEX[dim]]

            out[op] = operand_footprint(layer, op, get, minimum=np.minimum)
        return out

    elems_plain = footprints(clamp_plain)    # per-PE levels: no spatial merge
    elems_merged = footprints(clamp_merged)  # shared levels + cost model

    # ------------------------------------------------------------------
    # Phase 2: greedy boundary placement as prefix scans.
    # ------------------------------------------------------------------
    used: dict[int, "np.ndarray"] = {
        uid: np.full(count, value) for uid, value in used0.items()
    }
    n_col = np.full(count, n, dtype=np.int64)
    pos = np.arange(1, n + 1)
    boundaries: dict[str, "np.ndarray"] = {}
    for op in PRIORITY:
        if op not in operands:
            boundaries[op] = n_col[:, None]
            continue
        hierarchy = accel.hierarchy(op)
        top = tops.get(op, len(hierarchy) - 1)
        levels = hierarchy[: top + 1]
        cols = []
        prev = np.zeros(count, dtype=np.int64)
        for idx, level in enumerate(levels):
            if idx == len(levels) - 1:
                cols.append(n_col)
                break
            inst = level.instance
            avail = inst.size_bytes - used.get(inst.uid, np.zeros(count))
            elems = (elems_plain if inst.per_pe else elems_merged)[op]
            bits = layer.psum_bits if op == "O" else layer.operand_bits(op)
            resident = elems * bits / 8.0  # (C, n+1) float64, scalar-exact
            # Greedy walk == length of the leading run of prefixes that
            # still fit (positions at or below the previous boundary
            # count as already taken).
            fits = resident[:, 1:] <= avail[:, None]
            taken = fits | (pos[None, :] <= prev[:, None])
            bound = np.cumprod(taken, axis=1, dtype=np.int64).sum(axis=1)
            at_bound = np.take_along_axis(resident, bound[:, None], axis=1)[:, 0]
            if not inst.per_pe:
                used[inst.uid] = used.get(inst.uid, np.zeros(count)) + np.minimum(
                    at_bound, avail
                )
            cols.append(bound)
            prev = bound
        boundaries[op] = np.stack(cols, axis=1)

    # ------------------------------------------------------------------
    # Cost model (§2.1), candidate axis leading everywhere.
    # ------------------------------------------------------------------
    traffic: dict[TrafficKey, list] = {}

    def entry(category: str, level_name: str) -> list:
        key = (category, level_name)
        arrays = traffic.get(key)
        if arrays is None:
            arrays = [np.zeros(count), np.zeros(count), np.zeros(count)]
            traffic[key] = arrays
        return arrays

    bytes_demand: dict[int, object] = {}
    iterations = total_iter

    for op in ("W", "I", "O"):
        if op == "W" and layer.weight_count == 0:
            continue
        hierarchy = accel.hierarchy(op)
        top = tops.get(op, len(hierarchy) - 1)
        levels = hierarchy[: top + 1]
        act_bytes = layer.operand_bits(op) / 8.0
        psum_bytes = layer.psum_bits / 8.0

        # Datapath boundary: array <-> level 0 (candidate-independent,
        # broadcast into the candidate-axis accumulators).
        level0 = levels[0]
        inst0 = level0.instance
        wave_elems = spatial_relevant(layer, op, spatial)
        datapath_elems = iterations * wave_elems
        e0 = entry(op, level0.name)
        if op == "O":
            e0[0] += datapath_elems
            e0[1] += datapath_elems
            e0[2] += datapath_elems * psum_bytes * (
                inst0.r_energy_pj_per_byte + inst0.w_energy_pj_per_byte
            )
            bytes_demand[inst0.uid] = bytes_demand.get(inst0.uid, 0.0) + (
                2.0 * datapath_elems * psum_bytes
            )
        else:
            e0[0] += datapath_elems
            e0[2] += datapath_elems * act_bytes * inst0.r_energy_pj_per_byte
            bytes_demand[inst0.uid] = bytes_demand.get(inst0.uid, 0.0) + (
                datapath_elems * act_bytes
            )

        # Inter-level boundaries.
        final = final_elems[op]
        relevant = layer.relevant_dims(op)
        rel_tab = np.array([d in relevant for d in DIMS])
        irrelevant = ~rel_tab[dims_idx]  # (C, n)
        for levelidx in range(1, len(levels)):
            lower = levels[levelidx - 1]
            upper = levels[levelidx]
            prefix = boundaries[op][:, levelidx - 1]
            above = np.take_along_axis(suffix, prefix[:, None], axis=1)[:, 0]
            # Stationarity credit: contiguous irrelevant run above the
            # boundary, as a prefix-product ratio.
            run_ok = (np.arange(n)[None, :] < prefix[:, None]) | irrelevant
            run = np.cumprod(run_ok, axis=1, dtype=np.int64).sum(axis=1)
            credit = (
                np.take_along_axis(PF, run[:, None], axis=1)[:, 0]
                // np.take_along_axis(PF, prefix[:, None], axis=1)[:, 0]
            )
            resident = np.take_along_axis(
                elems_merged[op], prefix[:, None], axis=1
            )[:, 0]
            product = resident.astype(np.float64) * above.astype(np.float64)
            if product.size and float(product.max()) >= _EXACT:
                raise BatchFallback(
                    f"{layer.name}/{op}: crossings beyond exact float64"
                )
            crossings = product / credit

            le = entry(op, lower.name)
            ue = entry(op, upper.name)
            li, ui = lower.instance, upper.instance

            if op == "O":
                up = np.maximum(crossings, final)
                back = up - final
                psum_up = back  # non-final ascents carry psum precision
                le[0] += up
                ue[1] += up
                le[1] += back
                ue[0] += back
                up_bytes = psum_up * psum_bytes + final * act_bytes
                le[2] += up_bytes * li.r_energy_pj_per_byte
                le[2] += back * psum_bytes * li.w_energy_pj_per_byte
                ue[2] += up_bytes * ui.w_energy_pj_per_byte
                ue[2] += back * psum_bytes * ui.r_energy_pj_per_byte
                moved = up_bytes + back * psum_bytes
                bytes_demand[li.uid] = bytes_demand.get(li.uid, 0.0) + moved
                bytes_demand[ui.uid] = bytes_demand.get(ui.uid, 0.0) + moved
            else:
                down = np.maximum(crossings, final)
                ue[0] += down
                le[1] += down
                ue[2] += down * act_bytes * ui.r_energy_pj_per_byte
                le[2] += down * act_bytes * li.w_energy_pj_per_byte
                moved = down * act_bytes
                bytes_demand[li.uid] = bytes_demand.get(li.uid, 0.0) + moved
                bytes_demand[ui.uid] = bytes_demand.get(ui.uid, 0.0) + moved

    # Latency: compute cycles vs. the most demanded memory port, in
    # bytes_demand insertion order (same accumulation as the scalar path).
    stall_limited = 0.0
    by_uid = accel.instances_by_uid()
    for uid, demand in bytes_demand.items():
        inst = by_uid[uid]
        if inst.bandwidth_bytes <= 0 or inst.bandwidth_bytes == float("inf"):
            continue
        stall_limited = np.maximum(stall_limited, demand / inst.bandwidth_bytes)
    latency = np.maximum(np.full(count, float(iterations)), stall_limited)

    return BatchEvaluation(
        layer, accel, tops, candidates,
        feasible=np.ones(count, dtype=bool),
        boundaries=boundaries,
        latency=latency,
        traffic={key: tuple(arrays) for key, arrays in traffic.items()},
        mac_count=layer.mac_count,
        mac_energy_pj=layer.mac_count * accel.mac_energy_pj,
        compute_cycles=iterations,
    )
