"""Temporal mapping representation and operand footprint math.

A temporal mapping is an ordered tuple of loops (innermost first) plus,
per operand, a tuple of *boundaries*: ``boundaries[op][i]`` is the number
of innermost loops whose data lives inside memory level ``i`` of that
operand's (possibly truncated) hierarchy.  The outermost boundary always
covers all loops.

Footprints follow the operand index relations of a convolution:

* ``W``: K x C x FX x FY
* ``O``: K x OX x OY
* ``I``: C x IX x IY with the sliding-window relation
  ``ix = (ox - 1) * sx + (fx - 1) * dx + 1`` — this makes FX/OX interplay
  (halo reuse inside a tile) exact, and ties the input channel to ``K``
  for depthwise/pooling/elementwise layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..hardware.accelerator import Accelerator
from ..workloads.layer import LOOP_DIMS, LayerSpec
from .loops import Loop

#: Canonical dimension order shared by the scalar and batched paths
#: (the trailing array axis of :mod:`repro.mapping.batch` follows it).
DIMS: tuple[str, ...] = LOOP_DIMS

#: Dimension name -> position in :data:`DIMS`.
DIM_INDEX: dict[str, int] = {dim: i for i, dim in enumerate(DIMS)}


def temporal_sizes(layer: LayerSpec, accel: Accelerator) -> dict[str, int]:
    """Per-dimension temporal trip counts after spatial unrolling.

    Each layer dimension is reduced by its spatial unroll with ceiling
    division; the ceiling is what models PE under-utilization for
    non-dividing (or too small) dimensions.
    """
    sizes: dict[str, int] = {}
    for dim, size in layer.loop_sizes.items():
        unroll = accel.spatial_unrolling.get(dim, 1)
        sizes[dim] = math.ceil(size / unroll)
    return sizes


def utilized_spatial(layer: LayerSpec, accel: Accelerator) -> dict[str, int]:
    """Spatially covered index count per dimension (min(unroll, size))."""
    out: dict[str, int] = {}
    for dim, unroll in accel.spatial_unrolling.items():
        out[dim] = min(unroll, layer.loop_sizes[dim])
    return out


def cumulative_dim_products(loops: Sequence[Loop], prefix: int) -> dict[str, int]:
    """Product of loop factors per dimension over ``loops[:prefix]``."""
    products: dict[str, int] = {}
    for dim, factor in loops[:prefix]:
        products[dim] = products.get(dim, 1) * factor
    return products


def operand_footprint(
    layer: LayerSpec,
    operand: str,
    get: Callable[[str], object],
    minimum: Callable = min,
):
    """Array-friendly core of the operand footprint formulas (§2.1).

    ``get(dim)`` returns the *clamped* cumulative product of ``dim`` —
    a plain int on the scalar path, a candidate-axis array on the
    batched path — and ``minimum`` clamps the input span (``min`` for
    ints, ``numpy.minimum`` for arrays).  Keeping the formula here means
    the scalar reference and the vectorized engine cannot drift apart.
    """
    if operand == "W":
        return get("K") * get("C") * get("FX") * get("FY")
    if operand == "O":
        return get("K") * get("OX") * get("OY")
    if operand == "I":
        ix = (get("OX") - 1) * layer.sx + (get("FX") - 1) * layer.dx + 1
        iy = (get("OY") - 1) * layer.sy + (get("FY") - 1) * layer.dy + 1
        ix = minimum(ix, layer.ix)
        iy = minimum(iy, layer.iy)
        channels = get("C")
        if "K" in layer.relevant_dims("I"):
            channels = channels * get("K")
        return channels * ix * iy
    raise ValueError(f"unknown operand {operand!r}")


def operand_footprint_elems(
    layer: LayerSpec,
    operand: str,
    dim_products: Mapping[str, int],
) -> int:
    """Number of distinct operand elements covered by the given cumulative
    dimension products (missing dimensions default to 1).

    Products are clamped to the true layer dimensions: ceil-padded
    temporal trip counts (from spatial unrolling of non-dividing sizes)
    never inflate footprints beyond the real data; likewise the input
    span is clamped to the (possibly border-clipped) window.
    """
    if operand == "W" and layer.weight_count == 0:
        return 0
    sizes = layer.loop_sizes

    def get(dim: str) -> int:
        return min(dim_products.get(dim, 1), sizes[dim])

    return operand_footprint(layer, operand, get)


def merge_products(*maps: Mapping[str, int]) -> dict[str, int]:
    """Multiply several dim-product mappings together."""
    out: dict[str, int] = {}
    for m in maps:
        for dim, value in m.items():
            out[dim] = out.get(dim, 1) * value
    return out


@dataclass(frozen=True)
class TemporalMapping:
    """An ordered loop nest with per-operand memory-level boundaries."""

    loops: tuple[Loop, ...]
    boundaries: Mapping[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        n = len(self.loops)
        for operand, bounds in self.boundaries.items():
            if not bounds:
                raise ValueError(f"{operand}: needs at least one level")
            prev = 0
            for b in bounds:
                if b < prev or b > n:
                    raise ValueError(
                        f"{operand}: boundaries {bounds} not monotone within 0..{n}"
                    )
                prev = b
            if bounds[-1] != n:
                raise ValueError(
                    f"{operand}: top level must cover all loops "
                    f"({bounds[-1]} != {n})"
                )

    @property
    def total_iterations(self) -> int:
        """Product of all temporal loop factors (= compute cycles at full
        issue rate: one spatial wave per iteration)."""
        total = 1
        for _, factor in self.loops:
            total *= factor
        return total

    def loops_inside(self, operand: str, levelidx: int) -> tuple[Loop, ...]:
        """Loops whose data resides within ``levelidx`` for ``operand``."""
        return self.loops[: self.boundaries[operand][levelidx]]

    def loops_above(self, operand: str, levelidx: int) -> tuple[Loop, ...]:
        """Loops iterating above ``levelidx`` for ``operand``."""
        return self.loops[self.boundaries[operand][levelidx] :]

    def stationarity_credit(
        self, layer: LayerSpec, operand: str, levelidx: int
    ) -> int:
        """Reuse factor from operand-irrelevant loops sitting immediately
        above the boundary of ``levelidx``: while only irrelevant loops
        iterate, the level's resident data serves them without refills
        (weight-stationary / output-stationary behaviour)."""
        relevant = layer.relevant_dims(operand)
        credit = 1
        for dim, factor in self.loops_above(operand, levelidx):
            if dim in relevant:
                break
            credit *= factor
        return credit

    def describe(self) -> str:
        """Compact human-readable form, innermost loop first."""
        return " ".join(f"{d}{f}" for d, f in self.loops) or "(scalar)"
