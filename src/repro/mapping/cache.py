"""Shareable, optionally persistent store of mapping-search results.

:class:`MappingCache` extracts the memo dict that used to live inside
:class:`~repro.mapping.loma.MappingSearchEngine` into a first-class
object that can be

* shared between engines (all engines built from one cache handle see
  each other's results, e.g. across the accelerators of a sweep);
* snapshotted and merged (the parallel executor pre-warms worker
  processes from the parent cache and harvests their new entries back);
* persisted to disk as JSON and re-loaded in a later run, so repeated
  sweeps and benchmark re-runs skip the LOMA search entirely.

Keys are produced by the search engine (layer shape, accelerator
fingerprint, truncated tops, search config) and contain only primitives
and nested tuples; they are canonicalized to JSON strings so the same
logical key is stable across processes and runs.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Hashable, Iterable, Mapping

from .. import obs

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .cost import CostResult, Traffic
from .loma import SearchResult
from .temporal import TemporalMapping

#: On-disk format version; bump when the entry encoding changes.
FORMAT_VERSION = 1


def normalize_key(key: Hashable) -> str:
    """Canonical string form of a structured cache key.

    Keys are built from primitives and nested tuples only; JSON encoding
    (tuples become arrays) gives a stable, process-independent identity.
    """
    if isinstance(key, str):
        return key
    return json.dumps(key, separators=(",", ":"))


def encode_search_result(result: SearchResult) -> dict:
    """JSON-serializable form of a :class:`SearchResult`."""
    cost = result.cost
    return {
        "loops": [[dim, factor] for dim, factor in result.mapping.loops],
        "bounds": {
            op: list(bounds) for op, bounds in result.mapping.boundaries.items()
        },
        "cost": {
            "mac_count": cost.mac_count,
            "mac_energy_pj": cost.mac_energy_pj,
            "compute_cycles": cost.compute_cycles,
            "latency_cycles": cost.latency_cycles,
            "traffic": [
                [category, level, t.reads_elems, t.writes_elems, t.energy_pj]
                for (category, level), t in cost.traffic.items()
            ],
        },
        "evaluated": result.evaluated,
    }


def decode_search_result(data: Mapping) -> SearchResult:
    """Inverse of :func:`encode_search_result`."""
    mapping = TemporalMapping(
        loops=tuple((dim, int(factor)) for dim, factor in data["loops"]),
        boundaries={
            op: tuple(int(b) for b in bounds)
            for op, bounds in data["bounds"].items()
        },
    )
    raw = data["cost"]
    cost = CostResult(
        mac_count=raw["mac_count"],
        mac_energy_pj=raw["mac_energy_pj"],
        compute_cycles=raw["compute_cycles"],
        latency_cycles=raw["latency_cycles"],
    )
    for category, level, reads, writes, energy in raw["traffic"]:
        cost.traffic[(category, level)] = Traffic(reads, writes, energy)
    return SearchResult(
        mapping=mapping, cost=cost, evaluated=int(data.get("evaluated", 0))
    )


@contextlib.contextmanager
def _save_lock(target: Path):
    """Exclusive inter-process lock for the read-merge-write of
    :meth:`MappingCache.save`: an ``flock`` on a persistent ``.lock``
    sibling (the target itself cannot carry the lock — ``os.replace``
    swaps its inode out from under any holder).  The lock file stays
    behind deliberately: unlinking it would reopen the very race it
    closes.  On platforms without ``fcntl`` saving proceeds unlocked
    (merge-on-save still narrows the window, best-effort)."""
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    fd = os.open(
        target.with_name(target.name + ".lock"),
        os.O_CREAT | os.O_RDWR,
        0o644,
    )
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


class MappingCache:
    """Keyed store of LOMA search results with optional JSON persistence.

    Parameters
    ----------
    path:
        Optional backing file.  When given and the file exists, its
        entries are loaded immediately; :meth:`save` without arguments
        writes back to the same file.  A stale file (older
        ``FORMAT_VERSION``, torn write, malformed entries) is discarded
        with a warning rather than crashing — the next :meth:`save`
        rewrites it in the current format.
    max_entries:
        Optional capacity bound.  Entries are kept in recency order
        (both lookups and inserts refresh a key); :meth:`save` prunes
        to the ``max_entries`` most recently used before writing, so
        long-lived cache files cannot grow without bound.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        # A MappingCache is externally synchronized: engines use a
        # private instance single-threaded, and the shared instance a
        # CacheServer fronts is only ever touched under the server's
        # table lock (every _op_* body runs inside `with self._lock`).
        self._entries: dict[str, SearchResult] = {}  # guarded-by: <owner>
        self.hits = 0  # guarded-by: <owner>
        self.misses = 0  # guarded-by: <owner>
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    # Dict-like core
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> SearchResult | None:
        """Look up a search result, counting hit/miss statistics."""
        text = normalize_key(key)
        entry = self._entries.get(text)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            # Refresh recency (dict order is the LRU order).
            self._entries[text] = self._entries.pop(text)
        if obs.enabled:
            obs.metrics().counter(
                "mapping_cache_gets_total",
                result="miss" if entry is None else "hit",
            ).inc()
        return entry

    def put(self, key: Hashable, result: SearchResult) -> None:
        text = normalize_key(key)
        self._entries.pop(text, None)
        self._entries[text] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return normalize_key(key) in self._entries

    def keys(self) -> set[str]:
        """The set of (normalized) keys currently stored."""
        return set(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (misses == LOMA searches actually run)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    def prune(self, max_entries: int | None = None) -> int:
        """Evict least-recently-used entries beyond ``max_entries``
        (default: the instance's bound); returns how many were evicted."""
        bound = max_entries if max_entries is not None else self.max_entries
        if bound is None or len(self._entries) <= bound:
            return 0
        evict = len(self._entries) - bound
        for key in list(self._entries)[:evict]:
            del self._entries[key]
        return evict

    # ------------------------------------------------------------------
    # Sharing between caches / processes
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, SearchResult]:
        """Shallow copy of the entries (for pre-warming worker caches)."""
        return dict(self._entries)

    def merge(self, entries: Mapping[str, SearchResult]) -> int:
        """Adopt entries from another cache; returns how many were new.

        Merged keys count as uses: a worker harvest or disk load
        refreshes their recency, like :meth:`get`/:meth:`put`, so
        ``max_entries`` pruning never favours stale entries over ones
        the workers just hit.
        """
        t0 = time.monotonic() if obs.enabled else 0.0
        new = 0
        for key, result in entries.items():
            if key in self._entries:
                del self._entries[key]
            else:
                new += 1
            self._entries[key] = result
        if obs.enabled:
            registry = obs.metrics()
            registry.histogram("mapping_cache_merge_seconds").observe(
                time.monotonic() - t0
            )
            registry.counter("mapping_cache_merged_entries_total").inc(new)
        return new

    def delta(self, baseline: Iterable[str]) -> dict[str, SearchResult]:
        """Entries whose keys are not in ``baseline`` (worker harvest)."""
        base = set(baseline)
        return {k: v for k, v in self._entries.items() if k not in base}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None, merge: bool = True) -> Path:
        """Write all entries as JSON; returns the path written.

        The write is crash- and concurrency-safe: the payload lands in a
        process-unique temp file first and is moved into place with
        ``os.replace``, so readers never observe a torn file.  With
        ``merge`` (the default), entries already on disk that this cache
        does not know are adopted before writing, and the whole
        read-merge-write runs under an exclusive inter-process lock (a
        ``.lock`` sibling file) — two processes saving to the same path
        therefore never lose each other's results (this cache's own
        entry wins when both hold the same key).  Adopted entries rank
        as least-recently-used, so they are the first to go when
        ``max_entries`` pruning kicks in.  The payload also records
        this session's hit/miss counters so ``repro cache-info`` can
        report them later.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("MappingCache has no backing path; pass one")
        target.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.ExitStack() as stack:
            if merge:
                stack.enter_context(_save_lock(target))
                if target.exists():
                    on_disk = self._read_entries(target)
                    disk_only = {
                        key: result
                        for key, result in on_disk.items()
                        if key not in self._entries
                    }
                    if disk_only:
                        disk_only.update(self._entries)
                        self._entries = disk_only
            self.prune()
            payload = {
                "format": FORMAT_VERSION,
                "stats": {"hits": self.hits, "misses": self.misses},
                "entries": {
                    key: encode_search_result(result)
                    for key, result in self._entries.items()
                },
            }
            scratch = target.with_name(f"{target.name}.{os.getpid()}.tmp")
            try:
                scratch.write_text(json.dumps(payload))
                os.replace(scratch, target)
            finally:
                # A failed replace (or an exception between the two
                # calls) must not leave temp litter next to the file.
                if scratch.exists():
                    scratch.unlink()
        return target

    @staticmethod
    def _read_entries(path: Path) -> dict[str, SearchResult]:
        """Best-effort decode of a cache file's entries (for the
        merge-on-save read); anything unusable reads as empty."""
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict) or payload.get("format") != FORMAT_VERSION:
                return {}
            return {
                key: decode_search_result(data)
                for key, data in payload["entries"].items()
            }
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                AttributeError, ValueError):
            return {}

    def load(
        self, path: str | Path | None = None, strict: bool = False
    ) -> int:
        """Merge entries from a JSON file; returns how many were loaded.

        A file that cannot be used — not JSON, a different
        ``FORMAT_VERSION``, or malformed entries — is *discarded*: the
        cache stays usable (and a later :meth:`save` rewrites the file
        in the current format).  Pass ``strict=True`` to raise
        ``ValueError`` instead.
        """
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("MappingCache has no backing path; pass one")
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return self._reject(f"{source}: not a mapping-cache file: {exc}", strict)
        if not isinstance(payload, dict) or payload.get("format") != FORMAT_VERSION:
            version = payload.get("format") if isinstance(payload, dict) else None
            return self._reject(
                f"{source}: unsupported mapping-cache format "
                f"{version!r} (expected {FORMAT_VERSION})",
                strict,
            )
        try:
            entries = {
                key: decode_search_result(data)
                for key, data in payload["entries"].items()
            }
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            return self._reject(
                f"{source}: malformed mapping-cache entry: {exc!r}", strict
            )
        return self.merge(entries)

    @staticmethod
    def _reject(message: str, strict: bool) -> int:
        """Handle an unusable cache file: raise (strict) or discard."""
        if strict:
            raise ValueError(message)
        warnings.warn(f"discarding stale mapping cache: {message}", stacklevel=3)
        return 0


def cache_file_info(path: str | Path) -> dict:
    """Inspect a mapping-cache file, validating that it would load
    (every entry is decoded, so the call is O(entries)).

    Returns a dict with ``path``, ``size_bytes``, ``format``,
    ``entries``, the ``stats`` recorded at the last save, and a
    ``status`` of ``"ok"``, ``"stale-version"``, ``"malformed-entries"``,
    ``"corrupt"`` or ``"missing"`` (the ``repro cache-info`` backend).
    ``"ok"`` means :meth:`MappingCache.load` would load every entry.
    """
    source = Path(path)
    info: dict = {
        "path": str(source),
        "size_bytes": 0,
        "format": None,
        "entries": 0,
        "stats": {},
        "status": "missing",
    }
    if not source.exists():
        return info
    info["size_bytes"] = source.stat().st_size
    try:
        payload = json.loads(source.read_text())
    except (json.JSONDecodeError, OSError):
        info["status"] = "corrupt"
        return info
    if not isinstance(payload, dict) or not isinstance(
        payload.get("entries"), dict
    ):
        info["status"] = "corrupt"
        return info
    info["format"] = payload.get("format")
    info["entries"] = len(payload["entries"])
    stats = payload.get("stats")
    info["stats"] = stats if isinstance(stats, dict) else {}
    if payload.get("format") != FORMAT_VERSION:
        info["status"] = "stale-version"
        return info
    try:
        for data in payload["entries"].values():
            decode_search_result(data)
    except (KeyError, TypeError, AttributeError, ValueError):
        info["status"] = "malformed-entries"
        return info
    info["status"] = "ok"
    return info
