"""Shareable, optionally persistent store of mapping-search results.

:class:`MappingCache` extracts the memo dict that used to live inside
:class:`~repro.mapping.loma.MappingSearchEngine` into a first-class
object that can be

* shared between engines (all engines built from one cache handle see
  each other's results, e.g. across the accelerators of a sweep);
* snapshotted and merged (the parallel executor pre-warms worker
  processes from the parent cache and harvests their new entries back);
* persisted to disk as JSON and re-loaded in a later run, so repeated
  sweeps and benchmark re-runs skip the LOMA search entirely.

Keys are produced by the search engine (layer shape, accelerator
fingerprint, truncated tops, search config) and contain only primitives
and nested tuples; they are canonicalized to JSON strings so the same
logical key is stable across processes and runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterable, Mapping

from .cost import CostResult, Traffic
from .loma import SearchResult
from .temporal import TemporalMapping

#: On-disk format version; bump when the entry encoding changes.
FORMAT_VERSION = 1


def normalize_key(key: Hashable) -> str:
    """Canonical string form of a structured cache key.

    Keys are built from primitives and nested tuples only; JSON encoding
    (tuples become arrays) gives a stable, process-independent identity.
    """
    if isinstance(key, str):
        return key
    return json.dumps(key, separators=(",", ":"))


def encode_search_result(result: SearchResult) -> dict:
    """JSON-serializable form of a :class:`SearchResult`."""
    cost = result.cost
    return {
        "loops": [[dim, factor] for dim, factor in result.mapping.loops],
        "bounds": {
            op: list(bounds) for op, bounds in result.mapping.boundaries.items()
        },
        "cost": {
            "mac_count": cost.mac_count,
            "mac_energy_pj": cost.mac_energy_pj,
            "compute_cycles": cost.compute_cycles,
            "latency_cycles": cost.latency_cycles,
            "traffic": [
                [category, level, t.reads_elems, t.writes_elems, t.energy_pj]
                for (category, level), t in cost.traffic.items()
            ],
        },
        "evaluated": result.evaluated,
    }


def decode_search_result(data: Mapping) -> SearchResult:
    """Inverse of :func:`encode_search_result`."""
    mapping = TemporalMapping(
        loops=tuple((dim, int(factor)) for dim, factor in data["loops"]),
        boundaries={
            op: tuple(int(b) for b in bounds)
            for op, bounds in data["bounds"].items()
        },
    )
    raw = data["cost"]
    cost = CostResult(
        mac_count=raw["mac_count"],
        mac_energy_pj=raw["mac_energy_pj"],
        compute_cycles=raw["compute_cycles"],
        latency_cycles=raw["latency_cycles"],
    )
    for category, level, reads, writes, energy in raw["traffic"]:
        cost.traffic[(category, level)] = Traffic(reads, writes, energy)
    return SearchResult(
        mapping=mapping, cost=cost, evaluated=int(data.get("evaluated", 0))
    )


class MappingCache:
    """Keyed store of LOMA search results with optional JSON persistence.

    Parameters
    ----------
    path:
        Optional backing file.  When given and the file exists, its
        entries are loaded immediately; :meth:`save` without arguments
        writes back to the same file.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._entries: dict[str, SearchResult] = {}
        self.hits = 0
        self.misses = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    # Dict-like core
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> SearchResult | None:
        """Look up a search result, counting hit/miss statistics."""
        entry = self._entries.get(normalize_key(key))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: Hashable, result: SearchResult) -> None:
        self._entries[normalize_key(key)] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return normalize_key(key) in self._entries

    def keys(self) -> set[str]:
        """The set of (normalized) keys currently stored."""
        return set(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (misses == LOMA searches actually run)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    # ------------------------------------------------------------------
    # Sharing between caches / processes
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, SearchResult]:
        """Shallow copy of the entries (for pre-warming worker caches)."""
        return dict(self._entries)

    def merge(self, entries: Mapping[str, SearchResult]) -> int:
        """Adopt entries from another cache; returns how many were new."""
        new = 0
        for key, result in entries.items():
            if key not in self._entries:
                new += 1
            self._entries[key] = result
        return new

    def delta(self, baseline: Iterable[str]) -> dict[str, SearchResult]:
        """Entries whose keys are not in ``baseline`` (worker harvest)."""
        base = set(baseline)
        return {k: v for k, v in self._entries.items() if k not in base}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write all entries as JSON; returns the path written."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("MappingCache has no backing path; pass one")
        payload = {
            "format": FORMAT_VERSION,
            "entries": {
                key: encode_search_result(result)
                for key, result in self._entries.items()
            },
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload))
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge entries from a JSON file; returns how many were loaded."""
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("MappingCache has no backing path; pass one")
        try:
            payload = json.loads(source.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not a mapping-cache file: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{source}: unsupported mapping-cache format "
                f"{payload.get('format')!r} (expected {FORMAT_VERSION})"
            )
        try:
            entries = {
                key: decode_search_result(data)
                for key, data in payload["entries"].items()
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(
                f"{source}: malformed mapping-cache entry: {exc!r}"
            ) from exc
        return self.merge(entries)
