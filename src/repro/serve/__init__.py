"""Evaluation service: a live shared-cache server and async sharded
job execution on top of the exploration runtime.

The batch runtime (PR 1) shares mapping-cache hits only between runs or
at batch edges; this subsystem turns it into a long-lived service:

* :class:`CacheServer` / :class:`CacheClient` — one live mapping-cache
  table served over TCP (JSON lines); every worker of a run reads and
  writes it, so hits propagate *during* the run.  ``repro serve`` runs
  a standalone server; ``--cache-server HOST:PORT`` points executors at
  it.  Periodic snapshots keep the persistent JSON cache format
  unchanged.
* :class:`EvalService` — an async job queue over N worker shards with
  in-flight dedup (identical jobs coalesce into one evaluation) and
  optional backpressure (:class:`ServiceOverloaded`).
* :class:`ServiceClient` — the executor-facing adapter;
  ``Executor(jobs=N, backend="service")`` runs every batch through it
  with results bit-identical to serial.

Quick start::

    from repro.explore import Executor, SweepSpec

    spec = SweepSpec.tile_grid("meta_proto_like_df", "fsrcnn",
                               [(4, 4), (16, 18), (60, 72)])
    with Executor(jobs=4, backend="service") as executor:
        results = executor.run(spec)   # workers share cache hits live
"""

from .cache_server import (
    AUTH_TOKEN_ENV,
    CacheClient,
    CacheServer,
    CacheServerError,
    format_address,
    parse_address,
)
from .service import (
    EvalService,
    ServiceClient,
    ServiceError,
    ServiceFuture,
    ServiceOverloaded,
    job_key,
)

__all__ = [
    "AUTH_TOKEN_ENV",
    "CacheClient",
    "CacheServer",
    "CacheServerError",
    "EvalService",
    "ServiceClient",
    "ServiceError",
    "ServiceFuture",
    "ServiceOverloaded",
    "format_address",
    "job_key",
    "parse_address",
]
