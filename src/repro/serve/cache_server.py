"""Live shared mapping cache: a TCP server fronting one
:class:`~repro.mapping.cache.MappingCache`, and a client that stands in
for a local cache anywhere one is accepted.

The exploration runtime's process backend shares cache hits only at the
*edges* of a run (workers are pre-warmed with a snapshot and their new
entries harvested afterwards), so two workers that draw the same
``(layer, accelerator, tops)`` mapping inside one batch both pay for the
LOMA search.  :class:`CacheServer` closes that window: every worker
reads and writes one live table, so a mapping searched once is a hit for
every other worker *during* the run.

Protocol: newline-delimited JSON over a persistent TCP connection.  Each
request is ``{"op": ..., ...}`` and each response ``{"ok": true, ...}``
(or ``{"ok": false, "error": msg}``).  Keys travel in their normalized
string form (:func:`~repro.mapping.cache.normalize_key`) and entries as
the JSON encoding already used by the persistent cache format, so the
wire format and the disk format stay in lockstep.

The server can periodically snapshot its table to disk through
:meth:`MappingCache.save` — atomic and merge-on-save, in the unchanged
persistent format — so a long-lived server doubles as the writer of the
cache file that cold runs pre-warm from.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Hashable, Iterable, Mapping

from .. import obs
from ..mapping.cache import (
    MappingCache,
    decode_search_result,
    encode_search_result,
    normalize_key,
)
from ..mapping.loma import SearchResult
from ..obs.metrics import MetricsRegistry

#: Environment variable supplying the shared-secret token when neither
#: ``CacheClient(token=...)`` nor ``repro serve --auth-token`` is given.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"


class CacheServerError(RuntimeError):
    """A cache-server request failed (server-side error or lost link)."""


def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """Normalize ``"host:port"`` (or a ``(host, port)`` pair) to a tuple."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = address.strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cache-server address must be HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"cache-server address must be HOST:PORT, got {address!r}"
        ) from None


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: serve JSON-line requests until EOF."""

    def handle(self) -> None:
        server: CacheServer = self.server.cache_server  # type: ignore[attr-defined]
        server._connection_opened()
        try:
            while True:
                line = self.rfile.readline()
                if not line:
                    break
                request: dict = {}
                try:
                    decoded = json.loads(line)
                    if not isinstance(decoded, dict):
                        raise ValueError("request must be a JSON object")
                    request = decoded
                    response = server.handle_request(request)
                except Exception as exc:  # noqa: BLE001 - reported to the client
                    response = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                self.wfile.write(json.dumps(response).encode() + b"\n")
                self.wfile.flush()
                if request.get("op") == "shutdown" and response.get("ok"):
                    break
        finally:
            server._connection_closed()


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _MetricsHandler(BaseHTTPRequestHandler):
    """Stdlib HTTP front for :meth:`CacheServer.export_metrics`.

    Serves ``GET /metrics`` (Prometheus text exposition) and
    ``GET /healthz``.  Exposes *aggregate numbers only* — never table
    contents — so a fleet can be scraped without distributing the cache
    auth token; the JSON-line data plane stays behind the token.
    """

    server_version = "repro-metrics"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        cache_server: CacheServer = self.server.cache_server  # type: ignore[attr-defined]
        path = self.path.partition("?")[0].rstrip("/") or "/"
        if path == "/metrics":
            body = cache_server.export_metrics().render_prometheus().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path in ("/", "/healthz"):
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
        else:
            body = b"not found: try /metrics or /healthz\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Scrapes are periodic; stderr chatter would drown the run."""


class _HTTPServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True


class CacheServer:
    """Serves one live :class:`MappingCache` table to many clients.

    Parameters
    ----------
    cache:
        The fronted cache.  Passing the handle an :class:`Executor`
        already owns means everything the workers learn lands in the
        caller's cache the moment it is put — no harvest step.  A
        private cache is created when omitted.
    host, port:
        Bind address; port ``0`` (default) picks a free port, reported
        by :attr:`address` after :meth:`start`.
    snapshot_path:
        Optional JSON file for periodic + final snapshots (the unchanged
        persistent cache format, written atomically with merge-on-save).
    snapshot_interval:
        Seconds between periodic snapshots (requires ``snapshot_path``);
        ``None`` snapshots only on :meth:`stop`.
    auth_token:
        Optional shared secret.  When set, every request (``metrics``
        and ``stats`` included) must carry a matching ``"token"`` field
        — clients pass ``CacheClient(token=...)`` or set the
        ``REPRO_AUTH_TOKEN`` environment variable — and requests
        without one get a clean JSON error instead of service.
    metrics_port:
        When not ``None``, also serve an HTTP ``GET /metrics``
        Prometheus exposition (plus ``/healthz``) on this port — ``0``
        picks a free one, reported by :attr:`metrics_address` after
        :meth:`start`.  Numbers only, unauthenticated by design; see
        :class:`_MetricsHandler`.
    """

    def __init__(
        self,
        cache: MappingCache | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_path: "str | Path | None" = None,
        snapshot_interval: float | None = None,
        auth_token: str | None = None,
        metrics_port: int | None = None,
    ) -> None:
        if snapshot_interval is not None:
            if snapshot_path is None:
                raise ValueError("snapshot_interval requires snapshot_path")
            if snapshot_interval <= 0:
                raise ValueError(
                    f"snapshot_interval must be > 0, got {snapshot_interval}"
                )
        self.cache = cache if cache is not None else MappingCache()
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.snapshot_interval = snapshot_interval
        self._bind = (host, port)
        self._lock = threading.RLock()
        self._stop_lock = threading.Lock()
        #: Set once a stop (including its final snapshot) has finished;
        #: lets concurrent stop() callers wait instead of racing past.
        self._stop_done = threading.Event()
        self._stop_done.set()
        # The ownership handoff in stop() runs under _stop_lock; the
        # single start() call happens before any concurrent access
        # exists, and the thread/server handles are only touched by
        # the start/stop caller — hence <owner>, not a lock.
        self._server: _TCPServer | None = None  # guarded-by: _stop_lock
        self._thread: threading.Thread | None = None  # guarded-by: <owner>
        self._snapshot_thread: threading.Thread | None = None  # guarded-by: <owner>
        self.metrics_port = metrics_port
        self._http_server: _HTTPServer | None = None  # guarded-by: <owner>
        self._http_thread: threading.Thread | None = None  # guarded-by: <owner>
        self._stopping = threading.Event()
        self.auth_token = auth_token
        self.requests = {"get": 0, "put": 0, "put_many": 0, "snapshot": 0}  # guarded-by: _lock
        self.snapshots_written = 0  # guarded-by: _lock
        self.unauthorized = 0  # guarded-by: _counter_lock
        # Live load counters (read under _counter_lock): open client
        # connections, requests currently being handled, and requests
        # blocked waiting for the shared-table lock (queue depth).
        self._counter_lock = threading.Lock()
        self.connections = 0  # guarded-by: _counter_lock
        self.connections_total = 0  # guarded-by: _counter_lock
        self.in_flight = 0  # guarded-by: _counter_lock
        self.queue_depth = 0  # guarded-by: _counter_lock

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def _connection_opened(self) -> None:
        with self._counter_lock:
            self.connections += 1
            self.connections_total += 1

    def _connection_closed(self) -> None:
        with self._counter_lock:
            self.connections -= 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CacheServer":
        if self._server is not None:
            return self
        server = _TCPServer(self._bind, _Handler)
        server.cache_server = self  # type: ignore[attr-defined]
        self._server = server
        self._stopping.clear()
        self._stop_done.clear()
        self._thread = threading.Thread(
            target=server.serve_forever, name="cache-server", daemon=True
        )
        self._thread.start()
        if self.snapshot_interval is not None:
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop,
                name="cache-server-snapshot",
                daemon=True,
            )
            self._snapshot_thread.start()
        if self.metrics_port is not None:
            http_server = _HTTPServer(
                (self._bind[0], self.metrics_port), _MetricsHandler
            )
            http_server.cache_server = self  # type: ignore[attr-defined]
            self._http_server = http_server
            self._http_thread = threading.Thread(
                target=http_server.serve_forever,
                name="cache-server-metrics",
                daemon=True,
            )
            self._http_thread.start()
        return self

    def stop(self, save: bool = True) -> None:
        """Shut the server down; with ``save`` (default), write a final
        snapshot when a ``snapshot_path`` is configured.

        Safe to call from several threads (e.g. the remote ``shutdown``
        op and the ``repro serve`` foreground loop): exactly one caller
        performs the teardown, and the others block until it has
        finished — including the final snapshot, so no caller can
        report completion while the snapshot is still being written.
        """
        with self._stop_lock:
            server, self._server = self._server, None
        if server is None:
            # Someone else is (or has finished) stopping: wait for the
            # teardown — final snapshot included — to complete.
            self._stop_done.wait(timeout=30.0)
            return
        try:
            self._stopping.set()
            server.shutdown()
            server.server_close()
            if self._http_server is not None:
                self._http_server.shutdown()
                self._http_server.server_close()
                self._http_server = None
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
                self._http_thread = None
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
            if self._snapshot_thread is not None:
                self._snapshot_thread.join(timeout=5.0)
                self._snapshot_thread = None
            if save and self.snapshot_path is not None:
                self.save_snapshot()
        finally:
            self._stop_done.set()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); the real port once started."""
        if self._server is not None:
            host, port = self._server.server_address[:2]
            return str(host), int(port)
        return self._bind

    @property
    def metrics_address(self) -> "tuple[str, int] | None":
        """The HTTP metrics endpoint's (host, port), or ``None`` when
        no ``metrics_port`` was configured / the server is stopped."""
        if self._http_server is None:
            return None
        host, port = self._http_server.server_address[:2]
        return str(host), int(port)

    def describe(self) -> str:
        return format_address(self.address)

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def save_snapshot(self, path: "str | Path | None" = None) -> Path:
        """Atomically write the current table in the persistent cache
        format (merge-on-save: concurrent writers are never clobbered)."""
        target = Path(path) if path is not None else self.snapshot_path
        if target is None:
            raise ValueError("cache server has no snapshot path; pass one")
        with self._lock:
            written = self.cache.save(target)
            self.snapshots_written += 1
        return written

    def _snapshot_loop(self) -> None:
        while not self._stopping.wait(self.snapshot_interval):
            self.save_snapshot()

    # ------------------------------------------------------------------
    # Request dispatch (also callable directly, e.g. in tests)
    # ------------------------------------------------------------------
    def handle_request(self, request: Mapping) -> dict:
        if self.auth_token is not None and request.get("token") != self.auth_token:
            # A clean, structured rejection — never an exception, so
            # unauthenticated probes cannot distinguish ops, and every
            # op (metrics/stats included) is behind the same gate.
            with self._counter_lock:
                self.unauthorized += 1
            return {
                "ok": False,
                "error": "authentication failed: missing or invalid token "
                "(pass CacheClient(token=...) or set "
                f"{AUTH_TOKEN_ENV})",
                "unauthorized": True,
            }
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            raise ValueError(f"unknown cache-server op {op!r}")
        with self._counter_lock:
            self.in_flight += 1
            self.queue_depth += 1
        # The table lock serializes op bodies; time spent blocking on it
        # here is "queued", time past it "in flight" (the RLock makes the
        # ops' own acquisitions reentrant no-ops on this thread).
        try:
            with self._lock:
                with self._counter_lock:
                    self.queue_depth -= 1
                return handler(request)
        finally:
            with self._counter_lock:
                self.in_flight -= 1

    def _op_ping(self, request: Mapping) -> dict:
        return {"ok": True, "pong": True, "size": len(self.cache)}

    def _op_get(self, request: Mapping) -> dict:
        key = request["key"]
        with self._lock:
            self.requests["get"] += 1
            entry = self.cache.get(key)
        if entry is None:
            return {"ok": True, "found": False}
        return {"ok": True, "found": True, "entry": encode_search_result(entry)}

    def _op_put(self, request: Mapping) -> dict:
        result = decode_search_result(request["entry"])
        with self._lock:
            self.requests["put"] += 1
            self.cache.put(request["key"], result)
        return {"ok": True}

    def _op_put_many(self, request: Mapping) -> dict:
        entries = {
            key: decode_search_result(data)
            for key, data in request["entries"].items()
        }
        with self._lock:
            self.requests["put_many"] += 1
            new = self.cache.merge(entries)
        return {"ok": True, "new": new}

    def _op_snapshot(self, request: Mapping) -> dict:
        with self._lock:
            self.requests["snapshot"] += 1
            entries = {
                key: encode_search_result(result)
                for key, result in self.cache.snapshot().items()
            }
        return {"ok": True, "entries": entries}

    def _op_keys(self, request: Mapping) -> dict:
        with self._lock:
            keys = sorted(self.cache.keys())
        return {"ok": True, "keys": keys}

    def _op_stats(self, request: Mapping) -> dict:
        with self._lock:
            stats = dict(self.cache.stats)
            stats["requests"] = dict(self.requests)
            stats["snapshots_written"] = self.snapshots_written
        with self._counter_lock:
            stats["connections"] = self.connections
            stats["connections_total"] = self.connections_total
            # Includes this very stats request, so >= 1 when served
            # over the wire.
            stats["in_flight"] = self.in_flight
            stats["queue_depth"] = self.queue_depth
            stats["unauthorized"] = self.unauthorized
        return {"ok": True, "stats": stats}

    def export_metrics(self) -> MetricsRegistry:
        """The server's state as a metrics registry: cache counters,
        per-op request totals and live load gauges, merged with this
        process's global telemetry registry when telemetry is on (an
        embedded server then also exports its executor's counters)."""
        registry = MetricsRegistry()
        if obs.enabled:
            registry.merge(obs.metrics())
        with self._lock:
            cache_stats = dict(self.cache.stats)
            requests = dict(self.requests)
            snapshots = self.snapshots_written
        with self._counter_lock:
            connections = self.connections
            connections_total = self.connections_total
            in_flight = self.in_flight
            queue_depth = self.queue_depth
            unauthorized = self.unauthorized
        registry.counter("cache_server_hits_total").inc(cache_stats["hits"])
        registry.counter("cache_server_misses_total").inc(cache_stats["misses"])
        registry.gauge("cache_server_entries").set(cache_stats["size"])
        for op, count in requests.items():
            registry.counter("cache_server_requests_total", op=op).inc(count)
        registry.counter("cache_server_snapshots_total").inc(snapshots)
        registry.counter("cache_server_unauthorized_total").inc(unauthorized)
        registry.gauge("cache_server_connections").set(connections)
        registry.counter("cache_server_connections_total").inc(connections_total)
        registry.gauge("cache_server_in_flight").set(in_flight)
        registry.gauge("cache_server_queue_depth").set(queue_depth)
        return registry

    def _op_metrics(self, request: Mapping) -> dict:
        """Prometheus text + JSON dump of :meth:`export_metrics` (the
        observability endpoint the ROADMAP's fleet mode needs)."""
        registry = self.export_metrics()
        return {
            "ok": True,
            "text": registry.render_prometheus(),
            "json": registry.to_json(),
        }

    def _op_save(self, request: Mapping) -> dict:
        path = request.get("path") or self.snapshot_path
        if path is None:
            raise ValueError("server has no snapshot path; pass one")
        return {"ok": True, "path": str(self.save_snapshot(path))}

    def _op_shutdown(self, request: Mapping) -> dict:
        # shutdown() blocks until serve_forever returns, so it must run
        # off the handler thread that is executing this very request.
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True}


class CacheClient:
    """A :class:`MappingCache` stand-in backed by a :class:`CacheServer`.

    Implements the full cache surface the engines and executors use —
    ``get``/``put`` on the hot path, ``snapshot``/``merge``/``keys``/
    ``delta`` for the process backend's pre-warm + harvest — so a client
    can be dropped anywhere a :class:`MappingCache` is accepted (e.g.
    ``Executor(cache=CacheClient("host:1234"))``).

    Reads are cached locally: a key fetched or put once is (while it
    stays within ``local_bound``, oldest-out) never requested again, so
    the server mostly sees first-touch traffic.  A *server-side* hit
    therefore always means one client benefiting from an entry another
    client produced — the intra-run sharing the process backend cannot
    provide.  The bound keeps long-lived clients (service shards) at
    flat memory; an evicted key is simply re-fetched.
    """

    #: Default capacity of the local read cache.
    DEFAULT_LOCAL_BOUND = 4096

    def __init__(
        self,
        address: "str | tuple[str, int]",
        timeout: float = 60.0,
        local_bound: int | None = DEFAULT_LOCAL_BOUND,
        token: str | None = None,
    ) -> None:
        if local_bound is not None and local_bound < 1:
            raise ValueError(f"local_bound must be >= 1, got {local_bound}")
        self.address = parse_address(address)
        self.timeout = timeout
        self.local_bound = local_bound
        # Shared-secret auth: an explicit token wins; otherwise the
        # environment supplies one (forked workers inherit it), and
        # None means "server does not require auth".
        self.token = token if token is not None else os.environ.get(AUTH_TOKEN_ENV)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None
        self._local: dict[str, SearchResult] = {}
        self.hits = 0
        self.misses = 0
        try:
            self.ping()  # fail fast on a bad address or rejected token
        except CacheServerError:
            self.close()
            raise

    def _remember(self, text: str, result: SearchResult) -> None:
        self._local[text] = result
        if self.local_bound is not None:
            while len(self._local) > self.local_bound:
                del self._local[next(iter(self._local))]

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _request(self, payload: dict) -> dict:
        if self.token is not None:
            payload = {**payload, "token": self.token}
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        self.address, timeout=self.timeout
                    )
                    self._file = self._sock.makefile("rb")
                self._sock.sendall(json.dumps(payload).encode() + b"\n")
                line = self._file.readline()
            except OSError as exc:
                self._drop_connection()
                raise CacheServerError(
                    f"cache server {format_address(self.address)} "
                    f"unreachable: {exc}"
                ) from exc
            if not line:
                self._drop_connection()
                raise CacheServerError(
                    f"cache server {format_address(self.address)} "
                    "closed the connection"
                )
        response = json.loads(line)
        if not response.get("ok"):
            raise CacheServerError(
                response.get("error", "cache server request failed")
            )
        return response

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._file = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "CacheClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # MappingCache surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> SearchResult | None:
        text = normalize_key(key)
        entry = self._local.get(text)
        if entry is not None:
            self.hits += 1
            if obs.enabled:
                obs.metrics().counter(
                    "cache_client_gets_total", result="local"
                ).inc()
            return entry
        t0 = time.monotonic() if obs.enabled else 0.0
        response = self._request({"op": "get", "key": text})
        if obs.enabled:
            registry = obs.metrics()
            registry.histogram("cache_client_get_seconds").observe(
                time.monotonic() - t0
            )
            registry.counter(
                "cache_client_gets_total",
                result="hit" if response["found"] else "miss",
            ).inc()
        if not response["found"]:
            self.misses += 1
            return None
        entry = decode_search_result(response["entry"])
        self._remember(text, entry)
        self.hits += 1
        return entry

    def put(self, key: Hashable, result: SearchResult) -> None:
        text = normalize_key(key)
        self._remember(text, result)
        t0 = time.monotonic() if obs.enabled else 0.0
        self._request(
            {"op": "put", "key": text, "entry": encode_search_result(result)}
        )
        if obs.enabled:
            obs.metrics().histogram("cache_client_put_seconds").observe(
                time.monotonic() - t0
            )

    def snapshot(self) -> dict[str, SearchResult]:
        """The server's full table (also refreshes the local read cache)."""
        response = self._request({"op": "snapshot"})
        entries = {
            key: decode_search_result(data)
            for key, data in response["entries"].items()
        }
        for text, entry in entries.items():
            self._remember(text, entry)
        return entries

    def merge(self, entries: Mapping[str, SearchResult]) -> int:
        if not entries:
            return 0
        for text, entry in entries.items():
            self._remember(text, entry)
        t0 = time.monotonic() if obs.enabled else 0.0
        response = self._request(
            {
                "op": "put_many",
                "entries": {
                    key: encode_search_result(result)
                    for key, result in entries.items()
                },
            }
        )
        if obs.enabled:
            obs.metrics().histogram("cache_client_merge_seconds").observe(
                time.monotonic() - t0
            )
        return int(response["new"])

    def keys(self) -> set[str]:
        return set(self._request({"op": "keys"})["keys"])

    def delta(self, baseline: Iterable[str]) -> dict[str, SearchResult]:
        base = set(baseline)
        return {
            key: result
            for key, result in self.snapshot().items()
            if key not in base
        }

    def clear(self) -> None:
        """Drop the *local* read cache and counters (the engine-facing
        ``clear_cache`` surface).  The server's table is shared by other
        clients and runs, so it is deliberately left untouched."""
        self._local.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return int(self.server_stats()["size"])

    def __contains__(self, key: Hashable) -> bool:
        text = normalize_key(key)
        return text in self._local or text in self.keys()

    @property
    def stats(self) -> dict[str, int]:
        """This client's local hit/miss view (``size`` is server-side)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    # ------------------------------------------------------------------
    # Server controls
    # ------------------------------------------------------------------
    def ping(self) -> int:
        """Round-trip to the server; returns its current table size."""
        return int(self._request({"op": "ping"})["size"])

    def server_stats(self) -> dict:
        """The server's aggregate stats (hits there are cross-client)."""
        return self._request({"op": "stats"})["stats"]

    def server_metrics(self) -> dict:
        """The server's ``metrics`` op: ``{"text": <Prometheus
        exposition>, "json": <MetricsRegistry dump>}``."""
        response = self._request({"op": "metrics"})
        return {"text": response["text"], "json": response["json"]}

    def save(self, path: "str | Path | None" = None) -> Path:
        """Ask the server to snapshot its table to disk."""
        request: dict = {"op": "save"}
        if path is not None:
            request["path"] = str(path)
        return Path(self._request(request)["path"])

    def shutdown_server(self) -> None:
        self._request({"op": "shutdown"})
        self.close()
