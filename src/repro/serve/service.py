"""Async evaluation service: a job queue fanned out to worker shards
that share one live cache server.

Where the process backend of :class:`~repro.explore.executor.Executor`
is a *batch* machine (fork workers, run one shard list each, harvest,
tear down), :class:`EvalService` is a *long-lived* one:

* **shards** — N worker processes, each pulling from its own queue
  (jobs are assigned round-robin in submission order, so the placement
  is deterministic); workers stay warm across batches, keeping their
  per-accelerator engines and local read caches;
* **dedup / coalescing** — identical in-flight jobs resolve to the same
  :class:`ServiceFuture`: the evaluation runs once and every submitter
  gets the result (results are deterministic, so coalescing can never
  change an answer);
* **backpressure** — an optional bound on in-flight jobs; a blocking
  submit waits for a slot, a non-blocking one raises
  :class:`ServiceOverloaded` so callers can shed load;
* **shared cache** — every worker's mapping cache is a
  :class:`~repro.serve.cache_server.CacheClient`, wired either to an
  embedded :class:`CacheServer` fronting the caller's own
  :class:`MappingCache` (hits land in it live — no harvest step) or to
  an external server (``repro serve``), which is the hook for sharding
  across machines.

:class:`ServiceClient` adapts the service to the executor contract:
``run(jobs)`` returns results in job order, bit-identical to a serial
run of the same jobs.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import threading
import time
import traceback
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..mapping.cache import MappingCache
from .cache_server import CacheClient, CacheServer, parse_address

if TYPE_CHECKING:
    from ..explore.executor import EvalResult
    from ..explore.spec import EvalJob
    from ..mapping.loma import SearchConfig


class ServiceError(RuntimeError):
    """An evaluation failed inside a worker shard (or a shard died)."""


class ServiceOverloaded(RuntimeError):
    """The service's in-flight bound is reached and the submit did not
    (or could not) wait for a slot."""


def job_key(job: "EvalJob") -> tuple:
    """Coalescing identity of a job: everything that determines its
    result.  ``tag`` is display metadata, so jobs differing only by tag
    still coalesce; object references fall back to identity, like the
    executor's per-object engine keying."""
    return (
        job.accelerator if isinstance(job.accelerator, str) else id(job.accelerator),
        job.workload if isinstance(job.workload, str) else id(job.workload),
        job.strategy,
        job.kind,
        job.stack_layers,
        job.stack_index,
        job.input_locations,
    )


class ServiceFuture:
    """Pending result of one submitted (possibly coalesced) job."""

    def __init__(self, job: "EvalJob", key: tuple) -> None:
        self.job = job
        self.key = key
        #: Index of the shard the job was queued on (set by submit;
        #: lets shard-death errors name the jobs that went down with it).
        self.shard: int | None = None
        self._done = threading.Event()
        self._result = None
        self._error: str | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None):
        """The evaluation result (blocks); raises :class:`ServiceError`
        if the evaluation failed, ``TimeoutError`` on timeout."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"evaluation of {self.job.describe()} still pending"
            )
        if self._error is not None:
            raise ServiceError(self._error)
        return self._result

    # Internal: called by the collector thread only.
    def _resolve(self, result, error: str | None) -> None:
        self._result = result
        self._error = error
        self._done.set()


# ----------------------------------------------------------------------
# Worker-process main (module-level: must be importable after fork/spawn)
# ----------------------------------------------------------------------
def _service_worker_main(
    shard_index: int,
    job_queue,
    result_queue,
    search_config,
    policy,
    cache_address,
    obs_enabled: bool = False,
) -> None:
    """Pull (job_id, job, submit_time) items until the ``None``
    sentinel; evaluate each against a runner whose cache is a live
    server client.  With telemetry on, each result carries the shard's
    queue-wait and execution time (monotonic clock deltas — comparable
    across processes on the platforms that matter) so the parent's
    registry sees per-shard load without a separate harvest step."""
    from ..explore.executor import _JobRunner

    obs.worker_begin(obs_enabled)
    cache = (
        CacheClient(cache_address) if cache_address is not None else MappingCache()
    )
    runner = _JobRunner(search_config, policy, cache)
    try:
        while True:
            item = job_queue.get()
            if item is None:
                break
            job_id, job, t_submit = item
            t_start = time.monotonic() if t_submit is not None else None
            try:
                result = runner.evaluate(job)
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                timings = (
                    None
                    if t_start is None
                    else (
                        shard_index,
                        t_start - t_submit,
                        time.monotonic() - t_start,
                    )
                )
                result_queue.put(
                    (job_id, None, f"shard {shard_index}: {detail}", timings)
                )
                continue
            timings = (
                None
                if t_start is None
                else (shard_index, t_start - t_submit, time.monotonic() - t_start)
            )
            result_queue.put((job_id, result, None, timings))
    finally:
        if isinstance(cache, CacheClient):
            cache.close()


class EvalService:
    """A pool of evaluation shards behind a deduplicating job queue.

    Parameters
    ----------
    shards:
        Worker processes.  ``0`` is allowed and means "accept jobs but
        evaluate nothing" — useful to observe queueing/backpressure
        behaviour in isolation (tests); real runs want >= 1.
    search_config, policy:
        Engine knobs, shared by every evaluation (as in ``Executor``).
    cache:
        The :class:`MappingCache` the embedded server fronts; hits and
        new entries are live in this handle during the run.  Ignored
        when ``cache_address`` is given.
    cache_address:
        ``"host:port"`` of an external ``repro serve`` cache server;
        workers then share *that* table (multi-machine mode) and no
        embedded server is started.
    max_pending:
        Bound on in-flight jobs (backpressure); ``None`` = unbounded.
    """

    def __init__(
        self,
        shards: int = 1,
        search_config: "SearchConfig | None" = None,
        policy=None,
        cache: MappingCache | None = None,
        cache_address: "str | tuple[str, int] | None" = None,
        max_pending: int | None = None,
    ) -> None:
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.shards = shards
        self.search_config = search_config
        self.policy = policy
        self.cache = cache if cache is not None else MappingCache()
        self.cache_address = (
            parse_address(cache_address) if cache_address is not None else None
        )
        self.max_pending = max_pending
        # Lifecycle handles (<owner>): start()/stop() are called by the
        # thread that owns the service — the embedded server, workers,
        # queues and collector are created and torn down only there.
        self._server: CacheServer | None = None  # guarded-by: <owner>
        self._workers: list[mp.Process] = []  # guarded-by: <owner>
        self._job_queues: list = []  # guarded-by: <owner>
        self._result_queue = None  # guarded-by: <owner>
        self._collector: threading.Thread | None = None  # guarded-by: <owner>
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._slots = (  # guarded-by: <owner>
            threading.Semaphore(max_pending) if max_pending is not None else None
        )
        # Job bookkeeping and counters: submit(), the collector thread
        # and gather()'s shard-death reporting all touch these.
        self._inflight: dict[tuple, ServiceFuture] = {}  # guarded-by: _lock
        self._pending: dict[int, ServiceFuture] = {}  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        self._next_shard = 0  # guarded-by: _lock
        self._dead_shards: set[str] = set()  # guarded-by: _lock
        self.submitted = 0  # guarded-by: _lock
        self.coalesced = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.shard_deaths = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EvalService":
        if self.running:
            return self
        if self.cache_address is None:
            self._server = CacheServer(cache=self.cache).start()
            address = self._server.address
        else:
            address = self.cache_address
        self._stopping.clear()
        if self.max_pending is not None:
            # Fresh slots every start: a stop() with jobs in flight
            # error-resolves their futures without releasing, so a
            # reused semaphore would leak capacity across restarts.
            self._slots = threading.Semaphore(self.max_pending)
        context = mp.get_context()
        self._result_queue = context.Queue()
        self._job_queues = [
            context.Queue() for _ in range(max(1, self.shards))
        ]
        self._workers = [
            context.Process(
                target=_service_worker_main,
                args=(
                    index,
                    self._job_queues[index],
                    self._result_queue,
                    self.search_config,
                    self.policy,
                    address,
                    obs.enabled,
                ),
                daemon=True,
                name=f"eval-shard-{index}",
            )
            for index in range(self.shards)
        ]
        for worker in self._workers:
            worker.start()
        self._collector = threading.Thread(
            target=self._collect, name="eval-service-collector", daemon=True
        )
        self._collector.start()
        return self

    def stop(self) -> None:
        """Drain nothing, stop everything: sentinel the shards, join
        them, stop the collector and the embedded server."""
        if not self.running:
            return
        for q in self._job_queues:
            q.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - stuck-worker safety
                worker.terminate()
                worker.join(timeout=5.0)
        self._workers = []
        self._stopping.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None
        for q in self._job_queues:
            q.close()
        self._job_queues = []
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None
        if self._server is not None:
            self._server.stop()
            self._server = None
        # Fail anything still pending so no caller blocks forever.
        with self._lock:
            leftover = list(self._pending.values())
            self._pending.clear()
            self._inflight.clear()
        for future in leftover:
            future._resolve(None, "service stopped before the job completed")

    @property
    def running(self) -> bool:
        return self._collector is not None

    @property
    def server_address(self) -> "tuple[str, int] | None":
        """Address of the cache server the shards share (embedded or
        external); ``None`` before :meth:`start` in embedded mode."""
        if self._server is not None:
            return self._server.address
        return self.cache_address

    def __enter__(self) -> "EvalService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        job: "EvalJob",
        block: bool = True,
        timeout: float | None = None,
    ) -> ServiceFuture:
        """Queue one evaluation; returns its future.

        An identical in-flight job coalesces: the same future is
        returned and no new work is queued.  With ``max_pending`` set,
        a fresh job needs a free slot — ``block=False`` (or a timeout)
        raises :class:`ServiceOverloaded` instead of waiting forever.
        """
        if not self.running:
            raise RuntimeError("EvalService.submit() before start()")
        key = job_key(job)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.coalesced += 1
                if obs.enabled:
                    obs.metrics().counter("service_coalesced_total").inc()
                return existing
        if self._slots is not None:
            if not self._slots.acquire(blocking=block, timeout=timeout):
                raise ServiceOverloaded(
                    f"{self.max_pending} evaluations already in flight"
                )
        with self._lock:
            # Re-check: another submitter may have queued the same job
            # while this one waited for a slot.
            existing = self._inflight.get(key)
            if existing is not None:
                if self._slots is not None:
                    self._slots.release()
                self.coalesced += 1
                if obs.enabled:
                    obs.metrics().counter("service_coalesced_total").inc()
                return existing
            future = ServiceFuture(job, key)
            job_id = self._next_id
            self._next_id += 1
            self._inflight[key] = future
            self._pending[job_id] = future
            shard = self._next_shard
            self._next_shard = (self._next_shard + 1) % len(self._job_queues)
            self.submitted += 1
            future.shard = shard
            depth = len(self._pending)
        if obs.enabled:
            obs.metrics().counter("service_submitted_total").inc()
            obs.metrics().gauge("service_in_flight").set(depth)
        self._job_queues[shard].put(
            (job_id, job, time.monotonic() if obs.enabled else None)
        )
        return future

    def gather(self, futures: Sequence[ServiceFuture]) -> list:
        """Results for ``futures`` in order, watching shard liveness so
        a dead worker surfaces as :class:`ServiceError`, not a hang.

        The error names each dead shard and the in-flight jobs that
        were queued on it, so a crash log identifies both the casualty
        and the work it took down."""
        results = []
        for future in futures:
            while not future.wait(0.5):
                dead = [
                    (index, worker)
                    for index, worker in enumerate(self._workers)
                    if not worker.is_alive()
                ]
                if dead and not future.done():
                    raise ServiceError(self._report_dead_shards(dead))
            results.append(future.result())
        return results

    def _report_dead_shards(
        self, dead: "list[tuple[int, mp.Process]]"
    ) -> str:
        """Count newly dead shards and build the error message naming
        each shard id and its last in-flight job keys."""
        with self._lock:
            fresh = [
                (index, worker)
                for index, worker in dead
                if worker.name not in self._dead_shards
            ]
            for _, worker in fresh:
                self._dead_shards.add(worker.name)
            self.shard_deaths += len(fresh)
            pending = list(self._pending.values())
        if fresh and obs.enabled:
            obs.metrics().counter("service_shard_deaths_total").inc(len(fresh))
        details = []
        for index, worker in dead:
            stranded = [
                f.job.describe() for f in pending if f.shard == index
            ]
            if stranded:
                shown = "; ".join(stranded[:5])
                if len(stranded) > 5:
                    shown += f"; ... ({len(stranded)} total)"
                details.append(
                    f"shard {index} ({worker.name}) with in-flight "
                    f"job(s): {shown}"
                )
            else:
                details.append(
                    f"shard {index} ({worker.name}) with no in-flight jobs"
                )
        return "worker shard(s) died: " + "; ".join(details)

    def map(self, jobs: "Sequence[EvalJob]") -> list:
        """Submit every job and return their results in job order."""
        return self.gather([self.submit(job) for job in jobs])

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        """Collector thread: resolve futures as shards report back."""
        while not self._stopping.is_set():
            try:
                job_id, result, error, timings = self._result_queue.get(
                    timeout=0.2
                )
            except queue_module.Empty:
                continue
            except (OSError, ValueError):  # pragma: no cover - queue closed
                break
            with self._lock:
                future = self._pending.pop(job_id, None)
                depth = len(self._pending)
                if future is not None:
                    self._inflight.pop(future.key, None)
                    if error is None:
                        self.completed += 1
                    else:
                        self.errors += 1
                        if obs.enabled:
                            obs.metrics().counter(
                                "service_errors_total"
                            ).inc()
            if timings is not None and obs.enabled:
                shard, queue_wait, exec_time = timings
                registry = obs.metrics()
                registry.histogram(
                    "service_queue_wait_seconds", shard=shard
                ).observe(queue_wait)
                registry.histogram(
                    "service_exec_seconds", shard=shard
                ).observe(exec_time)
                registry.counter("service_jobs_total", shard=shard).inc()
                registry.gauge("service_in_flight").set(depth)
            if future is not None:
                if self._slots is not None:
                    self._slots.release()
                future._resolve(result, error)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus the shared cache server's view."""
        with self._lock:
            data = {
                "shards": self.shards,
                "max_pending": self.max_pending,
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "completed": self.completed,
                "errors": self.errors,
                "shard_deaths": self.shard_deaths,
                "in_flight": len(self._pending),
            }
        if self._server is not None:
            data["cache"] = dict(self._server.cache.stats)
            data["cache"]["requests"] = dict(self._server.requests)
        return data


class ServiceClient:
    """Adapts an :class:`EvalService` to the executor result contract:
    ``run(jobs)`` returns one :class:`EvalResult` per job, in job order,
    identical to what a serial executor would produce."""

    def __init__(self, service: EvalService) -> None:
        self.service = service

    def run(self, jobs: "Sequence[EvalJob]") -> "list[EvalResult]":
        from ..explore.executor import EvalResult

        futures = [self.service.submit(job) for job in jobs]
        results = self.service.gather(futures)
        return [
            EvalResult(job=job, result=result, index=index)
            for index, (job, result) in enumerate(zip(jobs, results))
        ]
