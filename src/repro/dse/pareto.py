"""Incremental Pareto frontier over minimized objective vectors.

The DSE subsystem never reduces a design to a single scalar: every
evaluated point carries one value per objective (all minimized), and the
frontier keeps exactly the non-dominated set, pruning dominated entries
as better points arrive.  The same dominance machinery (non-dominated
ranks, crowding distances) drives the genetic searcher's selection.

Frontiers checkpoint to JSON and resume exactly, so long explorations
survive interruption and repeated runs refine rather than restart.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from .space import DesignPoint

#: On-disk checkpoint format; bump when the encoding changes.
FRONTIER_FORMAT_VERSION = 1


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether vector ``a`` Pareto-dominates ``b`` (all objectives
    minimized): no worse everywhere, strictly better somewhere."""
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def nondominated_ranks(values: Sequence[Sequence[float]]) -> list[int]:
    """Rank each vector by non-dominated front: 0 for the Pareto front,
    1 for the front once rank 0 is removed, and so on (NSGA-II style)."""
    n = len(values)
    dominated_by = [0] * n  # how many vectors dominate values[i]
    dominating: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(values[i], values[j]):
                dominated_by[j] += 1
                dominating[i].append(j)
            elif dominates(values[j], values[i]):
                dominated_by[i] += 1
                dominating[j].append(i)
    ranks = [0] * n
    front = [i for i in range(n) if dominated_by[i] == 0]
    rank = 0
    while front:
        next_front: list[int] = []
        for i in front:
            ranks[i] = rank
            for j in dominating[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    next_front.append(j)
        front = next_front
        rank += 1
    return ranks


def crowding_distances(values: Sequence[Sequence[float]]) -> list[float]:
    """NSGA-II crowding distance per vector (larger = less crowded;
    boundary points get infinity).  Used as a diversity tie-break."""
    n = len(values)
    if n == 0:
        return []
    distances = [0.0] * n
    objectives = len(values[0])
    for m in range(objectives):
        order = sorted(range(n), key=lambda i: values[i][m])
        lo, hi = values[order[0]][m], values[order[-1]][m]
        distances[order[0]] = distances[order[-1]] = float("inf")
        if hi == lo:
            continue
        for pos in range(1, n - 1):
            i = order[pos]
            if distances[i] == float("inf"):
                continue
            gap = values[order[pos + 1]][m] - values[order[pos - 1]][m]
            distances[i] += gap / (hi - lo)
    return distances


@dataclass(frozen=True)
class FrontierEntry:
    """One non-dominated design with its objective values."""

    point: DesignPoint
    values: tuple[float, ...]

    def to_json(self) -> dict:
        return {"point": self.point.to_json(), "values": list(self.values)}

    @classmethod
    def from_json(cls, data: Mapping) -> "FrontierEntry":
        return cls(
            point=DesignPoint.from_json(data["point"]),
            values=tuple(float(v) for v in data["values"]),
        )


class ParetoFrontier:
    """The incremental non-dominated set for a fixed objective tuple.

    ``offer`` is the single mutation point: a candidate is accepted iff
    no current entry dominates it (and it is not a duplicate design);
    entries the candidate dominates are pruned.  Reported ``entries``
    are sorted by objective vector (then design key), so two runs that
    evaluated the same points report bit-identical frontiers whatever
    order the offers arrived in.
    """

    def __init__(self, objectives: Sequence[str]) -> None:
        if not objectives:
            raise ValueError("a Pareto frontier needs at least one objective")
        if len(set(objectives)) != len(objectives):
            raise ValueError(f"duplicate objectives: {objectives}")
        self.objectives = tuple(objectives)
        self._entries: list[FrontierEntry] = []
        self.offered = 0
        self.accepted = 0
        self.pruned = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[FrontierEntry]:
        """Non-dominated entries, deterministically ordered."""
        return sorted(
            self._entries, key=lambda e: (e.values, e.point.sort_key())
        )

    def offer(self, point: DesignPoint, values: Sequence[float]) -> bool:
        """Propose an evaluated design; returns whether it was kept."""
        vec = tuple(float(v) for v in values)
        if len(vec) != len(self.objectives):
            raise ValueError(
                f"expected {len(self.objectives)} objective values, got {len(vec)}"
            )
        self.offered += 1
        key = point.key()
        for entry in self._entries:
            if dominates(entry.values, vec) or entry.point.key() == key:
                return False
        survivors = [e for e in self._entries if not dominates(vec, e.values)]
        self.pruned += len(self._entries) - len(survivors)
        survivors.append(FrontierEntry(point=point, values=vec))
        self._entries = survivors
        self.accepted += 1
        return True

    def merge(self, other: "ParetoFrontier") -> int:
        """Offer every entry of ``other``; returns how many were kept."""
        if other.objectives != self.objectives:
            raise ValueError(
                f"objective mismatch: {other.objectives} vs {self.objectives}"
            )
        return sum(
            1 for e in other.entries if self.offer(e.point, e.values)
        )

    def best(self, objective: str) -> FrontierEntry:
        """The entry minimizing one of the frontier's objectives.

        Exact ties resolve to the *first-offered* entry — the classic
        ``min()``-over-sweep-order semantics, so a degenerate
        single-objective exhaustive DSE picks the very same point as
        ``best_point`` does (``_entries`` preserves offer order).
        """
        index = self.objectives.index(objective)
        best_entry: FrontierEntry | None = None
        for entry in self._entries:
            if best_entry is None or entry.values[index] < best_entry.values[index]:
                best_entry = entry
        if best_entry is None:
            raise ValueError("the frontier is empty")
        return best_entry

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": FRONTIER_FORMAT_VERSION,
            "objectives": list(self.objectives),
            # Offer order, not the sorted report order: from_json
            # re-offers in this order, so the first-offered tie-break
            # of best() survives a save/load round trip.
            "entries": [e.to_json() for e in self._entries],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ParetoFrontier":
        if data.get("format") != FRONTIER_FORMAT_VERSION:
            raise ValueError(
                f"unsupported frontier format {data.get('format')!r} "
                f"(expected {FRONTIER_FORMAT_VERSION})"
            )
        frontier = cls(tuple(data["objectives"]))
        for raw in data["entries"]:
            entry = FrontierEntry.from_json(raw)
            frontier.offer(entry.point, entry.values)
        return frontier

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace, like the runner's checkpoint: never tear the
        # file an interrupted run will resume from.
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_text(json.dumps(self.to_json()))
        os.replace(scratch, target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ParetoFrontier":
        return cls.from_json(json.loads(Path(path).read_text()))
