"""Incremental Pareto frontier over minimized objective vectors.

The DSE subsystem never reduces a design to a single scalar: every
evaluated point carries one value per objective (all minimized), and the
frontier keeps exactly the non-dominated set, pruning dominated entries
as better points arrive.  The same dominance machinery (non-dominated
ranks, crowding distances) drives the genetic searcher's selection.

Dominance is *constraint-aware* (Deb's constrained-dominance rules):
every candidate carries a total constraint violation (0.0 = feasible),
a lower violation always beats a higher one, and objective values only
decide between candidates with equal violation.  A single feasible
point therefore evicts every infeasible entry from the frontier, while
an all-infeasible frontier ranks its entries by how close they are to
feasibility — the search never loses gradient toward the feasible
region.

Frontiers checkpoint to JSON and resume exactly, so long explorations
survive interruption and repeated runs refine rather than restart.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from .space import DesignPoint

#: On-disk checkpoint format; bump when the encoding changes.
FRONTIER_FORMAT_VERSION = 1


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether vector ``a`` Pareto-dominates ``b`` (all objectives
    minimized): no worse everywhere, strictly better somewhere."""
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def constrained_dominates(
    a: Sequence[float],
    b: Sequence[float],
    violation_a: float = 0.0,
    violation_b: float = 0.0,
) -> bool:
    """Constrained dominance (Deb): a lower total violation always wins
    (a feasible point has violation 0.0, so it beats every infeasible
    one); equal violations fall back to Pareto dominance on the
    objective values."""
    if violation_a != violation_b:
        return violation_a < violation_b
    return dominates(a, b)


def nondominated_ranks(
    values: Sequence[Sequence[float]],
    violations: Sequence[float] | None = None,
) -> list[int]:
    """Rank each vector by non-dominated front: 0 for the Pareto front,
    1 for the front once rank 0 is removed, and so on (NSGA-II style).
    With ``violations``, fronts are built under constrained dominance,
    so all feasible fronts precede all infeasible ones."""
    n = len(values)
    if violations is not None and len(violations) != n:
        raise ValueError(
            f"{len(violations)} violations for {n} value vectors"
        )

    def dom(i: int, j: int) -> bool:
        if violations is None:
            return dominates(values[i], values[j])
        return constrained_dominates(
            values[i], values[j], violations[i], violations[j]
        )

    dominated_by = [0] * n  # how many vectors dominate values[i]
    dominating: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if dom(i, j):
                dominated_by[j] += 1
                dominating[i].append(j)
            elif dom(j, i):
                dominated_by[i] += 1
                dominating[j].append(i)
    ranks = [0] * n
    front = [i for i in range(n) if dominated_by[i] == 0]
    rank = 0
    while front:
        next_front: list[int] = []
        for i in front:
            ranks[i] = rank
            for j in dominating[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    next_front.append(j)
        front = next_front
        rank += 1
    return ranks


def crowding_distances(values: Sequence[Sequence[float]]) -> list[float]:
    """NSGA-II crowding distance per vector (larger = less crowded;
    boundary points get infinity).  Used as a diversity tie-break."""
    n = len(values)
    if n == 0:
        return []
    distances = [0.0] * n
    objectives = len(values[0])
    for m in range(objectives):
        order = sorted(range(n), key=lambda i: values[i][m])
        lo, hi = values[order[0]][m], values[order[-1]][m]
        distances[order[0]] = distances[order[-1]] = float("inf")
        if hi == lo:
            continue
        for pos in range(1, n - 1):
            i = order[pos]
            if distances[i] == float("inf"):
                continue
            gap = values[order[pos + 1]][m] - values[order[pos - 1]][m]
            distances[i] += gap / (hi - lo)
    return distances


@dataclass(frozen=True)
class FrontierEntry:
    """One non-dominated design with its objective values and total
    constraint violation (0.0 = feasible)."""

    point: DesignPoint
    values: tuple[float, ...]
    violation: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0

    def to_json(self) -> dict:
        data = {"point": self.point.to_json(), "values": list(self.values)}
        if self.violation:
            data["violation"] = self.violation
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "FrontierEntry":
        return cls(
            point=DesignPoint.from_json(data["point"]),
            values=tuple(float(v) for v in data["values"]),
            violation=float(data.get("violation", 0.0)),
        )


class ParetoFrontier:
    """The incremental constrained-non-dominated set for a fixed
    objective tuple.

    ``offer`` is the single mutation point: a candidate is accepted iff
    no current entry constrained-dominates it (and it is not a duplicate
    design); entries the candidate dominates are pruned.  A feasible
    candidate therefore evicts every infeasible entry; while no feasible
    design has been seen, the frontier holds the least-violating
    candidates so the search can report how far from feasibility it is.
    Reported ``entries`` are sorted by (violation, objective vector,
    design key), so two runs that evaluated the same points report
    bit-identical frontiers whatever order the offers arrived in.
    """

    def __init__(self, objectives: Sequence[str]) -> None:
        if not objectives:
            raise ValueError("a Pareto frontier needs at least one objective")
        if len(set(objectives)) != len(objectives):
            raise ValueError(f"duplicate objectives: {objectives}")
        self.objectives = tuple(objectives)
        self._entries: list[FrontierEntry] = []
        self.offered = 0
        self.accepted = 0
        self.pruned = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[FrontierEntry]:
        """Non-dominated entries, deterministically ordered."""
        return sorted(
            self._entries,
            key=lambda e: (e.violation, e.values, e.point.sort_key()),
        )

    @property
    def feasible_entries(self) -> list[FrontierEntry]:
        """The entries with zero constraint violation (ordered like
        :attr:`entries`; empty while no feasible design has been seen)."""
        return [e for e in self.entries if e.feasible]

    def offer(
        self,
        point: DesignPoint,
        values: Sequence[float],
        violation: float = 0.0,
    ) -> bool:
        """Propose an evaluated design; returns whether it was kept.
        ``violation`` is the design's total constraint violation
        (0.0 = feasible); it must never be negative."""
        vec = tuple(float(v) for v in values)
        if len(vec) != len(self.objectives):
            raise ValueError(
                f"expected {len(self.objectives)} objective values, got {len(vec)}"
            )
        violation = float(violation)
        if violation < 0.0:
            raise ValueError(f"violation must be >= 0, got {violation}")
        self.offered += 1
        key = point.key()
        for entry in self._entries:
            if (
                constrained_dominates(
                    entry.values, vec, entry.violation, violation
                )
                or entry.point.key() == key
            ):
                return False
        survivors = [
            e
            for e in self._entries
            if not constrained_dominates(vec, e.values, violation, e.violation)
        ]
        self.pruned += len(self._entries) - len(survivors)
        survivors.append(
            FrontierEntry(point=point, values=vec, violation=violation)
        )
        self._entries = survivors
        self.accepted += 1
        return True

    def merge(self, other: "ParetoFrontier") -> int:
        """Offer every entry of ``other``; returns how many were kept."""
        if other.objectives != self.objectives:
            raise ValueError(
                f"objective mismatch: {other.objectives} vs {self.objectives}"
            )
        return sum(
            1
            for e in other.entries
            if self.offer(e.point, e.values, e.violation)
        )

    def _objective_index(self, objective: str) -> int:
        try:
            return self.objectives.index(objective)
        except ValueError:
            raise ValueError(
                f"unknown objective {objective!r}; this frontier tracks: "
                f"{', '.join(self.objectives)}"
            ) from None

    def best(self, objective: str) -> FrontierEntry:
        """The entry minimizing one of the frontier's objectives.

        Feasible entries always beat infeasible ones; within the same
        feasibility, exact ties resolve to the *first-offered* entry —
        the classic ``min()``-over-sweep-order semantics, so a
        degenerate single-objective exhaustive DSE picks the very same
        point as ``best_point`` does (``_entries`` preserves offer
        order).
        """
        index = self._objective_index(objective)
        best_entry: FrontierEntry | None = None
        for entry in self._entries:
            if best_entry is None or (
                (entry.violation, entry.values[index])
                < (best_entry.violation, best_entry.values[index])
            ):
                best_entry = entry
        if best_entry is None:
            raise ValueError("the frontier is empty")
        return best_entry

    def hypervolume(
        self,
        reference: Sequence[float],
        samples: int | None = None,
        seed: int = 0,
    ) -> float:
        """Hypervolume of the *feasible* entries up to ``reference``
        (see :func:`~repro.dse.metrics.hypervolume`); 0.0 while the
        frontier holds no feasible design.  With a fixed reference this
        is monotone non-decreasing under :meth:`offer`."""
        from .metrics import DEFAULT_HV_SAMPLES, hypervolume

        return hypervolume(
            [e.values for e in self._entries if e.feasible],
            reference,
            samples=DEFAULT_HV_SAMPLES if samples is None else samples,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": FRONTIER_FORMAT_VERSION,
            "objectives": list(self.objectives),
            # Offer order, not the sorted report order: from_json
            # re-offers in this order, so the first-offered tie-break
            # of best() survives a save/load round trip.
            "entries": [e.to_json() for e in self._entries],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ParetoFrontier":
        if data.get("format") != FRONTIER_FORMAT_VERSION:
            raise ValueError(
                f"unsupported frontier format {data.get('format')!r} "
                f"(expected {FRONTIER_FORMAT_VERSION})"
            )
        frontier = cls(tuple(data["objectives"]))
        for raw in data["entries"]:
            entry = FrontierEntry.from_json(raw)
            frontier.offer(entry.point, entry.values, entry.violation)
        return frontier

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace, like the runner's checkpoint: never tear the
        # file an interrupted run will resume from.
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_text(json.dumps(self.to_json()))
        os.replace(scratch, target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ParetoFrontier":
        return cls.from_json(json.loads(Path(path).read_text()))
