"""Multi-objective design-space exploration (DSE).

The paper's case studies are single-objective grid walks over a fixed
menu of points.  This subsystem generalizes them into a search engine
over the *joint* space of DF strategies (tile size, overlap mode), stack
partitions (fuse depth) and accelerators, optimizing several objectives
at once (energy, latency, EDP, on/off-chip traffic) and maintaining an
incremental Pareto frontier instead of a single argmin:

* :class:`DesignSpace` / :class:`DesignPoint` — the joint space and its
  gene encoding (:mod:`repro.dse.space`);
* :class:`PartitionAxis` — explicit stack-partition genes: segment-
  relative cut positions searched as first-class axis-3 values, beyond
  the scalar ``fuse_depth`` cap (:mod:`repro.dse.partition`);
* :class:`Constraint` implementations — feasibility filters (on-chip
  memory budgets, latency/energy caps) ranked by Deb's constrained
  dominance (:mod:`repro.dse.constraints`);
* :class:`Scenario` — weighted multi-workload bundles searched as one
  aggregate-objective frontier (:mod:`repro.dse.scenario`);
* :func:`hypervolume` / :func:`additive_epsilon` — frontier-quality
  metrics driving per-generation convergence tracking
  (:mod:`repro.dse.metrics`);
* :class:`ExhaustiveSearch`, :class:`RandomSearch`,
  :class:`GeneticSearch` — pluggable searchers (:mod:`repro.dse.search`);
* :class:`ParetoFrontier` — dominance pruning, JSON checkpoint/resume
  (:mod:`repro.dse.pareto`);
* :class:`DSERunner` — the generation loop, batching every strategy's
  candidates through the exploration runtime so ``jobs=N`` parallelism
  and mapping-cache reuse come for free (:mod:`repro.dse.runner`).

Quick frontier search::

    from repro.dse import DesignSpace, DSERunner, GeneticSearch
    from repro.explore import Executor, MappingCache

    space = DesignSpace.paper_grid(accelerators=("meta_proto_like_df",))
    runner = DSERunner(
        space, "resnet18", objectives=("energy", "latency"),
        executor=Executor(jobs=4, cache=MappingCache("loma.json")), seed=0,
    )
    result = runner.run(GeneticSearch(population=16, generations=8))
    for entry in result.frontier.entries:
        print(entry.point.describe(), entry.values)

Searches are deterministic given (space, seed): parallel evaluation
changes wall-clock only, never the frontier.
"""

from .constraints import (
    Constraint,
    MemoryBudgetConstraint,
    ObjectiveCapConstraint,
    energy_cap,
    latency_cap,
    peak_activation_bytes,
)
from .metrics import additive_epsilon, hypervolume, reference_point
from .pareto import (
    FrontierEntry,
    ParetoFrontier,
    constrained_dominates,
    crowding_distances,
    dominates,
    nondominated_ranks,
)
from .partition import PartitionAxis, decode_cuts, workload_segments
from .runner import (
    DSEResult,
    DSERunner,
    GenerationStats,
    load_reference_frontier,
)
from .scenario import Scenario, WeightedWorkload
from .search import (
    ExhaustiveSearch,
    GeneticSearch,
    RandomSearch,
    SearchStrategy,
    create_strategy,
)
from .space import DesignPoint, DesignSpace

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "PartitionAxis",
    "decode_cuts",
    "workload_segments",
    "DSEResult",
    "DSERunner",
    "GenerationStats",
    "load_reference_frontier",
    "FrontierEntry",
    "ParetoFrontier",
    "dominates",
    "constrained_dominates",
    "nondominated_ranks",
    "crowding_distances",
    "Constraint",
    "MemoryBudgetConstraint",
    "ObjectiveCapConstraint",
    "latency_cap",
    "energy_cap",
    "peak_activation_bytes",
    "hypervolume",
    "additive_epsilon",
    "reference_point",
    "Scenario",
    "WeightedWorkload",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "GeneticSearch",
    "create_strategy",
]
