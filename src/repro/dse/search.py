"""Pluggable search strategies over a :class:`~repro.dse.space.DesignSpace`.

Every strategy is a generation-based ask/tell loop driven by the
:class:`~repro.dse.runner.DSERunner`:

* :meth:`SearchStrategy.propose` returns the next batch of candidate
  points (empty = converged / budget of generations spent);
* the runner evaluates the batch through the exploration runtime
  (deduplicating against everything already evaluated) and feeds the
  objective vectors back via :meth:`SearchStrategy.observe`.

All randomness flows through the single ``random.Random`` the runner
seeds, and all tie-breaks sort on design keys, so a search is
deterministic given (space, seed) — including across ``--jobs N``
parallel evaluation, which never changes results, only wall-clock.

Observed candidates are ``(point, values, violation)`` triples: the
genetic searcher selects under Deb's constrained dominance
(:func:`~repro.dse.pareto.nondominated_ranks` with violations), so
feasible designs always outrank infeasible ones and infeasible designs
evolve toward feasibility.
"""

from __future__ import annotations

import random
from typing import Sequence

from .pareto import crowding_distances, nondominated_ranks
from .space import DesignPoint, DesignSpace

#: One evaluated candidate: the design, its objective vector, and its
#: total constraint violation (0.0 = feasible).
Evaluated = "tuple[DesignPoint, tuple[float, ...], float]"


class SearchStrategy:
    """Base ask/tell interface; subclasses implement :meth:`propose`."""

    name = "base"

    def reset(self, space: DesignSpace, rng: random.Random) -> None:
        """Bind the strategy to a space and seeded rng before a run."""
        self.space = space
        self.rng = rng

    def propose(self) -> list[DesignPoint]:
        """The next candidate batch; ``[]`` ends the search."""
        raise NotImplementedError

    def observe(self, evaluated: Sequence["Evaluated"]) -> None:
        """Receive the batch's objective vectors (default: ignore)."""


class ExhaustiveSearch(SearchStrategy):
    """Grid walk: every point of the space, in the classic sweep order
    (the paper's case studies as a degenerate DSE)."""

    name = "exhaustive"

    def reset(self, space: DesignSpace, rng: random.Random) -> None:
        super().reset(space, rng)
        self._done = False

    def propose(self) -> list[DesignPoint]:
        if self._done:
            return []
        self._done = True
        return list(self.space.enumerate())


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling without replacement."""

    name = "random"

    def __init__(self, samples: int = 64) -> None:
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples

    def reset(self, space: DesignSpace, rng: random.Random) -> None:
        super().reset(space, rng)
        self._done = False

    def propose(self) -> list[DesignPoint]:
        if self._done:
            return []
        self._done = True
        return self.space.sample_points(self.rng, self.samples)


class GeneticSearch(SearchStrategy):
    """NSGA-II-flavoured evolutionary search over strategy genes.

    Genes are the slots of :meth:`DesignSpace.genes`: per-axis indices
    for the grid axes, plus — on partition-gened spaces — one binary
    gene per candidate cut position, so uniform crossover recombines
    stack partitions *cut by cut* and mutation flips individual cuts
    (the space's :meth:`~DesignSpace.mutate_gene` rule).  Each
    generation breeds ``population`` offspring by binary tournament on
    (non-dominated rank, crowding distance), uniform crossover and
    per-gene mutation, then canonicalizes every child through
    :meth:`DesignSpace.repair_genome` (every genome decodes to a valid
    stack partition by construction; repair only normalizes dormant
    genes).  Survivors are the best ``population`` of the merged
    parent+offspring pool.
    """

    name = "genetic"

    def __init__(
        self,
        population: int = 16,
        generations: int = 8,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.15,
    ) -> None:
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError(f"crossover_rate outside [0, 1]: {crossover_rate}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate outside [0, 1]: {mutation_rate}")
        self.population = population
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate

    def reset(self, space: DesignSpace, rng: random.Random) -> None:
        super().reset(space, rng)
        self._generation = 0
        self._pool: list[tuple[DesignPoint, tuple[float, ...], float]] = []
        self._ordered: list[DesignPoint] = []

    # ------------------------------------------------------------------
    def propose(self) -> list[DesignPoint]:
        if self._generation >= self.generations:
            return []
        self._generation += 1
        if not self._pool:
            return self.space.sample_points(self.rng, self.population)
        return [self._breed() for _ in range(self.population)]

    def observe(self, evaluated: Sequence["Evaluated"]) -> None:
        seen = {point.key() for point, _, _ in self._pool}
        for point, values, violation in evaluated:
            if point.key() not in seen:
                seen.add(point.key())
                self._pool.append((point, tuple(values), float(violation)))
        self._select()

    # ------------------------------------------------------------------
    def _select(self) -> None:
        """Truncate the pool to the best ``population`` members by
        (constrained rank, crowding), with design keys as the
        deterministic tie-break, and cache the selection order for
        tournaments.  Constrained ranks place every feasible front
        before every infeasible one, so elitism never trades a feasible
        design for a better-valued infeasible one."""
        values = [vals for _, vals, _ in self._pool]
        violations = [violation for _, _, violation in self._pool]
        ranks = nondominated_ranks(values, violations)
        # NSGA-II crowding is per front: distances measured against
        # same-rank neighbours only, so dominated fronts cannot distort
        # the elite's diversity ordering.
        crowding = [0.0] * len(self._pool)
        for rank in sorted(set(ranks)):
            members = [i for i, r in enumerate(ranks) if r == rank]
            for i, distance in zip(
                members, crowding_distances([values[i] for i in members])
            ):
                crowding[i] = distance
        order = sorted(
            range(len(self._pool)),
            key=lambda i: (ranks[i], -crowding[i], self._pool[i][0].sort_key()),
        )
        keep = order[: self.population]
        self._pool = [self._pool[i] for i in keep]
        self._ordered = [point for point, _, _ in self._pool]

    def _tournament(self) -> DesignPoint:
        """Binary tournament: two uniform picks, fitter (earlier in the
        selection order) wins."""
        a = self.rng.randrange(len(self._ordered))
        b = self.rng.randrange(len(self._ordered))
        return self._ordered[min(a, b)]

    def _breed(self) -> DesignPoint:
        mother = self.space.genes(self._tournament())
        father = self.space.genes(self._tournament())
        if self.rng.random() < self.crossover_rate:
            child = tuple(
                m if self.rng.random() < 0.5 else f
                for m, f in zip(mother, father)
            )
        else:
            child = mother
        child = tuple(
            self.space.mutate_gene(i, gene, self.rng)
            if self.rng.random() < self.mutation_rate
            else gene
            for i, gene in enumerate(child)
        )
        return self.space.point(self.space.repair_genome(child))


def create_strategy(name: str, **options) -> SearchStrategy:
    """Build a search strategy by CLI name (unknown options for a
    strategy are ignored, so one option namespace can serve all)."""
    if name == "exhaustive":
        return ExhaustiveSearch()
    if name == "random":
        return RandomSearch(samples=options.get("samples", 64))
    if name == "genetic":
        return GeneticSearch(
            population=options.get("population", 16),
            generations=options.get("generations", 8),
            crossover_rate=options.get("crossover_rate", 0.9),
            mutation_rate=options.get("mutation_rate", 0.15),
        )
    raise ValueError(
        f"unknown search strategy {name!r}; "
        "choose from exhaustive, random, genetic"
    )
