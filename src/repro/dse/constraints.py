"""Feasibility constraints for the DSE: on-chip memory budgets and
objective caps.

The paper's headline claim is that depth-first schedules only pay off
when the on-chip buffers and the workload shape interact favourably —
an unconstrained search happily reports "optimal" tile sizes whose
activation working set never fits on the chip.  A :class:`Constraint`
turns such points from frontier candidates into *infeasible* ones:

* every constraint maps an evaluated design to a **violation** — 0.0
  when satisfied, otherwise a dimensionless magnitude (relative excess
  over the budget/cap), so violations from different constraints can be
  summed into the single total that Deb's constrained dominance ranks
  infeasible designs by (:func:`~repro.dse.pareto.constrained_dominates`);
* the :class:`~repro.dse.runner.DSERunner` evaluates every constraint
  on every (design, workload) result, keeps feasible and infeasible
  designs apart in the frontier, and reports the violating designs when
  asked (``repro dse --show-infeasible``).

Violations are computed from the *evaluated* schedule (tile geometry,
cost totals), not from a static heuristic: the activation footprint of
a design depends on back-calculated halos and overlap caches, which
only step 2 of the cost model knows.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..mapping.cost import resolve_objective

if TYPE_CHECKING:
    from ..core.results import ScheduleResult
    from .space import DesignPoint


@runtime_checkable
class Constraint(Protocol):
    """One feasibility requirement on an evaluated design.

    ``violation`` returns 0.0 when the design satisfies the constraint
    and a positive, dimensionless magnitude otherwise (conventionally
    the relative excess over the budget, so different constraints sum
    meaningfully).  ``token`` is the constraint's stable identity for
    checkpoint stamps: resuming a run under different constraints must
    be rejected, not silently mixed.
    """

    name: str

    def violation(
        self, point: "DesignPoint", result: "ScheduleResult"
    ) -> float: ...

    def describe(self) -> str: ...

    def token(self) -> list: ...


def peak_activation_bytes(result: "ScheduleResult") -> int:
    """Peak on-chip activation working set of an evaluated schedule.

    Per tile type: the largest single-layer I+O residency plus the
    stack's H- and V-overlap caches (which live across the whole tile);
    the peak over all tile types of all stacks is what the chip's
    activation memories must hold at the worst moment.
    """
    peak = 0
    for stack in result.stacks:
        for tile in stack.tiling.tile_types:
            layer_peak = max(
                (g.input_bytes + g.output_bytes for g in tile.geometry),
                default=0,
            )
            need = layer_peak + tile.h_cache_bytes + tile.v_cache_line_bytes
            peak = max(peak, need)
    return peak


class MemoryBudgetConstraint:
    """Activation working set must fit an on-chip byte budget.

    ``budget_bytes=None`` uses each design's own accelerator activation
    capacity (the summed size of on-chip memories serving I or O), so
    one constraint instance serves a multi-accelerator space.  The
    violation is the relative excess: ``(footprint - budget) / budget``.
    """

    name = "memory_budget"

    def __init__(self, budget_bytes: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._capacities: dict[str, int] = {}

    def budget_for(self, point: "DesignPoint") -> int:
        """The effective byte budget for one design."""
        if self.budget_bytes is not None:
            return self.budget_bytes
        capacity = self._capacities.get(point.accelerator)
        if capacity is None:
            from ..hardware.zoo import get_accelerator

            accel = get_accelerator(point.accelerator)
            capacity = accel.activation_capacity_bytes()
            self._capacities[point.accelerator] = capacity
        return capacity

    def violation(
        self, point: "DesignPoint", result: "ScheduleResult"
    ) -> float:
        budget = self.budget_for(point)
        excess = peak_activation_bytes(result) - budget
        return max(0.0, excess / budget)

    def describe(self) -> str:
        if self.budget_bytes is None:
            return "activations fit each accelerator's on-chip memories"
        return f"activations fit {self.budget_bytes} on-chip bytes"

    def token(self) -> list:
        return [self.name, self.budget_bytes]


class ObjectiveCapConstraint:
    """A named objective must stay at or below a cap (e.g. a latency
    deadline in cycles, an energy budget in pJ).  The violation is the
    relative excess over the cap."""

    name = "objective_cap"

    def __init__(self, objective: str, cap: float) -> None:
        # The comparison also rejects NaN, which would otherwise make
        # every violation compute to 0.0 (a silently-disabled cap).
        if not (cap > 0.0 and math.isfinite(cap)):
            raise ValueError(f"cap must be a finite number > 0, got {cap}")
        self.objective = objective
        self.cap = float(cap)
        self._fn = resolve_objective(objective)

    def violation(
        self, point: "DesignPoint", result: "ScheduleResult"
    ) -> float:
        excess = self._fn(result.total) - self.cap
        return max(0.0, excess / self.cap)

    def describe(self) -> str:
        return f"{self.objective} <= {self.cap:g}"

    def token(self) -> list:
        return [self.name, self.objective, self.cap]


def latency_cap(cycles: float) -> ObjectiveCapConstraint:
    """A latency deadline in cycles."""
    return ObjectiveCapConstraint("latency", cycles)


def energy_cap(picojoules: float) -> ObjectiveCapConstraint:
    """An energy budget in pJ."""
    return ObjectiveCapConstraint("energy", picojoules)
