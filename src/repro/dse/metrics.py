"""Frontier-quality metrics: hypervolume and additive epsilon.

A Pareto frontier is a *set*, so "is this run converging?" needs set
metrics, not per-point ones.  Two standard indicators are provided (all
objectives minimized):

* **Hypervolume** — the volume of objective space dominated by the
  frontier, bounded above by a *reference point* that must be strictly
  worse than every frontier point in every objective.  Larger is better;
  with a fixed reference it is monotone non-decreasing as points are
  offered to a frontier, which makes it the per-generation convergence
  signal of the :class:`~repro.dse.runner.DSERunner`.  Exact in 1D/2D
  (sweep), Monte-Carlo estimated in 3D+ (seeded, hence deterministic).
* **Additive epsilon** — the smallest ``eps`` such that shifting the
  approximation set by ``eps`` in every objective makes it weakly
  dominate the reference set.  Smaller is better; 0 means the
  approximation covers the reference set.

Both work on plain value tuples, so they serve the DSE runner, the
property-test suite and ad-hoc analysis alike.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .pareto import dominates

#: Monte-Carlo sample count for 3D+ hypervolume (fixed => deterministic).
DEFAULT_HV_SAMPLES = 4096


def reference_point(
    values: Iterable[Sequence[float]], margin: float = 0.1
) -> tuple[float, ...]:
    """A reference point strictly worse than every vector in ``values``.

    Per objective: the maximum plus ``margin`` times the observed span
    (or a magnitude-scaled pad when the objective is constant), so the
    boundary points contribute non-zero hypervolume.
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be > 0, got {margin}")
    rows = [tuple(float(v) for v in row) for row in values]
    if not rows:
        raise ValueError("reference_point needs at least one value vector")
    dims = len(rows[0])
    ref = []
    for m in range(dims):
        column = [row[m] for row in rows]
        lo, hi = min(column), max(column)
        span = hi - lo
        if span <= 0.0:
            span = abs(hi) if hi != 0.0 else 1.0
        ref.append(hi + margin * span)
    return tuple(ref)


def _clean(
    points: Iterable[Sequence[float]], reference: Sequence[float]
) -> list[tuple[float, ...]]:
    """Validate arity, drop points not strictly inside the reference box
    (they bound zero volume), and drop dominated duplicates."""
    ref = tuple(float(r) for r in reference)
    inside: list[tuple[float, ...]] = []
    for row in points:
        vec = tuple(float(v) for v in row)
        if len(vec) != len(ref):
            raise ValueError(
                f"point arity {len(vec)} != reference arity {len(ref)}"
            )
        if all(v < r for v, r in zip(vec, ref)):
            inside.append(vec)
    kept: list[tuple[float, ...]] = []
    for vec in inside:
        if vec in kept or any(dominates(other, vec) for other in inside):
            continue
        kept.append(vec)
    return kept


def hypervolume(
    points: Iterable[Sequence[float]],
    reference: Sequence[float],
    samples: int = DEFAULT_HV_SAMPLES,
    seed: int = 0,
) -> float:
    """Hypervolume dominated by ``points`` up to ``reference``.

    1D/2D are computed exactly; 3D+ falls back to seeded Monte-Carlo
    over the bounding box (``samples`` uniform draws), so repeated calls
    with the same arguments return the same estimate.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    ref = tuple(float(r) for r in reference)
    front = _clean(points, ref)
    if not front:
        return 0.0
    dims = len(ref)
    if dims == 1:
        return ref[0] - min(vec[0] for vec in front)
    if dims == 2:
        # Sweep left to right; each point owns the horizontal strip from
        # its x to the reference, between its y and the best y so far.
        volume = 0.0
        cur_y = ref[1]
        for x, y in sorted(front):
            if y < cur_y:
                volume += (ref[0] - x) * (cur_y - y)
                cur_y = y
        return volume
    # Monte-Carlo: fraction of the (ideal, reference) box dominated.
    lows = tuple(min(vec[m] for vec in front) for m in range(dims))
    box = 1.0
    for lo, hi in zip(lows, ref):
        box *= hi - lo
    if box <= 0.0:
        return 0.0
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        draw = tuple(lo + rng.random() * (hi - lo) for lo, hi in zip(lows, ref))
        if any(
            all(v <= d for v, d in zip(vec, draw)) for vec in front
        ):
            hits += 1
    return box * hits / samples


def additive_epsilon(
    approximation: Iterable[Sequence[float]],
    reference_set: Iterable[Sequence[float]],
) -> float:
    """Additive epsilon indicator of ``approximation`` vs ``reference_set``.

    The smallest ``eps`` such that for every reference vector some
    approximation vector is within ``eps`` of it in *every* objective
    (all minimized).  0 means the approximation weakly dominates the
    reference set; ``inf`` means the approximation is empty while the
    reference set is not.
    """
    approx = [tuple(float(v) for v in row) for row in approximation]
    refs = [tuple(float(v) for v in row) for row in reference_set]
    if not refs:
        return 0.0
    if not approx:
        return float("inf")
    arities = {len(row) for row in approx} | {len(row) for row in refs}
    if len(arities) != 1:
        raise ValueError(f"mixed vector arities: {sorted(arities)}")
    worst = 0.0
    for ref in refs:
        best = min(
            max(a - r for a, r in zip(vec, ref)) for vec in approx
        )
        worst = max(worst, best)
    return worst
