"""Multi-workload scenarios: one frontier over a weighted workload mix.

A DSE run over a single network overfits that network: the tile size
that wins for ResNet-18's deep narrow tail loses for FSRCNN's shallow
wide layers.  A :class:`Scenario` bundles several workloads with
weights (e.g. relative invocation rates of a deployment) so the runner
evaluates every design against *all* of them and optimizes the
weighted-average objectives — the frontier then trades off aggregate
energy against aggregate latency instead of single-network ones.

Feasibility stays per-workload: a design is feasible only if every
constraint holds for **every** workload of the scenario (the chip must
run each network, not their average), with the per-constraint violation
aggregated as the worst case across workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class WeightedWorkload:
    """One scenario member: a workload reference (zoo name, cheap to
    ship to workers, or an object) with a positive weight."""

    workload: "str | WorkloadGraph"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(f"weight must be > 0, got {self.weight}")

    @property
    def name(self) -> str:
        wl = self.workload
        return wl if isinstance(wl, str) else wl.name


@dataclass(frozen=True)
class Scenario:
    """An ordered bundle of weighted workloads evaluated as one unit.

    The aggregate objective vector of a design is the weight-normalized
    average of its per-workload objective vectors, so weights express
    relative importance without changing units.
    """

    members: tuple[WeightedWorkload, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a scenario needs at least one workload")
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario workloads: {names}")
        if not self.name:
            object.__setattr__(self, "name", "+".join(names))

    def __len__(self) -> int:
        return len(self.members)

    @property
    def total_weight(self) -> float:
        return sum(m.weight for m in self.members)

    def workload_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.members)

    def token(self) -> list:
        """Stable identity for checkpoint stamps: resuming a run under a
        different workload mix must be rejected, not silently mixed."""
        return [[m.name, m.weight] for m in self.members]

    def describe(self) -> str:
        parts = []
        for m in self.members:
            parts.append(
                m.name if m.weight == 1.0 else f"{m.name}:{m.weight:g}"
            )
        return ",".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def of(
        cls,
        workloads: Sequence["str | WorkloadGraph"],
        weights: Sequence[float] | None = None,
        name: str = "",
    ) -> "Scenario":
        """Build a scenario from parallel workload/weight sequences
        (weights default to 1.0 each)."""
        if weights is None:
            weights = [1.0] * len(workloads)
        if len(weights) != len(workloads):
            raise ValueError(
                f"{len(weights)} weights for {len(workloads)} workloads"
            )
        return cls(
            members=tuple(
                WeightedWorkload(workload=wl, weight=float(w))
                for wl, w in zip(workloads, weights)
            ),
            name=name,
        )

    @classmethod
    def parse(cls, spec: str) -> "Scenario":
        """Parse a CLI scenario spec: comma-separated zoo names with
        optional ``:weight`` suffixes, e.g. ``resnet18:3,fsrcnn,mccnn``.

        Malformed members are rejected up front with the offending part
        named: empty names (``":2"``), trailing colons (``"resnet18:"``
        would otherwise silently mean weight 1.0), and weights that are
        not positive finite numbers.
        """
        members: list[WeightedWorkload] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw_weight = part.partition(":")
            name = name.strip()
            raw_weight = raw_weight.strip()
            if not name:
                raise ValueError(
                    f"scenario member {part!r} has no workload name"
                )
            if sep and not raw_weight:
                raise ValueError(
                    f"scenario member {part!r} ends in ':' without a "
                    "weight; drop the colon for the default weight 1.0"
                )
            if raw_weight:
                try:
                    weight = float(raw_weight)
                except ValueError:
                    raise ValueError(
                        f"bad scenario weight {raw_weight!r} in {part!r}"
                    ) from None
                # NaN fails the > 0 comparison too.
                if not (weight > 0.0 and math.isfinite(weight)):
                    raise ValueError(
                        f"scenario weight must be a positive finite "
                        f"number, got {raw_weight!r} in {part!r}"
                    )
            else:
                weight = 1.0
            members.append(WeightedWorkload(workload=name, weight=weight))
        if not members:
            raise ValueError(f"empty scenario spec: {spec!r}")
        return cls(members=tuple(members))

    def segment_tables(self) -> tuple[tuple[tuple[str, ...], ...], ...]:
        """Per-member branch-free segment tables (layer names per
        segment, schedule order) — the decoding context for
        segment-relative partition genes, which are workload-specific."""
        from .partition import workload_segments

        return tuple(workload_segments(m.workload) for m in self.members)
