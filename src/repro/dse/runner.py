"""The DSE driver: generations of candidate designs, evaluated in
batches through the exploration runtime, folded into a Pareto frontier.

The runner owns the loop glue that every search strategy shares:

* **dedup** — a design evaluated once (this run or in a resumed
  checkpoint) is never re-dispatched; repeats are served from the
  run-level memo at zero cost (on top of the mapping-level
  :class:`~repro.mapping.cache.MappingCache` reuse inside the executor);
* **batching** — each generation becomes one
  :class:`~repro.explore.spec.EvalJob` list run by an
  :class:`~repro.explore.executor.Executor`, so ``jobs=N`` process
  parallelism applies to any strategy for free, with results identical
  to a serial run;
* **scenarios** — the workload may be a
  :class:`~repro.dse.scenario.Scenario`: every design is then evaluated
  against each member workload (one job per pair, still one batch) and
  scored on the weight-averaged objective vector;
* **constraints** — every evaluated design gets a total violation from
  the run's :class:`~repro.dse.constraints.Constraint` list (worst case
  across scenario members per constraint, summed across constraints);
  the frontier and the genetic selection rank under constrained
  dominance, so infeasible designs never displace feasible ones;
* **budget** — an optional cap on fresh *design* evaluations (each
  design costs one cost-model evaluation per scenario member);
* **convergence** — per-generation stats including the frontier
  hypervolume against a reference point fixed after the first
  evaluations (monotone non-decreasing within a run) and, when a
  *reference frontier* is supplied, the additive epsilon of the current
  feasible frontier against it (monotone non-increasing: how far, in
  objective units, the run still is from covering the reference);
* **checkpointing** — evaluated designs and generation stats persist to
  JSON after every generation (stamped with the workload/scenario,
  objectives, space, constraints and search config so a mismatched
  resume is rejected, not silently mixed) and the frontier is rebuilt
  from them exactly on resume.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..explore.executor import Executor
from ..explore.spec import EvalJob
from ..mapping.cost import resolve_objective
from ..obs import ledger
from .constraints import Constraint
from .metrics import additive_epsilon, reference_point
from .pareto import FrontierEntry, ParetoFrontier
from .partition import workload_segments
from .scenario import Scenario, WeightedWorkload
from .search import SearchStrategy, create_strategy
from .space import DesignPoint, DesignSpace

if TYPE_CHECKING:
    from ..workloads.graph import WorkloadGraph

#: On-disk checkpoint format; bump when the encoding changes.
#: 2: entries carry violations; generation stats and the hypervolume
#: reference are persisted; the stamp covers constraints and scenarios.
#: 3: generation stats carry the epsilon-vs-reference-frontier metric.
#: 4: design points (and the space stamp) may carry explicit
#: stack-partition genes ("partition" / "partitions" keys, present only
#: when used, so pre-partition runs still write byte-compatible bodies).
CHECKPOINT_FORMAT_VERSION = 4

#: Formats :meth:`DSERunner._resume` still reads: v2 and v3 differ from
#: v4 only by optional fields (epsilon, partition genes), so rejecting
#: them would throw away paid-for evaluations for no reason.  One
#: exception, gated in :meth:`DSERunner._resume`: pre-v4 runs whose
#: space caps stacks at >= 2 layers were evaluated under the old
#: fuse-depth rule (over-cap segments exploded per layer; they now
#: split into cap-sized chunks), so those cached values would silently
#: mix two cost models.
READABLE_CHECKPOINT_FORMATS = (2, 3, CHECKPOINT_FORMAT_VERSION)


def load_reference_frontier(path: str | Path) -> ParetoFrontier:
    """Load a reference frontier for epsilon convergence tracking.

    Accepts either a bare frontier file (:meth:`ParetoFrontier.save`)
    or a ``repro dse --output`` summary, whose ``"frontier"`` field is
    the same encoding — so any previous run's output doubles as the
    reference for the next.
    """
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{source}: not a frontier file: {exc}") from exc
    if isinstance(data, dict) and isinstance(data.get("frontier"), dict):
        data = data["frontier"]
    try:
        return ParetoFrontier.from_json(data)
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        raise ValueError(
            f"{source}: not a frontier file (expected a "
            f"ParetoFrontier checkpoint or a 'repro dse --output' "
            f"summary): {exc}"
        ) from exc


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation progress of one DSE run."""

    index: int
    proposed: int
    evaluated: int
    cached: int
    frontier_size: int
    #: Feasible-frontier hypervolume against the run's fixed reference
    #: point (None until any design has been evaluated).
    hypervolume: float | None = None
    #: Additive epsilon of the feasible frontier vs. the run's reference
    #: frontier (None without a reference, or before any feasible design).
    epsilon: float | None = None

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "proposed": self.proposed,
            "evaluated": self.evaluated,
            "cached": self.cached,
            "frontier_size": self.frontier_size,
            "hypervolume": self.hypervolume,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_json(cls, data) -> "GenerationStats":
        return cls(
            index=int(data["index"]),
            proposed=int(data["proposed"]),
            evaluated=int(data["evaluated"]),
            cached=int(data["cached"]),
            frontier_size=int(data["frontier_size"]),
            hypervolume=(
                None
                if data.get("hypervolume") is None
                else float(data["hypervolume"])
            ),
            epsilon=(
                None
                if data.get("epsilon") is None
                else float(data["epsilon"])
            ),
        )


@dataclass
class DSEResult:
    """Outcome of a DSE run."""

    frontier: ParetoFrontier
    evaluations: int
    total_evaluations: int
    generations: list[GenerationStats] = field(default_factory=list)
    evaluated: dict[
        tuple, tuple[DesignPoint, tuple[float, ...], float]
    ] = field(default_factory=dict)
    #: Reference point of the per-generation hypervolume numbers.
    hv_reference: tuple[float, ...] | None = None

    @property
    def infeasible(self) -> list[FrontierEntry]:
        """Every evaluated design violating a constraint, worst last
        (deterministic order: violation, then values, then design key)."""
        entries = [
            FrontierEntry(point=point, values=values, violation=violation)
            for point, values, violation in self.evaluated.values()
            if violation > 0.0
        ]
        return sorted(
            entries, key=lambda e: (e.violation, e.values, e.point.sort_key())
        )

    def describe(self) -> str:
        text = (
            f"{len(self.generations)} generation(s), "
            f"{self.evaluations} evaluation(s) "
            f"({self.total_evaluations} incl. checkpoint), "
            f"frontier size {len(self.frontier)}"
        )
        infeasible = len(self.infeasible)
        if infeasible:
            text += f", {infeasible} infeasible design(s)"
        return text


class DSERunner:
    """Drives one search strategy over a design space for one workload
    or scenario.

    Parameters
    ----------
    space:
        The joint design space to explore.
    workload:
        Zoo name (cheap to ship to workers), a workload object, or a
        :class:`~repro.dse.scenario.Scenario` bundling several weighted
        workloads into one aggregate-objective search.
    objectives:
        Named objectives (see :data:`~repro.mapping.cost.OBJECTIVE_NAMES`),
        all minimized simultaneously; for scenarios each objective is
        the weight-normalized average across member workloads.
    executor:
        Exploration-runtime executor; a private serial one is created
        when omitted.  ``Executor(jobs=N)`` parallelizes every
        generation without changing any result.
    constraints:
        Feasibility filters (:mod:`repro.dse.constraints`); designs with
        a positive total violation are kept out of the frontier whenever
        any feasible design exists, and reported via
        :attr:`DSEResult.infeasible`.
    max_evals:
        Optional cap on fresh design evaluations for the run.
    checkpoint:
        Optional JSON path; loaded (and validated against space,
        workload, objectives and constraints) if it exists, rewritten
        after every generation.
    reference:
        Optional reference frontier (a :class:`ParetoFrontier` tracking
        the same objectives, or raw objective-value rows): each
        generation then also records the additive epsilon of the
        current feasible frontier against it — how far, per objective,
        the run still is from covering the reference set.
    member_segments:
        Optional pre-resolved branch-free segment tables, one per
        scenario member (single workloads count as a one-member
        scenario), for partition-gened spaces — callers that already
        built the tables (the CLI sizes the axis from them) pass them
        here instead of paying the graph construction twice.  Resolved
        automatically when omitted.
    seed:
        Seed of the single rng all strategy randomness flows through.
    """

    def __init__(
        self,
        space: DesignSpace,
        workload: "str | WorkloadGraph | Scenario",
        objectives: Sequence[str] = ("energy",),
        executor: Executor | None = None,
        constraints: Sequence[Constraint] = (),
        max_evals: int | None = None,
        checkpoint: str | Path | None = None,
        reference: "ParetoFrontier | Sequence[Sequence[float]] | None" = None,
        member_segments: (
            "Sequence[tuple[tuple[str, ...], ...]] | None"
        ) = None,
        seed: int = 0,
    ) -> None:
        if max_evals is not None and max_evals < 1:
            raise ValueError(f"max_evals must be >= 1, got {max_evals}")
        self.space = space
        self.workload = workload
        self.objectives = tuple(objectives)
        self._objective_fns = [resolve_objective(name) for name in self.objectives]
        self.executor = executor if executor is not None else Executor()
        self.constraints = tuple(constraints)
        self.max_evals = max_evals
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self._reference_values = self._resolve_reference(reference)
        self.seed = seed
        self._members: tuple[WeightedWorkload, ...] = (
            workload.members
            if isinstance(workload, Scenario)
            else (WeightedWorkload(workload=workload),)
        )
        # Partition genes are segment-relative and workload-specific:
        # resolve each member's branch-free segment table once, so every
        # batch decodes the same genome per workload (a scenario's
        # genome is sized for its largest member; smaller members ignore
        # out-of-range cuts).
        if space.partitions is None:
            self._member_segments = None
        elif member_segments is not None:
            if len(member_segments) != len(self._members):
                raise ValueError(
                    f"{len(member_segments)} segment table(s) for "
                    f"{len(self._members)} scenario member(s)"
                )
            self._member_segments = tuple(member_segments)
        else:
            self._member_segments = (
                workload.segment_tables()
                if isinstance(workload, Scenario)
                else (workload_segments(workload),)
            )

    @property
    def workload_name(self) -> str:
        wl = self.workload
        if isinstance(wl, Scenario):
            return wl.name
        return wl if isinstance(wl, str) else wl.name

    def _resolve_reference(
        self,
        reference: "ParetoFrontier | Sequence[Sequence[float]] | None",
    ) -> "list[tuple[float, ...]] | None":
        """Normalize the reference frontier into objective-value rows
        (feasible entries only for a ParetoFrontier), validating arity."""
        if reference is None:
            return None
        if isinstance(reference, ParetoFrontier):
            if reference.objectives != self.objectives:
                raise ValueError(
                    f"reference frontier tracks {reference.objectives}, "
                    f"this run optimizes {self.objectives}"
                )
            rows = [e.values for e in reference.feasible_entries]
        else:
            rows = [tuple(float(v) for v in row) for row in reference]
        for row in rows:
            if len(row) != len(self.objectives):
                raise ValueError(
                    f"reference row arity {len(row)} != "
                    f"{len(self.objectives)} objectives"
                )
        if not rows:
            raise ValueError("the reference frontier has no feasible entries")
        return rows

    def _frontier_epsilon(self, frontier: ParetoFrontier) -> float | None:
        """Additive epsilon of the current feasible frontier vs. the
        reference (None without a reference or any feasible design)."""
        if self._reference_values is None:
            return None
        values = [e.values for e in frontier.feasible_entries]
        if not values:
            return None
        return additive_epsilon(values, self._reference_values)

    def _workload_token(self):
        """Checkpoint identity of the workload axis: a plain name for a
        single workload, the weighted member list for a scenario."""
        wl = self.workload
        if isinstance(wl, Scenario):
            return wl.token()
        return self.workload_name

    def _checkpoint_stamp(self) -> dict:
        """Everything a checkpoint's cached values depend on: resuming
        under a different stamp would silently mix incomparable
        results, so :meth:`_resume` rejects any mismatch."""
        config = self.executor.search_config
        return {
            "workload": self._workload_token(),
            "objectives": list(self.objectives),
            "space": self.space.to_json(),
            "constraints": [c.token() for c in self.constraints],
            "config": None if config is None else list(config.cache_token()),
        }

    def _member_strategy(self, point: DesignPoint, member_index: int):
        """The DF strategy ``point`` means for one scenario member
        (identical for every member unless the point carries partition
        genes, which decode against the member's segment table)."""
        if point.partition is None or self._member_segments is None:
            return point.strategy()
        return point.strategy(segments=self._member_segments[member_index])

    # ------------------------------------------------------------------
    def _evaluate_fresh(
        self, fresh: Sequence[DesignPoint]
    ) -> list[tuple[tuple[float, ...], float]]:
        """Evaluate a batch of designs (one job per design x scenario
        member), returning per-design (aggregate values, violation).
        Partition genes decode per member: the same segment-relative
        cuts become each workload's own explicit stacks."""
        members = self._members
        jobs = [
            EvalJob(
                accelerator=point.accelerator,
                workload=member.workload,
                strategy=self._member_strategy(point, index),
                tag="dse",
            )
            for point in fresh
            for index, member in enumerate(members)
        ]
        results = self.executor.run(jobs)
        total_weight = sum(m.weight for m in members)
        out: list[tuple[tuple[float, ...], float]] = []
        for i, point in enumerate(fresh):
            chunk = results[i * len(members) : (i + 1) * len(members)]
            values = tuple(
                sum(
                    m.weight * fn(r.result.total)
                    for m, r in zip(members, chunk)
                )
                / total_weight
                for fn in self._objective_fns
            )
            # Feasibility is per member: the chip must run every
            # workload, so each constraint contributes its worst-case
            # violation across the scenario.
            violation = sum(
                max(c.violation(point, r.result) for r in chunk)
                for c in self.constraints
            )
            out.append((values, float(violation)))
        return out

    # ------------------------------------------------------------------
    def run(self, strategy: "SearchStrategy | str") -> DSEResult:
        """Execute the search to completion (or budget exhaustion)."""
        if isinstance(strategy, str):
            strategy = create_strategy(strategy)
        rng = random.Random(self.seed)
        strategy.reset(self.space, rng)

        frontier = ParetoFrontier(self.objectives)
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...], float]] = {}
        with obs.span(
            "dse.run",
            workload=self.workload_name,
            strategy=type(strategy).__name__,
            space=self.space.size,
        ):
            prior_evals, stats, hv_reference = self._resume(frontier, seen)

            evals_run = 0
            while True:
                batch = strategy.propose()
                if not batch:
                    break
                with obs.span("dse.generation", index=len(stats)) as gen_span:
                    unique: list[DesignPoint] = []
                    keys: set[tuple] = set()
                    for point in batch:
                        if point.key() not in keys:
                            keys.add(point.key())
                            unique.append(point)

                    fresh = [p for p in unique if p.key() not in seen]
                    if self.max_evals is not None:
                        allow = max(0, self.max_evals - evals_run)
                        truncated = len(fresh) > allow
                        fresh = fresh[:allow]
                    else:
                        truncated = False

                    if fresh:
                        for point, (values, violation) in zip(
                            fresh, self._evaluate_fresh(fresh)
                        ):
                            seen[point.key()] = (point, values, violation)
                            frontier.offer(point, values, violation)
                        evals_run += len(fresh)

                    evaluated = [seen[p.key()] for p in unique if p.key() in seen]
                    strategy.observe(evaluated)
                    if hv_reference is None and seen:
                        # Fix the reference after the first evaluations;
                        # from here on the per-generation hypervolume is
                        # monotone.
                        hv_reference = reference_point(
                            [values for _, values, _ in seen.values()]
                        )
                    generation = GenerationStats(
                        index=len(stats),
                        proposed=len(batch),
                        evaluated=len(fresh),
                        cached=len(evaluated) - len(fresh),
                        frontier_size=len(frontier),
                        hypervolume=(
                            None
                            if hv_reference is None
                            else frontier.hypervolume(hv_reference)
                        ),
                        epsilon=self._frontier_epsilon(frontier),
                    )
                    stats.append(generation)
                    run_record = ledger.active_run()
                    if run_record is not None:
                        # Streamed per generation so a crashed search
                        # keeps its partial convergence series.
                        run_record.add_convergence(
                            {
                                **generation.to_json(),
                                "evaluations": prior_evals + evals_run,
                            }
                        )
                    gen_span.set(
                        proposed=len(batch),
                        evaluated=len(fresh),
                        cached=generation.cached,
                        frontier_size=len(frontier),
                    )
                    if obs.enabled:
                        self._record_generation(
                            generation, prior_evals + evals_run
                        )
                    with obs.span("dse.checkpoint"):
                        self._save_checkpoint(
                            seen, prior_evals + evals_run, stats, hv_reference
                        )
                if truncated:
                    break

        return DSEResult(
            frontier=frontier,
            evaluations=evals_run,
            total_evaluations=prior_evals + evals_run,
            generations=stats,
            evaluated=seen,
            hv_reference=hv_reference,
        )

    @staticmethod
    def _record_generation(
        generation: GenerationStats, total_evaluations: int
    ) -> None:
        """Publish one generation's convergence state as gauges (latest
        value wins, which is exactly the run's current state)."""
        registry = obs.metrics()
        registry.counter("dse_generations_total").inc()
        registry.gauge("dse_evaluations").set(total_evaluations)
        registry.gauge("dse_frontier_size").set(generation.frontier_size)
        if generation.hypervolume is not None:
            registry.gauge("dse_hypervolume").set(generation.hypervolume)
        if generation.epsilon is not None:
            registry.gauge("dse_epsilon").set(generation.epsilon)

    def _telemetry_summary(self) -> dict:
        """Small run-health snapshot stamped into the checkpoint (only
        while telemetry is on, so disabled-mode checkpoints stay
        byte-compatible with earlier formats)."""
        registry = obs.metrics()

        def total(name: str) -> float:
            return float(
                sum(
                    metric.value
                    for metric in registry
                    if metric.name == name and metric.kind == "counter"
                )
            )

        return {
            "generations": total("dse_generations_total"),
            "orderings_evaluated": total("loma_orderings_evaluated_total"),
            "cache_gets": total("mapping_cache_gets_total"),
            "executor_jobs": total("executor_jobs_total"),
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _resume(
        self,
        frontier: ParetoFrontier,
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...], float]],
    ) -> tuple[int, list[GenerationStats], tuple[float, ...] | None]:
        """Prime frontier and memo from the checkpoint file, if any.
        Returns (evaluations already paid for, prior generation stats,
        the persisted hypervolume reference point)."""
        if self.checkpoint is None or not self.checkpoint.exists():
            return 0, [], None
        try:
            data = json.loads(self.checkpoint.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{self.checkpoint}: not a DSE checkpoint: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"{self.checkpoint}: not a DSE checkpoint (expected an object)"
            )
        if data.get("format") not in READABLE_CHECKPOINT_FORMATS:
            raise ValueError(
                f"{self.checkpoint}: unsupported DSE checkpoint format "
                f"{data.get('format')!r} (expected one of "
                f"{READABLE_CHECKPOINT_FORMATS})"
            )
        if data.get("format") != CHECKPOINT_FORMAT_VERSION and any(
            depth is not None and depth > 1 for depth in self.space.fuse_depths
        ):
            # Depths of None (no cap) and 1 (per-layer) evaluate
            # identically under both rules, so only capped grids are
            # stale.
            raise ValueError(
                f"{self.checkpoint}: format {data.get('format')} "
                "checkpoints predate the fuse-depth chunking rule "
                "(over-cap segments now split into cap-sized chunks "
                "instead of per-layer stacks), so its fuse-capped "
                "evaluations are stale; delete the checkpoint to "
                "re-evaluate"
            )
        for field_name, expected in self._checkpoint_stamp().items():
            if data.get(field_name) != expected:
                raise ValueError(
                    f"{self.checkpoint}: checkpoint {field_name} does not match "
                    f"this run (checkpointed {data.get(field_name)!r})"
                )
        try:
            for raw_point, raw_values, *rest in data.get("evaluated", []):
                point = DesignPoint.from_json(raw_point)
                values = tuple(float(v) for v in raw_values)
                violation = float(rest[0]) if rest else 0.0
                seen[point.key()] = (point, values, violation)
                frontier.offer(point, values, violation)
            stats = [
                GenerationStats.from_json(raw)
                for raw in data.get("generations", [])
            ]
            raw_ref = data.get("hv_reference")
            hv_reference = (
                None if raw_ref is None else tuple(float(v) for v in raw_ref)
            )
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise ValueError(
                f"{self.checkpoint}: malformed DSE checkpoint entry: {exc!r}"
            ) from exc
        return int(data.get("evaluations", len(seen))), stats, hv_reference

    def _save_checkpoint(
        self,
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...], float]],
        evaluations: int,
        stats: Sequence[GenerationStats],
        hv_reference: tuple[float, ...] | None,
    ) -> None:
        if self.checkpoint is None:
            return
        payload = {
            "format": CHECKPOINT_FORMAT_VERSION,
            **self._checkpoint_stamp(),
            "evaluations": evaluations,
            "generations": [s.to_json() for s in stats],
            "hv_reference": (
                None if hv_reference is None else list(hv_reference)
            ),
            # Evaluation order, not sorted: _resume re-offers in this
            # order, reproducing the original frontier tie-breaks.
            "evaluated": [
                [point.to_json(), list(values), violation]
                for point, values, violation in seen.values()
            ],
        }
        if obs.enabled:
            # Run-health snapshot, outside the stamp fields so resume
            # validation never looks at it and telemetry-off runs write
            # byte-identical checkpoints to earlier versions.
            payload["telemetry"] = self._telemetry_summary()
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: an interrupt mid-write must never tear the
        # checkpoint the next run resumes from.
        scratch = self.checkpoint.with_suffix(self.checkpoint.suffix + ".tmp")
        scratch.write_text(json.dumps(payload))
        os.replace(scratch, self.checkpoint)
