"""The DSE driver: generations of candidate designs, evaluated in
batches through the exploration runtime, folded into a Pareto frontier.

The runner owns the loop glue that every search strategy shares:

* **dedup** — a design evaluated once (this run or in a resumed
  checkpoint) is never re-dispatched; repeats are served from the
  run-level memo at zero cost (on top of the mapping-level
  :class:`~repro.mapping.cache.MappingCache` reuse inside the executor);
* **batching** — each generation becomes one
  :class:`~repro.explore.spec.EvalJob` list run by an
  :class:`~repro.explore.executor.Executor`, so ``jobs=N`` process
  parallelism applies to any strategy for free, with results identical
  to a serial run;
* **budget** — an optional cap on fresh cost-model evaluations;
* **checkpointing** — evaluated designs persist to JSON after every
  generation (stamped with the workload, objectives, space and search
  config so a mismatched resume is rejected, not silently mixed) and
  the frontier is rebuilt from them exactly on resume.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..explore.executor import Executor
from ..explore.spec import EvalJob
from ..mapping.cost import resolve_objective
from .pareto import ParetoFrontier
from .search import SearchStrategy, create_strategy
from .space import DesignPoint, DesignSpace

if TYPE_CHECKING:
    from ..workloads.graph import WorkloadGraph

#: On-disk checkpoint format; bump when the encoding changes.
CHECKPOINT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation progress of one DSE run."""

    index: int
    proposed: int
    evaluated: int
    cached: int
    frontier_size: int


@dataclass
class DSEResult:
    """Outcome of a DSE run."""

    frontier: ParetoFrontier
    evaluations: int
    total_evaluations: int
    generations: list[GenerationStats] = field(default_factory=list)
    evaluated: dict[tuple, tuple[DesignPoint, tuple[float, ...]]] = field(
        default_factory=dict
    )

    def describe(self) -> str:
        return (
            f"{len(self.generations)} generation(s), "
            f"{self.evaluations} evaluation(s) "
            f"({self.total_evaluations} incl. checkpoint), "
            f"frontier size {len(self.frontier)}"
        )


class DSERunner:
    """Drives one search strategy over a design space for one workload.

    Parameters
    ----------
    space:
        The joint design space to explore.
    workload:
        Zoo name (cheap to ship to workers) or a workload object.
    objectives:
        Named objectives (see :data:`~repro.mapping.cost.OBJECTIVE_NAMES`),
        all minimized simultaneously.
    executor:
        Exploration-runtime executor; a private serial one is created
        when omitted.  ``Executor(jobs=N)`` parallelizes every
        generation without changing any result.
    max_evals:
        Optional cap on fresh cost-model evaluations for the run.
    checkpoint:
        Optional JSON path; loaded (and validated against space,
        workload and objectives) if it exists, rewritten after every
        generation.
    seed:
        Seed of the single rng all strategy randomness flows through.
    """

    def __init__(
        self,
        space: DesignSpace,
        workload: "str | WorkloadGraph",
        objectives: Sequence[str] = ("energy",),
        executor: Executor | None = None,
        max_evals: int | None = None,
        checkpoint: str | Path | None = None,
        seed: int = 0,
    ) -> None:
        if max_evals is not None and max_evals < 1:
            raise ValueError(f"max_evals must be >= 1, got {max_evals}")
        self.space = space
        self.workload = workload
        self.objectives = tuple(objectives)
        self._objective_fns = [resolve_objective(name) for name in self.objectives]
        self.executor = executor if executor is not None else Executor()
        self.max_evals = max_evals
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.seed = seed

    @property
    def workload_name(self) -> str:
        wl = self.workload
        return wl if isinstance(wl, str) else wl.name

    def _checkpoint_stamp(self) -> dict:
        """Everything a checkpoint's cached values depend on: resuming
        under a different stamp would silently mix incomparable
        results, so :meth:`_resume` rejects any mismatch."""
        config = self.executor.search_config
        return {
            "workload": self.workload_name,
            "objectives": list(self.objectives),
            "space": self.space.to_json(),
            "config": None if config is None else list(config.cache_token()),
        }

    # ------------------------------------------------------------------
    def run(self, strategy: "SearchStrategy | str") -> DSEResult:
        """Execute the search to completion (or budget exhaustion)."""
        if isinstance(strategy, str):
            strategy = create_strategy(strategy)
        rng = random.Random(self.seed)
        strategy.reset(self.space, rng)

        frontier = ParetoFrontier(self.objectives)
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...]]] = {}
        prior_evals = self._resume(frontier, seen)

        stats: list[GenerationStats] = []
        evals_run = 0
        while True:
            batch = strategy.propose()
            if not batch:
                break
            unique: list[DesignPoint] = []
            keys: set[tuple] = set()
            for point in batch:
                if point.key() not in keys:
                    keys.add(point.key())
                    unique.append(point)

            fresh = [p for p in unique if p.key() not in seen]
            if self.max_evals is not None:
                allow = max(0, self.max_evals - evals_run)
                truncated = len(fresh) > allow
                fresh = fresh[:allow]
            else:
                truncated = False

            if fresh:
                jobs = [
                    EvalJob(
                        accelerator=p.accelerator,
                        workload=self.workload,
                        strategy=p.strategy(),
                        tag="dse",
                    )
                    for p in fresh
                ]
                for point, result in zip(fresh, self.executor.run(jobs)):
                    values = tuple(
                        fn(result.result.total) for fn in self._objective_fns
                    )
                    seen[point.key()] = (point, values)
                    frontier.offer(point, values)
                evals_run += len(fresh)

            evaluated = [seen[p.key()] for p in unique if p.key() in seen]
            strategy.observe(evaluated)
            stats.append(
                GenerationStats(
                    index=len(stats),
                    proposed=len(batch),
                    evaluated=len(fresh),
                    cached=len(evaluated) - len(fresh),
                    frontier_size=len(frontier),
                )
            )
            self._save_checkpoint(seen, prior_evals + evals_run)
            if truncated:
                break

        return DSEResult(
            frontier=frontier,
            evaluations=evals_run,
            total_evaluations=prior_evals + evals_run,
            generations=stats,
            evaluated=seen,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _resume(
        self,
        frontier: ParetoFrontier,
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...]]],
    ) -> int:
        """Prime frontier and memo from the checkpoint file, if any.
        Returns the number of evaluations already paid for."""
        if self.checkpoint is None or not self.checkpoint.exists():
            return 0
        try:
            data = json.loads(self.checkpoint.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{self.checkpoint}: not a DSE checkpoint: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"{self.checkpoint}: not a DSE checkpoint (expected an object)"
            )
        if data.get("format") != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"{self.checkpoint}: unsupported DSE checkpoint format "
                f"{data.get('format')!r} (expected {CHECKPOINT_FORMAT_VERSION})"
            )
        for field_name, expected in self._checkpoint_stamp().items():
            if data.get(field_name) != expected:
                raise ValueError(
                    f"{self.checkpoint}: checkpoint {field_name} does not match "
                    f"this run (checkpointed {data.get(field_name)!r})"
                )
        try:
            for raw_point, raw_values in data.get("evaluated", []):
                point = DesignPoint.from_json(raw_point)
                values = tuple(float(v) for v in raw_values)
                seen[point.key()] = (point, values)
                frontier.offer(point, values)
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise ValueError(
                f"{self.checkpoint}: malformed DSE checkpoint entry: {exc!r}"
            ) from exc
        return int(data.get("evaluations", len(seen)))

    def _save_checkpoint(
        self,
        seen: dict[tuple, tuple[DesignPoint, tuple[float, ...]]],
        evaluations: int,
    ) -> None:
        if self.checkpoint is None:
            return
        payload = {
            "format": CHECKPOINT_FORMAT_VERSION,
            **self._checkpoint_stamp(),
            "evaluations": evaluations,
            # Evaluation order, not sorted: _resume re-offers in this
            # order, reproducing the original frontier tie-breaks.
            "evaluated": [
                [point.to_json(), list(values)]
                for point, values in seen.values()
            ],
        }
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: an interrupt mid-write must never tear the
        # checkpoint the next run resumes from.
        scratch = self.checkpoint.with_suffix(self.checkpoint.suffix + ".tmp")
        scratch.write_text(json.dumps(payload))
        os.replace(scratch, self.checkpoint)
