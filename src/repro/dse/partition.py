"""Explicit stack-partition genes: the paper's third design axis as a
searchable encoding.

DeFiNES' axis 3 is the *stack partition* itself, not just the scalar
``fuse_depth`` cap the earlier DSE searched.  This module encodes a
partition as **cut positions over the workload's branch-free segments**
(:func:`~repro.core.stacks.branch_free_segments`): segments stay
atomic, so *every* genome decodes to a valid, schedule-order-contiguous
:attr:`~repro.core.strategy.DFStrategy.stacks` partition by
construction — no infeasible genomes to repair away.

Cut position ``c`` (``1 <= c <= segments - 1``) places a stack boundary
before segment ``c``; the empty cut tuple ``()`` fuses the whole
network into one stack, and the distinguished value ``None`` selects
the automatic weights-fit rule (so the searched space strictly contains
the classic ``fuse_depths=(None,)`` space).

Partitions are **workload-specific** — different networks have
different segment tables — so the genome stores *segment-relative* cuts
and decoding happens per workload (:func:`decode_cuts`): a scenario's
genome is sized for its largest member and cuts beyond a smaller
member's segment count are ignored for that member.

:class:`PartitionAxis` is the design space's first *variable-length*
axis: in its full form the genome grows one binary gene per candidate
cut position (crossover then recombines partitions cut-by-cut); with an
explicit ``candidates`` list it degenerates to a plain grid axis like
the ``fuse_depths`` tuple it generalizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping

from ..core.stacks import branch_free_segments

if TYPE_CHECKING:
    from ..workloads.graph import WorkloadGraph

#: One partition value: cut positions (sorted, unique), or None for the
#: automatic weights-fit rule.
PartitionValue = "tuple[int, ...] | None"


def partition_label(partition: "tuple[int, ...] | None") -> str:
    """The one shared rendering of a partition value: empty for the
    automatic weights-fit rule, ``all`` for the cut-free partition
    (every segment fused into one stack), else pipe-separated cut
    positions (``1|3``).  Report tables and CSV cells both use it."""
    if partition is None:
        return ""
    if not partition:
        return "all"
    return "|".join(str(cut) for cut in partition)


def workload_segments(
    workload: "str | WorkloadGraph",
) -> tuple[tuple[str, ...], ...]:
    """The branch-free segment table of a workload: layer names per
    segment, in schedule order.  Accepts a zoo name or a graph object
    (the same references :class:`~repro.explore.spec.EvalJob` ships)."""
    if isinstance(workload, str):
        from ..workloads.zoo import get_workload

        workload = get_workload(workload)
    return tuple(
        tuple(layer.name for layer in segment)
        for segment in branch_free_segments(workload)
    )


def decode_cuts(
    cuts: tuple[int, ...],
    segments: tuple[tuple[str, ...], ...],
) -> tuple[tuple[str, ...], ...]:
    """Decode segment-relative cut positions into explicit stacks for
    one workload.

    Cut ``c`` opens a new stack before segment ``c``; cuts at or beyond
    the workload's segment count are ignored (the genome is sized for
    the scenario's largest member, smaller members simply have fewer
    cut points).  The result is always a valid ``DFStrategy.stacks``
    partition: schedule-order contiguous, every layer exactly once.
    """
    count = len(segments)
    boundaries = [0] + [c for c in cuts if 1 <= c < count] + [count]
    return tuple(
        tuple(name for segment in segments[lo:hi] for name in segment)
        for lo, hi in zip(boundaries, boundaries[1:])
    )


def validate_cuts(cuts: tuple[int, ...], segments: int) -> tuple[int, ...]:
    """Validate one cut tuple against a segment count: integer cut
    positions, strictly increasing, within ``1..segments - 1``."""
    cuts = tuple(int(c) for c in cuts)
    if list(cuts) != sorted(set(cuts)):
        raise ValueError(
            f"cut positions must be strictly increasing, got {cuts}"
        )
    if cuts and (cuts[0] < 1 or cuts[-1] > segments - 1):
        raise ValueError(
            f"cut positions must be within 1..{segments - 1} "
            f"(between {segments} branch-free segments), got {cuts}"
        )
    return cuts


@dataclass(frozen=True)
class PartitionAxis:
    """The stack-partition axis of a :class:`~repro.dse.space.DesignSpace`.

    Parameters
    ----------
    segments:
        Number of branch-free segments the genome is sized for (the
        maximum across a scenario's members; see
        :func:`workload_segments`).
    include_auto:
        Whether the automatic weights-fit rule (``None``) is also a
        candidate (default), so the searched space strictly contains
        the classic automatic-partition space.  Ignored when
        ``candidates`` is given.
    candidates:
        Optional explicit candidate list (cut tuples, ``None`` for
        auto): the axis then degenerates to a plain grid — one index
        gene, like the ``fuse_depths`` tuple — instead of the full
        ``2^(segments-1)`` cut-subset space with one binary gene per
        cut position.
    """

    segments: int
    include_auto: bool = True
    candidates: "tuple[tuple[int, ...] | None, ...] | None" = None

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError(
                f"a partition axis needs >= 1 segment, got {self.segments}"
            )
        if self.candidates is not None:
            if not self.candidates:
                raise ValueError("the candidates list is empty")
            normalized = []
            seen = set()
            for candidate in self.candidates:
                if candidate is not None:
                    candidate = validate_cuts(candidate, self.segments)
                if candidate in seen:
                    raise ValueError(
                        f"duplicate partition candidate {candidate!r}"
                    )
                seen.add(candidate)
                normalized.append(candidate)
            object.__setattr__(self, "candidates", tuple(normalized))

    # ------------------------------------------------------------------
    # Value enumeration (shared with DesignSpace.point_at/enumerate)
    # ------------------------------------------------------------------
    @property
    def _auto_offset(self) -> int:
        return 1 if self.include_auto else 0

    @property
    def size(self) -> int:
        """Number of candidate partitions on this axis."""
        if self.candidates is not None:
            return len(self.candidates)
        return self._auto_offset + (1 << (self.segments - 1))

    def value_at(self, index: int) -> "PartitionValue":
        """The ``index``-th partition in deterministic order: the
        candidates list, or (auto first, then) bitmask order over the
        cut positions."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        if self.candidates is not None:
            return self.candidates[index]
        if self.include_auto and index == 0:
            return None
        mask = index - self._auto_offset
        return tuple(
            bit + 1 for bit in range(self.segments - 1) if mask >> bit & 1
        )

    def index_of(self, value: "PartitionValue") -> int:
        """Inverse of :meth:`value_at`; ``ValueError`` if outside."""
        if self.candidates is not None:
            try:
                return self.candidates.index(value)
            except ValueError:
                raise ValueError(
                    f"partition {value!r} is not a candidate of this axis"
                ) from None
        if value is None:
            if not self.include_auto:
                raise ValueError(
                    "the automatic partition is not on this axis "
                    "(include_auto=False)"
                )
            return 0
        cuts = validate_cuts(value, self.segments)
        return self._auto_offset + sum(1 << (c - 1) for c in cuts)

    def contains(self, value: "PartitionValue") -> bool:
        try:
            self.index_of(value)
        except ValueError:
            return False
        return True

    def values(self) -> "Iterator[PartitionValue]":
        for index in range(self.size):
            yield self.value_at(index)

    # ------------------------------------------------------------------
    # Gene plumbing (the variable-length part of the genome)
    # ------------------------------------------------------------------
    def gene_cardinalities(self) -> tuple[int, ...]:
        """Per-slot cardinality of this axis' genes: one index gene in
        candidates mode, else one binary auto gene (when included) plus
        one binary gene per cut position."""
        if self.candidates is not None:
            return (len(self.candidates),)
        return (2,) * (self._auto_offset + self.segments - 1)

    def encode(self, value: "PartitionValue") -> tuple[int, ...]:
        """The gene slots of one partition value."""
        if self.candidates is not None:
            return (self.index_of(value),)
        if value is None:
            self.index_of(value)  # raises when auto is excluded
            return (1,) + (0,) * (self.segments - 1)
        cuts = set(validate_cuts(value, self.segments))
        bits = tuple(
            1 if bit + 1 in cuts else 0 for bit in range(self.segments - 1)
        )
        return ((0,) if self.include_auto else ()) + bits

    def decode(self, genes: tuple[int, ...]) -> "PartitionValue":
        """Inverse of :meth:`encode` (length-checked)."""
        expected = len(self.gene_cardinalities())
        if len(genes) != expected:
            raise ValueError(
                f"expected {expected} partition gene(s), got {len(genes)}"
            )
        if self.candidates is not None:
            return self.candidates[genes[0]]
        if self.include_auto:
            auto, bits = genes[0], genes[1:]
            if auto:
                return None
        else:
            bits = genes
        return tuple(bit + 1 for bit, flag in enumerate(bits) if flag)

    def mutate_slot(self, slot: int, value: int, rng: random.Random) -> int:
        """Partition-aware mutation: cut/auto genes *flip* (a fresh
        uniform draw would leave them unchanged half the time); a
        candidates-mode index gene redraws uniformly like any grid
        axis."""
        if self.candidates is not None:
            return rng.randrange(len(self.candidates))
        return 1 - value

    def repair(self, genes: tuple[int, ...]) -> tuple[int, ...]:
        """Canonicalize a genome tail after crossover/mutation: when
        the auto gene is set, the cut genes are dormant — zero them so
        equivalent genomes share one canonical form.  (Validity never
        needs repair: every bit pattern decodes to a legal partition.)"""
        if self.candidates is None and self.include_auto and genes[0]:
            return (1,) + (0,) * (self.segments - 1)
        return tuple(genes)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        if self.candidates is not None:
            return (
                f"{len(self.candidates)} explicit partition(s) over "
                f"{self.segments} branch-free segments"
            )
        return (
            f"all partitions over {self.segments} branch-free segments "
            f"({self.size} incl. auto)" if self.include_auto else
            f"all partitions over {self.segments} branch-free segments "
            f"({self.size})"
        )

    def to_json(self) -> dict:
        return {
            "segments": self.segments,
            "include_auto": self.include_auto,
            "candidates": (
                None
                if self.candidates is None
                else [
                    None if c is None else list(c) for c in self.candidates
                ]
            ),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "PartitionAxis":
        raw = data.get("candidates")
        return cls(
            segments=int(data["segments"]),
            include_auto=bool(data.get("include_auto", True)),
            candidates=(
                None
                if raw is None
                else tuple(
                    None if c is None else tuple(int(v) for v in c)
                    for c in raw
                )
            ),
        )
