"""The joint design space of the multi-objective DSE subsystem.

A :class:`DesignPoint` is one coordinate in the joint space of the
paper's three scheduling axes — tile size (axis 1), overlap storing mode
(axis 2) and fuse depth / stack partition (axis 3) — crossed with the
hardware axis of case study 3 (which accelerator runs the workload).

A :class:`DesignSpace` declares the candidate values per axis.  It is
the single source of truth for

* **enumeration** — grid order reuses the classic sweep enumeration
  (:func:`~repro.core.optimizer.grid_strategies`), so an exhaustive DSE
  visits exactly the points of the paper's case-study sweeps;
* **genes** — every point maps to a tuple of per-axis indices, the
  representation the genetic searcher crosses over and mutates;
* **sampling** — :meth:`DesignSpace.point_at` turns linear indices into
  points so searchers draw without replacement
  (``rng.sample(range(space.size), k)``); :meth:`DesignSpace.sample` is
  the with-replacement single draw.

Accelerators are referenced by zoo name so points stay cheap to ship to
worker processes and round-trip through JSON checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..core.strategy import DFStrategy, OverlapMode


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: an accelerator plus a DF strategy choice."""

    accelerator: str
    tile_x: int
    tile_y: int
    mode: OverlapMode
    fuse_depth: int | None = None

    def strategy(self) -> DFStrategy:
        """The DF strategy this point evaluates."""
        return DFStrategy(
            tile_x=self.tile_x,
            tile_y=self.tile_y,
            mode=self.mode,
            fuse_depth=self.fuse_depth,
        )

    def key(self) -> tuple:
        """Hashable identity for dedup and checkpoint lookups."""
        return (
            self.accelerator,
            self.tile_x,
            self.tile_y,
            self.mode.value,
            self.fuse_depth,
        )

    def sort_key(self) -> tuple:
        """Totally ordered variant of :meth:`key` (``fuse_depth=None``
        mixes with ints, which plain tuple comparison cannot order)."""
        return (
            self.accelerator,
            self.tile_x,
            self.tile_y,
            self.mode.value,
            self.fuse_depth is not None,
            self.fuse_depth or 0,
        )

    def describe(self) -> str:
        base = f"{self.accelerator} {self.mode.value} {self.tile_x}x{self.tile_y}"
        if self.fuse_depth is not None:
            base += f" fuse<={self.fuse_depth}"
        return base

    def to_json(self) -> dict:
        return {
            "accelerator": self.accelerator,
            "tile_x": self.tile_x,
            "tile_y": self.tile_y,
            "mode": self.mode.value,
            "fuse_depth": self.fuse_depth,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "DesignPoint":
        return cls(
            accelerator=data["accelerator"],
            tile_x=int(data["tile_x"]),
            tile_y=int(data["tile_y"]),
            mode=OverlapMode(data["mode"]),
            fuse_depth=(
                None if data.get("fuse_depth") is None else int(data["fuse_depth"])
            ),
        )


@dataclass(frozen=True)
class DesignSpace:
    """Candidate values per axis of the joint design space.

    Axis order — accelerators, tile_x, tile_y, modes, fuse_depths — is
    also the gene order of the genetic searcher.  ``fuse_depths`` may
    contain ``None``, the automatic weights-fit stack partition.
    """

    accelerators: tuple[str, ...]
    tile_x: tuple[int, ...]
    tile_y: tuple[int, ...]
    modes: tuple[OverlapMode, ...] = tuple(OverlapMode)
    fuse_depths: tuple[int | None, ...] = (None,)

    def __post_init__(self) -> None:
        for label, axis in self.axes().items():
            if not axis:
                raise ValueError(f"design-space axis {label!r} is empty")
            if len(set(axis)) != len(axis):
                raise ValueError(f"design-space axis {label!r} has duplicates")

    # ------------------------------------------------------------------
    def axes(self) -> dict[str, tuple]:
        """The axes in gene order, keyed by name."""
        return {
            "accelerators": self.accelerators,
            "tile_x": self.tile_x,
            "tile_y": self.tile_y,
            "modes": self.modes,
            "fuse_depths": self.fuse_depths,
        }

    @property
    def size(self) -> int:
        """Number of distinct design points."""
        total = 1
        for axis in self.axes().values():
            total *= len(axis)
        return total

    def __len__(self) -> int:
        return self.size

    def __contains__(self, point: DesignPoint) -> bool:
        return (
            point.accelerator in self.accelerators
            and point.tile_x in self.tile_x
            and point.tile_y in self.tile_y
            and point.mode in self.modes
            and point.fuse_depth in self.fuse_depths
        )

    # ------------------------------------------------------------------
    # Genes <-> points
    # ------------------------------------------------------------------
    def point(self, genes: Sequence[int]) -> DesignPoint:
        """The design point at per-axis indices ``genes``."""
        accel_i, tx_i, ty_i, mode_i, fuse_i = genes
        return DesignPoint(
            accelerator=self.accelerators[accel_i],
            tile_x=self.tile_x[tx_i],
            tile_y=self.tile_y[ty_i],
            mode=self.modes[mode_i],
            fuse_depth=self.fuse_depths[fuse_i],
        )

    def genes(self, point: DesignPoint) -> tuple[int, ...]:
        """Inverse of :meth:`point`; raises ``ValueError`` if outside."""
        return (
            self.accelerators.index(point.accelerator),
            self.tile_x.index(point.tile_x),
            self.tile_y.index(point.tile_y),
            self.modes.index(point.mode),
            self.fuse_depths.index(point.fuse_depth),
        )

    def point_at(self, index: int) -> DesignPoint:
        """The ``index``-th point of :meth:`enumerate` (for sampling
        without replacement over linear indices)."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        # Linear order matches enumerate(): accelerator-major, then fuse
        # depth, then the classic mode-major tile grid.
        tiles = len(self.tile_x) * len(self.tile_y)
        per_fuse = len(self.modes) * tiles
        per_accel = len(self.fuse_depths) * per_fuse
        accel_i, rest = divmod(index, per_accel)
        fuse_i, rest = divmod(rest, per_fuse)
        mode_i, rest = divmod(rest, tiles)
        tx_i, ty_i = divmod(rest, len(self.tile_y))
        return self.point((accel_i, tx_i, ty_i, mode_i, fuse_i))

    # ------------------------------------------------------------------
    def enumerate(self) -> Iterator[DesignPoint]:
        """Every point in deterministic grid order: accelerator-major,
        then fuse depth, then the classic sweep (mode-major) tile order
        shared with :func:`~repro.core.optimizer.grid_strategies`."""
        from ..core.optimizer import grid_strategies

        tiles = tuple((tx, ty) for tx in self.tile_x for ty in self.tile_y)
        for accelerator in self.accelerators:
            for fuse_depth in self.fuse_depths:
                for strategy in grid_strategies(tiles, self.modes, fuse_depth):
                    yield DesignPoint(
                        accelerator=accelerator,
                        tile_x=strategy.tile_x,
                        tile_y=strategy.tile_y,
                        mode=strategy.mode,
                        fuse_depth=strategy.fuse_depth,
                    )

    def sample(self, rng) -> DesignPoint:
        """One uniform draw (deterministic given the ``rng`` state)."""
        return self.point(
            tuple(rng.randrange(len(axis)) for axis in self.axes().values())
        )

    def sample_points(self, rng, count: int) -> list[DesignPoint]:
        """``count`` uniform draws *without replacement* (capped at the
        space size), deterministic given the ``rng`` state.  The shared
        seeding path of the random and genetic searchers."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        indices = rng.sample(range(self.size), min(count, self.size))
        return [self.point_at(i) for i in indices]

    # ------------------------------------------------------------------
    @classmethod
    def paper_grid(
        cls,
        accelerators: Sequence[str] = ("meta_proto_like_df",),
        fuse_depths: Sequence[int | None] = (None,),
    ) -> "DesignSpace":
        """The paper's Fig. 12 tile grid and all three modes, as a
        design space (the degenerate CS1/CS2 configuration)."""
        from ..core.optimizer import ALL_MODES, PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y

        return cls(
            accelerators=tuple(accelerators),
            tile_x=PAPER_TILE_GRID_X,
            tile_y=PAPER_TILE_GRID_Y,
            modes=ALL_MODES,
            fuse_depths=tuple(fuse_depths),
        )

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "accelerators": list(self.accelerators),
            "tile_x": list(self.tile_x),
            "tile_y": list(self.tile_y),
            "modes": [m.value for m in self.modes],
            "fuse_depths": list(self.fuse_depths),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "DesignSpace":
        return cls(
            accelerators=tuple(data["accelerators"]),
            tile_x=tuple(int(v) for v in data["tile_x"]),
            tile_y=tuple(int(v) for v in data["tile_y"]),
            modes=tuple(OverlapMode(m) for m in data["modes"]),
            fuse_depths=tuple(
                None if v is None else int(v) for v in data["fuse_depths"]
            ),
        )
