"""The joint design space of the multi-objective DSE subsystem.

A :class:`DesignPoint` is one coordinate in the joint space of the
paper's three scheduling axes — tile size (axis 1), overlap storing mode
(axis 2) and the stack partition (axis 3, as a ``fuse_depth`` cap or an
explicit segment-relative partition) — crossed with the hardware axis of
case study 3 (which accelerator runs the workload).

A :class:`DesignSpace` declares the candidate values per axis.  It is
the single source of truth for

* **enumeration** — grid order reuses the classic sweep enumeration
  (:func:`~repro.core.optimizer.grid_strategies`), so an exhaustive DSE
  visits exactly the points of the paper's case-study sweeps;
* **genes** — every point maps to a tuple of genes, the representation
  the genetic searcher crosses over and mutates.  Four index genes
  cover the accelerator/tile/mode axes; the *stack axis* contributes
  the rest: one index gene for a ``fuse_depths`` grid (the degenerate,
  fixed-length special case) or a variable-length run of binary cut
  genes for a :class:`~repro.dse.partition.PartitionAxis`;
* **sampling** — :meth:`DesignSpace.point_at` turns linear indices into
  points so searchers draw without replacement
  (``rng.sample(range(space.size), k)``); :meth:`DesignSpace.sample` is
  the with-replacement single draw.

Accelerators are referenced by zoo name so points stay cheap to ship to
worker processes and round-trip through JSON checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..core.strategy import DFStrategy, OverlapMode
from .partition import PartitionAxis, decode_cuts, partition_label


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: an accelerator plus a DF strategy choice.

    The stack-partition axis appears as exactly one of ``fuse_depth``
    (the scalar cap on the automatic weights-fit rule) or ``partition``
    (segment-relative cut positions; ``()`` fuses everything, ``None``
    on both fields is the plain automatic rule).
    """

    accelerator: str
    tile_x: int
    tile_y: int
    mode: OverlapMode
    fuse_depth: int | None = None
    partition: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.fuse_depth is not None and self.partition is not None:
            raise ValueError(
                "give either a fuse_depth cap or an explicit partition, "
                "not both"
            )
        if self.partition is not None:
            object.__setattr__(
                self, "partition", tuple(int(c) for c in self.partition)
            )
            if list(self.partition) != sorted(set(self.partition)) or (
                self.partition and self.partition[0] < 1
            ):
                raise ValueError(
                    "partition cuts must be strictly increasing positions "
                    f">= 1, got {self.partition}"
                )

    def strategy(
        self, segments: "tuple[tuple[str, ...], ...] | None" = None
    ) -> DFStrategy:
        """The DF strategy this point evaluates.

        Partitioned points are workload-specific: ``segments`` (the
        workload's branch-free segment table, see
        :func:`~repro.dse.partition.workload_segments`) is required to
        decode the segment-relative cuts into explicit stacks.
        """
        if self.partition is not None:
            if segments is None:
                raise ValueError(
                    "a partitioned design point needs the workload's "
                    "branch-free segment table to decode its stacks"
                )
            return DFStrategy(
                tile_x=self.tile_x,
                tile_y=self.tile_y,
                mode=self.mode,
                stacks=decode_cuts(self.partition, segments),
            )
        return DFStrategy(
            tile_x=self.tile_x,
            tile_y=self.tile_y,
            mode=self.mode,
            fuse_depth=self.fuse_depth,
        )

    def key(self) -> tuple:
        """Hashable identity for dedup and checkpoint lookups."""
        return (
            self.accelerator,
            self.tile_x,
            self.tile_y,
            self.mode.value,
            self.fuse_depth,
            self.partition,
        )

    def sort_key(self) -> tuple:
        """Totally ordered variant of :meth:`key` (``fuse_depth=None``
        mixes with ints and ``partition=None`` with tuples, which plain
        tuple comparison cannot order)."""
        return (
            self.accelerator,
            self.tile_x,
            self.tile_y,
            self.mode.value,
            self.fuse_depth is not None,
            self.fuse_depth or 0,
            self.partition is not None,
            self.partition or (),
        )

    def describe(self) -> str:
        base = f"{self.accelerator} {self.mode.value} {self.tile_x}x{self.tile_y}"
        if self.fuse_depth is not None:
            base += f" fuse<={self.fuse_depth}"
        if self.partition is not None:
            base += f" cuts=[{partition_label(self.partition)}]"
        return base

    def to_json(self) -> dict:
        data = {
            "accelerator": self.accelerator,
            "tile_x": self.tile_x,
            "tile_y": self.tile_y,
            "mode": self.mode.value,
            "fuse_depth": self.fuse_depth,
        }
        # Only partitioned points carry the key, so pre-partition
        # encodings (checkpoint formats <= 3) stay byte-compatible.
        if self.partition is not None:
            data["partition"] = list(self.partition)
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "DesignPoint":
        raw_partition = data.get("partition")
        return cls(
            accelerator=data["accelerator"],
            tile_x=int(data["tile_x"]),
            tile_y=int(data["tile_y"]),
            mode=OverlapMode(data["mode"]),
            fuse_depth=(
                None if data.get("fuse_depth") is None else int(data["fuse_depth"])
            ),
            partition=(
                None
                if raw_partition is None
                else tuple(int(c) for c in raw_partition)
            ),
        )


class _FuseDepthAxis:
    """The classic ``fuse_depths`` grid through the stack-axis
    interface: the degenerate, fixed-length special case of the
    variable-length partition axis (one index gene)."""

    def __init__(self, depths: tuple) -> None:
        self.depths = depths

    @property
    def size(self) -> int:
        return len(self.depths)

    def value_at(self, index: int):
        return self.depths[index]

    def gene_cardinalities(self) -> tuple[int, ...]:
        return (len(self.depths),)

    def encode(self, value) -> tuple[int, ...]:
        return (self.depths.index(value),)

    def decode(self, genes: tuple[int, ...]):
        if len(genes) != 1:
            raise ValueError(f"expected 1 fuse-depth gene, got {len(genes)}")
        return self.depths[genes[0]]

    def mutate_slot(self, slot: int, value: int, rng) -> int:
        return rng.randrange(len(self.depths))

    def repair(self, genes: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(genes)


@dataclass(frozen=True)
class DesignSpace:
    """Candidate values per axis of the joint design space.

    Axis order — accelerators, tile_x, tile_y, modes, then the stack
    axis — is also the gene order of the genetic searcher.  The stack
    axis is either the ``fuse_depths`` grid (which may contain ``None``,
    the automatic weights-fit stack partition) or, when ``partitions``
    is given, a :class:`~repro.dse.partition.PartitionAxis` of explicit
    segment-relative stack partitions (``fuse_depths`` must then stay at
    its ``(None,)`` default — the partition axis replaces it).
    """

    accelerators: tuple[str, ...]
    tile_x: tuple[int, ...]
    tile_y: tuple[int, ...]
    modes: tuple[OverlapMode, ...] = tuple(OverlapMode)
    fuse_depths: tuple[int | None, ...] = (None,)
    partitions: PartitionAxis | None = None

    def __post_init__(self) -> None:
        for label, axis in self.axes().items():
            if not axis:
                raise ValueError(f"design-space axis {label!r} is empty")
            if len(set(axis)) != len(axis):
                raise ValueError(f"design-space axis {label!r} has duplicates")
        if self.partitions is not None and tuple(self.fuse_depths) != (None,):
            raise ValueError(
                "give either explicit partition genes or a fuse-depth "
                "grid, not both (the partition axis replaces fuse_depths)"
            )

    # ------------------------------------------------------------------
    def axes(self) -> dict[str, tuple]:
        """The fixed-cardinality grid axes in gene order, keyed by name.
        The stack axis joins them as the ``fuse_depths`` grid only in
        its degenerate form; a partition axis is reached through
        :attr:`stack_axis` instead (its full value set is exponential
        in the segment count and never materialized)."""
        axes = {
            "accelerators": self.accelerators,
            "tile_x": self.tile_x,
            "tile_y": self.tile_y,
            "modes": self.modes,
        }
        if self.partitions is None:
            axes["fuse_depths"] = self.fuse_depths
        return axes

    @property
    def stack_axis(self):
        """The axis-3 handle: the partition axis, or the fuse-depth
        grid wrapped in the same interface."""
        return (
            self.partitions
            if self.partitions is not None
            else _FuseDepthAxis(self.fuse_depths)
        )

    @property
    def size(self) -> int:
        """Number of distinct design points."""
        return (
            len(self.accelerators)
            * len(self.tile_x)
            * len(self.tile_y)
            * len(self.modes)
            * self.stack_axis.size
        )

    def __len__(self) -> int:
        return self.size

    def __contains__(self, point: DesignPoint) -> bool:
        if self.partitions is not None:
            stack_ok = point.fuse_depth is None and self.partitions.contains(
                point.partition
            )
        else:
            stack_ok = point.partition is None and (
                point.fuse_depth in self.fuse_depths
            )
        return (
            point.accelerator in self.accelerators
            and point.tile_x in self.tile_x
            and point.tile_y in self.tile_y
            and point.mode in self.modes
            and stack_ok
        )

    # ------------------------------------------------------------------
    # Genes <-> points
    # ------------------------------------------------------------------
    def _point_with_stack_value(
        self, accelerator: str, tile_x: int, tile_y: int, mode: OverlapMode, value
    ) -> DesignPoint:
        if self.partitions is not None:
            return DesignPoint(
                accelerator=accelerator,
                tile_x=tile_x,
                tile_y=tile_y,
                mode=mode,
                partition=value,
            )
        return DesignPoint(
            accelerator=accelerator,
            tile_x=tile_x,
            tile_y=tile_y,
            mode=mode,
            fuse_depth=value,
        )

    def _stack_value(self, point: DesignPoint):
        if self.partitions is not None:
            if point.fuse_depth is not None:
                raise ValueError(
                    f"{point.describe()} carries a fuse_depth cap, but "
                    "this space searches explicit partitions"
                )
            return point.partition
        if point.partition is not None:
            raise ValueError(
                f"{point.describe()} carries an explicit partition, but "
                "this space searches fuse depths"
            )
        return point.fuse_depth

    def gene_cardinalities(self) -> tuple[int, ...]:
        """Per-slot cardinality of the genome: the four index genes,
        then the stack axis' slots (variable-length for partitions)."""
        return (
            len(self.accelerators),
            len(self.tile_x),
            len(self.tile_y),
            len(self.modes),
        ) + self.stack_axis.gene_cardinalities()

    def point(self, genes: Sequence[int]) -> DesignPoint:
        """The design point encoded by ``genes``."""
        accel_i, tx_i, ty_i, mode_i = genes[:4]
        value = self.stack_axis.decode(tuple(genes[4:]))
        return self._point_with_stack_value(
            self.accelerators[accel_i],
            self.tile_x[tx_i],
            self.tile_y[ty_i],
            self.modes[mode_i],
            value,
        )

    def genes(self, point: DesignPoint) -> tuple[int, ...]:
        """Inverse of :meth:`point`; raises ``ValueError`` if outside."""
        return (
            self.accelerators.index(point.accelerator),
            self.tile_x.index(point.tile_x),
            self.tile_y.index(point.tile_y),
            self.modes.index(point.mode),
        ) + self.stack_axis.encode(self._stack_value(point))

    def mutate_gene(self, slot: int, value: int, rng) -> int:
        """Redraw one gene slot: index genes uniformly, stack-axis genes
        through the axis' own rule (binary cut genes flip)."""
        cards = self.gene_cardinalities()
        if slot < 4:
            return rng.randrange(cards[slot])
        return self.stack_axis.mutate_slot(slot - 4, value, rng)

    def repair_genome(self, genes: Sequence[int]) -> tuple[int, ...]:
        """Canonicalize a bred genome (identity for grid-only spaces;
        partition axes zero dormant cut genes under the auto flag)."""
        return tuple(genes[:4]) + self.stack_axis.repair(tuple(genes[4:]))

    def point_at(self, index: int) -> DesignPoint:
        """The ``index``-th point of :meth:`enumerate` (for sampling
        without replacement over linear indices)."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        # Linear order matches enumerate(): accelerator-major, then the
        # stack axis, then the classic mode-major tile grid.
        axis = self.stack_axis
        tiles = len(self.tile_x) * len(self.tile_y)
        per_stack = len(self.modes) * tiles
        per_accel = axis.size * per_stack
        accel_i, rest = divmod(index, per_accel)
        stack_i, rest = divmod(rest, per_stack)
        mode_i, rest = divmod(rest, tiles)
        tx_i, ty_i = divmod(rest, len(self.tile_y))
        return self._point_with_stack_value(
            self.accelerators[accel_i],
            self.tile_x[tx_i],
            self.tile_y[ty_i],
            self.modes[mode_i],
            axis.value_at(stack_i),
        )

    # ------------------------------------------------------------------
    def enumerate(self) -> Iterator[DesignPoint]:
        """Every point in deterministic grid order: accelerator-major,
        then the stack axis (fuse depth or partition), then the classic
        sweep (mode-major) tile order shared with
        :func:`~repro.core.optimizer.grid_strategies`."""
        from ..core.optimizer import grid_strategies

        tiles = tuple((tx, ty) for tx in self.tile_x for ty in self.tile_y)
        axis = self.stack_axis
        for accelerator in self.accelerators:
            for value in (axis.value_at(i) for i in range(axis.size)):
                if self.partitions is None:
                    for strategy in grid_strategies(tiles, self.modes, value):
                        yield DesignPoint(
                            accelerator=accelerator,
                            tile_x=strategy.tile_x,
                            tile_y=strategy.tile_y,
                            mode=strategy.mode,
                            fuse_depth=strategy.fuse_depth,
                        )
                else:
                    for mode in self.modes:
                        for tx, ty in tiles:
                            yield DesignPoint(
                                accelerator=accelerator,
                                tile_x=tx,
                                tile_y=ty,
                                mode=mode,
                                partition=value,
                            )

    def sample(self, rng) -> DesignPoint:
        """One uniform draw (deterministic given the ``rng`` state)."""
        axis = self.stack_axis
        return self._point_with_stack_value(
            self.accelerators[rng.randrange(len(self.accelerators))],
            self.tile_x[rng.randrange(len(self.tile_x))],
            self.tile_y[rng.randrange(len(self.tile_y))],
            self.modes[rng.randrange(len(self.modes))],
            axis.value_at(rng.randrange(axis.size)),
        )

    def sample_points(self, rng, count: int) -> list[DesignPoint]:
        """``count`` uniform draws *without replacement* (capped at the
        space size), deterministic given the ``rng`` state.  The shared
        seeding path of the random and genetic searchers."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        indices = rng.sample(range(self.size), min(count, self.size))
        return [self.point_at(i) for i in indices]

    # ------------------------------------------------------------------
    @classmethod
    def paper_grid(
        cls,
        accelerators: Sequence[str] = ("meta_proto_like_df",),
        fuse_depths: Sequence[int | None] = (None,),
    ) -> "DesignSpace":
        """The paper's Fig. 12 tile grid and all three modes, as a
        design space (the degenerate CS1/CS2 configuration)."""
        from ..core.optimizer import ALL_MODES, PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y

        return cls(
            accelerators=tuple(accelerators),
            tile_x=PAPER_TILE_GRID_X,
            tile_y=PAPER_TILE_GRID_Y,
            modes=ALL_MODES,
            fuse_depths=tuple(fuse_depths),
        )

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        data = {
            "accelerators": list(self.accelerators),
            "tile_x": list(self.tile_x),
            "tile_y": list(self.tile_y),
            "modes": [m.value for m in self.modes],
            "fuse_depths": list(self.fuse_depths),
        }
        # Only partition-gened spaces carry the key, so pre-partition
        # checkpoint stamps (formats <= 3) keep matching byte-for-byte.
        if self.partitions is not None:
            data["partitions"] = self.partitions.to_json()
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "DesignSpace":
        raw_partitions = data.get("partitions")
        return cls(
            accelerators=tuple(data["accelerators"]),
            tile_x=tuple(int(v) for v in data["tile_x"]),
            tile_y=tuple(int(v) for v in data["tile_y"]),
            modes=tuple(OverlapMode(m) for m in data["modes"]),
            fuse_depths=tuple(
                None if v is None else int(v) for v in data["fuse_depths"]
            ),
            partitions=(
                None
                if raw_partitions is None
                else PartitionAxis.from_json(raw_partitions)
            ),
        )
