"""Depth-first strategy: the three axes of the design space (Section II).

* axis 1 — tile size ``(tile_x, tile_y)`` on the stack's final output;
* axis 2 — overlap storing mode (:class:`OverlapMode`);
* axis 3 — fuse depth, either automatic (weights-fit rule) or an explicit
  stack partition.

Single-layer (SL) and layer-by-layer (LBL) scheduling are the design
space's extreme points and get convenience constructors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OverlapMode(enum.Enum):
    """Axis 2: what to do with inter-tile overlaps (Fig. 3).

    The fourth combination (V-cached H-recompute) is a transposed
    duplicate of H-cached V-recompute and is not modeled, as in the paper.
    """

    FULLY_RECOMPUTE = "fully_recompute"
    H_CACHED_V_RECOMPUTE = "h_cached_v_recompute"
    FULLY_CACHED = "fully_cached"

    @property
    def caches_x(self) -> bool:
        """Whether horizontal overlaps are cached across tiles."""
        return self in (OverlapMode.H_CACHED_V_RECOMPUTE, OverlapMode.FULLY_CACHED)

    @property
    def caches_y(self) -> bool:
        """Whether vertical overlaps are cached across tile rows."""
        return self is OverlapMode.FULLY_CACHED


class StackBoundary(enum.Enum):
    """How feature maps are passed between stacks."""

    #: Always through DRAM (single-layer scheduling).
    DRAM = "dram"
    #: Through the lowest memory level the whole map fits in (LBL / DF).
    LOWEST_FIT = "lowest_fit"


@dataclass(frozen=True)
class DFStrategy:
    """A point in the depth-first scheduling space.

    Parameters
    ----------
    tile_x, tile_y:
        Tile size on each stack's final output feature map; larger values
        are clamped per stack.
    mode:
        Overlap storing mode.
    stacks:
        Explicit fuse-depth choice: a tuple of tuples of layer names.
        ``None`` selects the automatic rule (fuse while stack weights fit
        in the top on-chip weight memory; branch regions are atomic).
    fuse_depth:
        Manual cap on the number of layers per stack (the paper's
        "can be given manually" option); combined with the automatic
        weights-fit rule.  ``None`` = no cap.
    stack_boundary:
        How feature maps cross stack boundaries.
    """

    tile_x: int
    tile_y: int
    mode: OverlapMode = OverlapMode.FULLY_CACHED
    stacks: tuple[tuple[str, ...], ...] | None = None
    fuse_depth: int | None = None
    stack_boundary: StackBoundary = StackBoundary.LOWEST_FIT

    def __post_init__(self) -> None:
        if self.tile_x < 1 or self.tile_y < 1:
            raise ValueError(
                f"tile size must be >= 1, got ({self.tile_x}, {self.tile_y})"
            )
        if self.fuse_depth is not None and self.fuse_depth < 1:
            raise ValueError(f"fuse_depth must be >= 1, got {self.fuse_depth}")
        if self.fuse_depth is not None and self.stacks is not None:
            raise ValueError("give either explicit stacks or fuse_depth, not both")

    # ------------------------------------------------------------------
    # The design space's extreme points (Section II).
    # ------------------------------------------------------------------
    @classmethod
    def single_layer(cls) -> "DFStrategy":
        """SL: one layer per stack, feature maps via DRAM (Fig. 1(a))."""
        return cls(
            tile_x=1 << 30,
            tile_y=1 << 30,
            mode=OverlapMode.FULLY_RECOMPUTE,
            stacks=_PER_LAYER_SENTINEL,
            stack_boundary=StackBoundary.DRAM,
        )

    @classmethod
    def layer_by_layer(cls) -> "DFStrategy":
        """LBL: one layer per stack, feature maps passed in the lowest
        memory level they fit (Fig. 1(b))."""
        return cls(
            tile_x=1 << 30,
            tile_y=1 << 30,
            mode=OverlapMode.FULLY_RECOMPUTE,
            stacks=_PER_LAYER_SENTINEL,
            stack_boundary=StackBoundary.LOWEST_FIT,
        )

    @property
    def one_layer_per_stack(self) -> bool:
        """Whether this strategy forces single-layer stacks.

        Compared by value, not identity: strategies cross process
        boundaries (pickled to the exploration runtime's workers), and
        an unpickled sentinel is equal but no longer the same object.
        """
        return self.stacks == _PER_LAYER_SENTINEL

    def describe(self) -> str:
        """Short label for reports."""
        if self.one_layer_per_stack:
            kind = "SL" if self.stack_boundary is StackBoundary.DRAM else "LBL"
            return kind
        return f"{self.mode.value} {self.tile_x}x{self.tile_y}"


#: Sentinel meaning "every layer is its own stack".
_PER_LAYER_SENTINEL: tuple[tuple[str, ...], ...] = (("__per_layer__",),)
