"""Step 4 of DeFiNES: data copy actions and their cost model.

A data copy action moves a block of data between two memory levels — e.g.
collecting a layer-tile's input pieces (previous layer's fresh output,
H-cached and V-cached overlap data) into the level chosen as the input's
top memory, or spilling freshly computed overlap data into the cache's
level.  The cost model takes a *bundle* of actions that may proceed in
parallel and accounts for port conflicts: actions sharing a physical
memory serialize on its bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.memory import MemoryLevel
from ..mapping.cost import CostResult


@dataclass(frozen=True)
class DataCopyAction:
    """One block move: ``elems`` data elements of ``bits`` precision from
    ``src`` to ``dst`` (distinct physical memories)."""

    label: str
    elems: float
    bits: int
    src: MemoryLevel
    dst: MemoryLevel

    @property
    def bytes(self) -> float:
        return self.elems * self.bits / 8.0


def copy_cost(actions: list[DataCopyAction]) -> CostResult:
    """Energy and latency of a bundle of (potentially parallel) actions.

    Energy: each byte pays one read at the source and one write at the
    destination.  Latency: every physical memory serializes the bytes it
    must move through its ports; the bundle finishes when the most loaded
    memory does.
    """
    result = CostResult()
    port_bytes: dict[int, float] = {}
    port_bw: dict[int, float] = {}
    for action in actions:
        if action.elems <= 0:
            continue
        if action.src.instance.uid == action.dst.instance.uid:
            continue  # already in place
        nbytes = action.bytes
        src_i, dst_i = action.src.instance, action.dst.instance

        entry_src = result.traffic_entry("copy", src_i.name)
        entry_src.reads_elems += action.elems
        entry_src.energy_pj += nbytes * src_i.r_energy_pj_per_byte
        entry_dst = result.traffic_entry("copy", dst_i.name)
        entry_dst.writes_elems += action.elems
        entry_dst.energy_pj += nbytes * dst_i.w_energy_pj_per_byte

        for inst in (src_i, dst_i):
            port_bytes[inst.uid] = port_bytes.get(inst.uid, 0.0) + nbytes
            port_bw[inst.uid] = inst.bandwidth_bytes * inst.ports

    latency = 0.0
    for uid, moved in port_bytes.items():
        bw = port_bw[uid]
        if bw > 0 and bw != float("inf"):
            latency = max(latency, moved / bw)
    result.latency_cycles = latency
    return result
