"""Interval geometry for depth-first tile back-calculation.

All regions are half-open integer intervals per spatial axis.  Because
the paper's tiling is axis-separable (tiles are rectangles, layer
transforms act per axis, branch combination is a per-axis bounding box),
DeFiNES' step 2 can be computed independently along x and y and combined
multiplicatively — which is also what makes tile-type discovery cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.layer import LayerSpec


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open integer interval ``[lo, hi)``; empty when ``hi <= lo``."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        return max(0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo

    def clip(self, lo: int, hi: int) -> "Interval":
        """Intersection with ``[lo, hi)``."""
        return Interval(max(self.lo, lo), min(self.hi, hi))

    def hull(self, other: "Interval") -> "Interval":
        """Bounding interval of two intervals (the paper's 'combine all
        outermost edges' rule for branches, Fig. 8)."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))


EMPTY = Interval(0, 0)


def layer_kernel_extent(layer: LayerSpec, axis: str) -> int:
    """Effective kernel extent along ``axis`` ('x' or 'y')."""
    if axis == "x":
        return (layer.fx - 1) * layer.dx + 1
    if axis == "y":
        return (layer.fy - 1) * layer.dy + 1
    raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")


def input_interval(layer: LayerSpec, out: Interval, axis: str) -> Interval:
    """Input span needed to compute the output span ``out`` along ``axis``.

    Applies the convolution relation ``in = [o_lo*s - p,
    (o_hi-1)*s - p + kernel_extent)`` and clips to the valid input range,
    so padding pixels are neither fetched nor counted.
    """
    if out.empty:
        return EMPTY
    if axis == "x":
        stride, pad, size = layer.sx, layer.px, layer.ix
    else:
        stride, pad, size = layer.sy, layer.py, layer.iy
    extent = layer_kernel_extent(layer, axis)
    lo = out.lo * stride - pad
    hi = (out.hi - 1) * stride - pad + extent
    return Interval(lo, hi).clip(0, size)


def tile_edges(total: int, tile: int) -> list[Interval]:
    """Partition ``[0, total)`` into spans of at most ``tile`` (the last
    span may be a remainder, as in Fig. 6 where 540 = 72*7 + 36)."""
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    return [Interval(lo, min(lo + tile, total)) for lo in range(0, total, tile)]
