"""Result containers for depth-first schedule evaluations.

The hierarchy mirrors DeFiNES' accumulation (step 6): per-tile-type
results roll up into per-stack results, which roll up into the schedule
result.  Traffic categories keep layer activations ("I"/"O"), weights
("W") and data copies ("copy") separate so the paper's Fig. 14 breakdown
can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..mapping.cost import CostResult
from .backcalc import StackTiling, TileType
from .memlevels import TileMemoryPlan


@dataclass
class TileTypeResult:
    """Steps 2-5 output for one tile type (before multiplying by count)."""

    tile: TileType
    plan: TileMemoryPlan
    layer_costs: list[CostResult] = field(default_factory=list)
    copy_cost: CostResult = field(default_factory=CostResult)

    @property
    def cost(self) -> CostResult:
        """Combined cost of one tile of this type."""
        total = CostResult()
        for layer_cost in self.layer_costs:
            total.add(layer_cost)
        total.add(self.copy_cost)
        return total


@dataclass
class StackResult:
    """Accumulated result of one fused-layer stack."""

    tiling: StackTiling
    tile_results: list[TileTypeResult]
    total: CostResult

    @property
    def tile_type_count(self) -> int:
        """Number of distinct tile types (code/control complexity proxy,
        Fig. 6)."""
        return len(self.tile_results)

    @property
    def layer_names(self) -> tuple[str, ...]:
        return self.tiling.stack.layer_names


@dataclass
class ScheduleResult:
    """End-to-end result of a workload under one DF strategy."""

    workload_name: str
    accelerator_name: str
    strategy_label: str
    stacks: list[StackResult]
    total: CostResult

    @property
    def energy_pj(self) -> float:
        return self.total.energy_pj

    @property
    def energy_mj(self) -> float:
        return self.total.energy_pj / 1e9

    @property
    def latency_cycles(self) -> float:
        return self.total.latency_cycles

    @property
    def mac_count(self) -> float:
        return self.total.mac_count

    @property
    def edp(self) -> float:
        return self.total.edp

    def dram_accesses(self) -> float:
        """Total DRAM accesses in elements (all categories)."""
        return self.total.accesses(level_names=("DRAM",))

    def traffic_by_category(self) -> Mapping[str, float]:
        """Total element accesses per data category."""
        out: dict[str, float] = {}
        for (category, _level), t in self.total.traffic.items():
            out[category] = out.get(category, 0.0) + t.accesses_elems
        return out

    def describe(self) -> str:
        return (
            f"{self.workload_name} on {self.accelerator_name} "
            f"[{self.strategy_label}]: "
            f"E={self.energy_mj:.3f} mJ, "
            f"L={self.latency_cycles / 1e6:.2f} Mcycles, "
            f"MACs={self.mac_count / 1e9:.2f} G"
        )
