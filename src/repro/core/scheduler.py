"""DeFiNES' depth-first cost model: the six steps of Fig. 5.

:class:`DepthFirstEngine` evaluates a workload on an accelerator under a
:class:`~repro.core.strategy.DFStrategy`:

1. partition the workload into fused-layer stacks (axis 3);
2. tile each stack's output and back-calculate per-layer tile geometry
   for the chosen overlap mode (axes 1-2), grouping identical tiles into
   tile types;
3. determine top memory levels per (operand, layer, tile type);
4. model the data copy actions that collect inputs / spill overlap
   caches;
5. call the single-layer mapper + cost model per layer-tile with the
   hierarchy truncated at the chosen top levels;
6. accumulate everything into stack and schedule results.

Feature maps crossing stack boundaries are placed in the lowest memory
level they fit (layer-by-layer behaviour) or in DRAM (single-layer
behaviour), per the strategy's :class:`StackBoundary`.
"""

from __future__ import annotations

from ..hardware.accelerator import Accelerator
from ..hardware.memory import MemoryLevel
from ..mapping.cache import MappingCache
from ..mapping.cost import CostResult
from ..mapping.loma import MappingSearchEngine, SearchConfig
from ..workloads.graph import WorkloadGraph
from ..workloads.layer import LayerSpec
from .backcalc import LayerTileGeometry, TileType, backcalculate
from .datacopy import DataCopyAction, copy_cost
from .memlevels import MemLevelPolicy, TileMemoryPlan, plan_tile_memory
from .results import ScheduleResult, StackResult, TileTypeResult
from .stacks import Stack, partition_stacks
from .strategy import DFStrategy, StackBoundary


class DepthFirstEngine:
    """Evaluates depth-first schedules analytically (Fig. 5)."""

    def __init__(
        self,
        accel: Accelerator,
        search_config: SearchConfig | None = None,
        policy: MemLevelPolicy | None = None,
        cache: MappingCache | None = None,
    ) -> None:
        self.accel = accel
        self.mapper = MappingSearchEngine(search_config, cache=cache)
        self.policy = policy or MemLevelPolicy()

    @property
    def cache(self) -> MappingCache:
        """The mapping cache this engine reads and fills (shareable)."""
        return self.mapper.cache

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self, workload: WorkloadGraph, strategy: DFStrategy
    ) -> ScheduleResult:
        """Evaluate ``workload`` under ``strategy``; returns accumulated
        energy/latency plus the full per-stack, per-tile-type detail."""
        stacks = partition_stacks(
            workload,
            self.accel,
            explicit=None if strategy.one_layer_per_stack else strategy.stacks,
            per_layer=strategy.one_layer_per_stack,
            fuse_depth=strategy.fuse_depth,
        )
        return self._evaluate_stacks(workload, strategy, stacks)

    def evaluate_stack(
        self,
        workload: WorkloadGraph,
        strategy: DFStrategy,
        stack: Stack,
        input_locations: dict[str, int] | None = None,
    ) -> StackResult:
        """Evaluate a single stack (used by the per-stack combination
        search of case study 2).  ``input_locations`` maps external
        producer layer names to I-hierarchy indices (default: computed
        from the boundary policy)."""
        locations = self._boundary_locations(workload, strategy, [stack])
        if input_locations:
            locations.update(input_locations)
        return self._evaluate_one_stack(workload, strategy, stack, locations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate_stacks(
        self,
        workload: WorkloadGraph,
        strategy: DFStrategy,
        stacks: list[Stack],
    ) -> ScheduleResult:
        locations = self._boundary_locations(workload, strategy, stacks)
        stack_results = [
            self._evaluate_one_stack(workload, strategy, stack, locations)
            for stack in stacks
        ]
        total = CostResult()
        for sr in stack_results:
            total.add(sr.total)
        return ScheduleResult(
            workload_name=workload.name,
            accelerator_name=self.accel.name,
            strategy_label=strategy.describe(),
            stacks=stack_results,
            total=total,
        )

    def _boundary_locations(
        self,
        workload: WorkloadGraph,
        strategy: DFStrategy,
        stacks: list[Stack],
    ) -> dict[str, int]:
        """I-hierarchy index of every feature map crossing a stack
        boundary, keyed by producing layer name ('' = network input).

        A boundary feature map may stay on-chip only if it fits its level
        together with the input feature maps the producing stack is still
        reading from the same memory (input and output coexist while the
        stack runs, the paper's LBL 'if fit' condition of Fig. 1(b)).
        """
        i_hier = self.accel.hierarchy("I")
        dram_idx = len(i_hier) - 1
        locations: dict[str, int] = {"": dram_idx}
        for stack in stacks:
            sink = stack.sink
            if strategy.stack_boundary is StackBoundary.DRAM:
                locations[sink.name] = dram_idx
                continue
            input_fms: list[tuple[int, float]] = []  # (location idx, bytes)
            for source in stack.workload.sources():
                producers = [
                    p
                    for p in workload.predecessors(source.name)
                    if p.name not in stack.workload
                ]
                in_bytes = float(source.input_bytes)
                if producers:
                    for p in producers:
                        input_fms.append(
                            (locations.get(p.name, dram_idx), float(p.output_bytes))
                        )
                else:
                    input_fms.append((locations[""], in_bytes))
            locations[sink.name] = self._io_location(sink, input_fms)
        return locations

    def _io_location(
        self, sink: LayerSpec, input_fms: list[tuple[int, float]]
    ) -> int:
        """Lowest I-hierarchy level fitting ``sink``'s full output next to
        the concurrently-live input feature maps."""
        i_hier = self.accel.hierarchy("I")
        for idx, level in enumerate(i_hier):
            if level.instance.per_pe:
                continue
            if level.instance.is_dram:
                return idx
            need = float(sink.output_bytes)
            for in_idx, in_bytes in input_fms:
                if (
                    in_idx < len(i_hier)
                    and i_hier[in_idx].instance.uid == level.instance.uid
                ):
                    need += in_bytes
            if need <= level.instance.size_bytes:
                return idx
        return len(i_hier) - 1

    def _o_index_for(self, i_index: int) -> int:
        """Translate an I-hierarchy index into the O hierarchy (they may
        differ in depth when I and O have different private levels)."""
        target = self.accel.hierarchy("I")[i_index].instance.uid
        o_hier = self.accel.hierarchy("O")
        for idx, level in enumerate(o_hier):
            if level.instance.uid == target:
                return idx
        return len(o_hier) - 1

    def _evaluate_one_stack(
        self,
        workload: WorkloadGraph,
        strategy: DFStrategy,
        stack: Stack,
        locations: dict[str, int],
    ) -> StackResult:
        tiling = backcalculate(
            stack, strategy.mode, strategy.tile_x, strategy.tile_y
        )
        out_dest_i = locations[stack.sink.name]
        out_dest_o = self._o_index_for(out_dest_i)

        # Where each stack-source layer's input feature map lives.
        ext_location: dict[str, int] = {}
        for source in stack.workload.sources():
            producers = [
                p
                for p in workload.predecessors(source.name)
                if p.name not in stack.workload
            ]
            if producers:
                ext_location[source.name] = max(
                    locations.get(p.name, self.accel.top_level_index("I"))
                    for p in producers
                )
            else:
                ext_location[source.name] = locations[""]

        # Stack inputs are gathered into the fit-based input top level by
        # data copy actions: in cached modes only the fresh part of the
        # window is fetched from the previous stack's location; in
        # recompute modes the whole window is re-fetched every tile, which
        # is exactly the large first-layer copy traffic of Fig. 14(c).
        tile_results: list[TileTypeResult] = []
        total = CostResult()
        for tile in tiling.tile_types:
            plan = plan_tile_memory(
                self.accel,
                tile,
                stack.weight_bytes,
                input_source={},
                output_dest_idx=out_dest_o,
                policy=self.policy,
            )
            result = self._evaluate_tile(stack, tile, plan, ext_location)
            tile_results.append(result)
            total.add(result.cost, scale=tile.count)

        return StackResult(tiling=tiling, tile_results=tile_results, total=total)

    # ------------------------------------------------------------------
    def _evaluate_tile(
        self,
        stack: Stack,
        tile: TileType,
        plan: TileMemoryPlan,
        ext_location: dict[str, int],
    ) -> TileTypeResult:
        wl = stack.workload
        geom_by_name = {g.layer.name: g for g in tile.geometry}
        tops_by_name = {
            g.layer.name: plan.layer_tops[i] for i, g in enumerate(tile.geometry)
        }
        i_hier = self.accel.hierarchy("I")
        o_hier = self.accel.hierarchy("O")
        cache_h = plan.cache_level(self.accel, "h")
        cache_v = plan.cache_level(self.accel, "v")

        result = TileTypeResult(tile=tile, plan=plan)
        copy_total = CostResult()

        for idx, geom in enumerate(tile.geometry):
            layer = geom.layer
            if not geom.is_computed:
                result.layer_costs.append(CostResult())
                continue
            tops = plan.layer_tops[idx].tops
            dest = i_hier[tops["I"]]
            actions = self._gather_actions(
                wl, geom, geom_by_name, tops_by_name, dest, o_hier,
                cache_h, cache_v, ext_location, i_hier,
            )
            actions.extend(
                self._spill_actions(geom, o_hier[tops["O"]], cache_h, cache_v, dest)
            )
            copy_total.add(copy_cost(actions))

            result.layer_costs.append(
                self._search_with_fallback(geom.scaled_layer(), tops)
            )

        result.copy_cost = copy_total
        return result

    def _search_with_fallback(self, layer: LayerSpec, tops: dict) -> CostResult:
        """Run the mapping search, progressively raising O then I to DRAM
        when the planned tops turn out jointly infeasible (a safety net
        for rare sharing corner cases the planner's per-layer reservation
        model cannot see)."""
        from ..mapping.allocation import AllocationError

        attempts = [dict(tops)]
        o_top = self.accel.top_level_index("O")
        i_top = self.accel.top_level_index("I")
        if tops.get("O") != o_top:
            attempts.append({**tops, "O": o_top})
        if tops.get("I") != i_top:
            attempts.append({**tops, "I": i_top, "O": o_top})
        last_error: Exception | None = None
        for attempt in attempts:
            try:
                return self.mapper.search(layer, self.accel, tops=attempt).cost
            except AllocationError as exc:
                last_error = exc
        raise AllocationError(
            f"{layer.name}: no feasible mapping even with DRAM tops"
        ) from last_error

    def _gather_actions(
        self,
        wl: WorkloadGraph,
        geom: LayerTileGeometry,
        geom_by_name: dict[str, LayerTileGeometry],
        tops_by_name,
        dest: MemoryLevel,
        o_hier,
        cache_h: MemoryLevel | None,
        cache_v: MemoryLevel | None,
        ext_location: dict[str, int],
        i_hier,
    ) -> list[DataCopyAction]:
        """Step 4: collect this layer-tile's input pieces at ``dest``."""
        layer = geom.layer
        actions: list[DataCopyAction] = []
        bits = layer.act_bits

        for producer in wl.predecessors(layer.name):
            pgeom = geom_by_name[producer.name]
            p_top_o = o_hier[tops_by_name[producer.name].tops["O"]]
            actions.append(
                DataCopyAction(
                    label=f"{layer.name}:fresh<-{producer.name}",
                    elems=pgeom.output_elems,
                    bits=bits,
                    src=p_top_o,
                    dst=dest,
                )
            )
            if cache_h is not None and pgeom.used_h_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:hcache<-{producer.name}",
                        elems=pgeom.used_h_elems,
                        bits=bits,
                        src=cache_h,
                        dst=dest,
                    )
                )
            if cache_v is not None and pgeom.used_v_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:vcache<-{producer.name}",
                        elems=pgeom.used_v_elems,
                        bits=bits,
                        src=cache_v,
                        dst=dest,
                    )
                )

        if geom.is_source:
            src_level = i_hier[ext_location[layer.name]]
            if geom.input_fresh_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:fresh<-stack-input",
                        elems=geom.input_fresh_elems,
                        bits=bits,
                        src=src_level,
                        dst=dest,
                    )
                )
            if cache_h is not None and geom.input_used_h_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:hcache<-stack-input",
                        elems=geom.input_used_h_elems,
                        bits=bits,
                        src=cache_h,
                        dst=dest,
                    )
                )
            if cache_v is not None and geom.input_used_v_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:vcache<-stack-input",
                        elems=geom.input_used_v_elems,
                        bits=bits,
                        src=cache_v,
                        dst=dest,
                    )
                )
        return actions

    def _spill_actions(
        self,
        geom: LayerTileGeometry,
        top_o: MemoryLevel,
        cache_h: MemoryLevel | None,
        cache_v: MemoryLevel | None,
        dest_i: MemoryLevel,
    ) -> list[DataCopyAction]:
        """Step 4 (outbound): retain freshly computed overlap data in the
        cache levels, and retain fresh stack-input halo likewise."""
        layer = geom.layer
        actions: list[DataCopyAction] = []
        if cache_h is not None and geom.keep_h_elems:
            actions.append(
                DataCopyAction(
                    label=f"{layer.name}:spill-h",
                    elems=geom.keep_h_elems,
                    bits=layer.act_bits,
                    src=top_o,
                    dst=cache_h,
                )
            )
        if cache_v is not None and geom.keep_v_elems:
            actions.append(
                DataCopyAction(
                    label=f"{layer.name}:spill-v",
                    elems=geom.keep_v_elems,
                    bits=layer.act_bits,
                    src=top_o,
                    dst=cache_v,
                )
            )
        if geom.is_source:
            if cache_h is not None and geom.input_keep_h_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:spill-input-h",
                        elems=geom.input_keep_h_elems,
                        bits=layer.act_bits,
                        src=dest_i,
                        dst=cache_h,
                    )
                )
            if cache_v is not None and geom.input_keep_v_elems:
                actions.append(
                    DataCopyAction(
                        label=f"{layer.name}:spill-input-v",
                        elems=geom.input_keep_v_elems,
                        bits=layer.act_bits,
                        src=dest_i,
                        dst=cache_v,
                    )
                )
        return actions


def evaluate_strategy(
    accel: Accelerator,
    workload: WorkloadGraph,
    strategy: DFStrategy,
    search_config: SearchConfig | None = None,
    policy: MemLevelPolicy | None = None,
    cache: MappingCache | None = None,
) -> ScheduleResult:
    """Evaluate one (workload, strategy) point as a plain function.

    A picklable, module-level entry point for ad-hoc
    ``multiprocessing`` use: everything it takes and returns survives a
    pickle round trip.  The exploration runtime's process pool ships
    the same ingredients but runs its own per-worker engine reuse (see
    ``repro.explore.executor``); this function is the one-shot
    equivalent.  Builds a throwaway engine around ``cache`` (or a
    private one) and delegates to :meth:`DepthFirstEngine.evaluate`.
    """
    engine = DepthFirstEngine(accel, search_config, policy, cache=cache)
    return engine.evaluate(workload, strategy)
