"""Step 2 of DeFiNES: back-calculate per-layer tile geometry.

Given a stack, an overlap mode and the tile grid on the stack's final
output, this module computes — per tile and per layer — the required
output region, the region that must actually be computed (the rest comes
from caches), the input region needed, and the cached-data bookkeeping of
Fig. 7.  The stack's *input* feature map participates in overlap caching
too: in cached modes only the new part of a source layer's input window is
fetched from wherever the previous stack left it.

Everything is axis-separable (see :mod:`repro.core.geometry`): tiles are
rectangles, layer transforms act per axis and the branch rule (Fig. 8) is
a per-axis hull.  We therefore compute one geometry sequence per tile
column and one per tile row and combine them — which also yields tile
types (Fig. 6) for free: tiles with identical (column class, row class)
pairs are identical and are evaluated once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..workloads.layer import LayerSpec
from .geometry import EMPTY, Interval, input_interval, tile_edges
from .stacks import Stack
from .strategy import OverlapMode


@dataclass(frozen=True)
class AxisGeometry:
    """Geometry along one axis for one tile position of one feature map.

    For a layer's output: ``required`` is the span consumers need,
    ``fresh`` the newly computed part, ``in_need`` the input span needed
    to compute ``fresh``.  For a stack input feature map: ``required`` is
    the window the source layer reads, ``fresh`` the part fetched from the
    previous stack's output location (the rest sits in the overlap cache),
    and ``in_need`` is unused.
    """

    required: Interval
    fresh: Interval
    in_need: Interval
    cache_used: int  # elements served by the overlap cache this tile
    cache_keep: int  # freshly produced elements to retain for the next tile


def _fresh_part(required: Interval, frontier: int, cached: bool, first: bool) -> Interval:
    if not cached or first:
        return required
    lo = max(required.lo, frontier)
    return Interval(lo, max(required.hi, lo))


def _axis_sequence(
    stack: Stack,
    axis: str,
    edges: list[Interval],
    cached: bool,
) -> tuple[list[dict[str, AxisGeometry]], list[dict[str, AxisGeometry]]]:
    """Back-calculate per-layer and per-stack-input geometry for every
    tile position along one axis.

    Returns ``(layer_slices, input_slices)``: for each position, a dict
    keyed by layer name (layer outputs) and a dict keyed by source-layer
    name (the stack input feature maps they read).
    """
    wl = stack.workload
    layers = stack.layers
    reverse = list(reversed(layers))
    sink_name = stack.sink.name
    sources = {l.name for l in wl.sources()}

    frontier: dict[str, int] = {l.name: 0 for l in layers}
    in_frontier: dict[str, int] = {name: 0 for name in sources}
    layer_slices: list[dict[str, AxisGeometry]] = []
    input_slices: list[dict[str, AxisGeometry]] = []

    for idx, edge in enumerate(edges):
        col: dict[str, AxisGeometry] = {}
        for layer in reverse:
            if layer.name == sink_name:
                required = edge
            else:
                required = EMPTY
                for consumer in wl.successors(layer.name):
                    required = required.hull(
                        input_interval(consumer, col[consumer.name].fresh, axis)
                    )
            fresh = _fresh_part(required, frontier[layer.name], cached, idx == 0)
            col[layer.name] = AxisGeometry(
                required=required,
                fresh=fresh,
                in_need=input_interval(layer, fresh, axis),
                cache_used=max(0, fresh.lo - required.lo),
                cache_keep=0,
            )
        incol: dict[str, AxisGeometry] = {}
        for name in sources:
            window = col[name].in_need
            fetched = _fresh_part(window, in_frontier[name], cached, idx == 0)
            incol[name] = AxisGeometry(
                required=window,
                fresh=fetched,
                in_need=EMPTY,
                cache_used=max(0, fetched.lo - window.lo),
                cache_keep=0,
            )
        layer_slices.append(col)
        input_slices.append(incol)
        for layer in layers:
            frontier[layer.name] = max(
                col[layer.name].fresh.hi, frontier[layer.name]
            )
        for name in sources:
            in_frontier[name] = max(incol[name].fresh.hi, in_frontier[name])

    if cached:
        _fill_keeps(layer_slices, [l.name for l in layers])
        _fill_keeps(input_slices, list(sources))
    return layer_slices, input_slices


def _fill_keeps(slices: list[dict[str, AxisGeometry]], names: list[str]) -> None:
    """Forward pass: freshly produced elements each tile must retain for
    its successor (clamped to the fresh span — older cached data is
    already retained and needs no new spill)."""
    for idx in range(len(slices) - 1):
        cur, nxt = slices[idx], slices[idx + 1]
        for name in names:
            g = cur[name]
            keep = max(
                0,
                g.fresh.hi - max(nxt[name].required.lo, g.fresh.lo),
            )
            slices[idx][name] = replace(g, cache_keep=keep)


def _elems_to_bytes(elems: int, bits: int) -> int:
    return (elems * bits + 7) // 8


@dataclass(frozen=True)
class LayerTileGeometry:
    """Combined x/y geometry of one layer for one tile.

    ``input_x``/``input_y`` are set for stack source layers and describe
    the stack input feature map's window, fetch and cache state.
    """

    layer: LayerSpec
    x: AxisGeometry
    y: AxisGeometry
    input_x: AxisGeometry | None = None
    input_y: AxisGeometry | None = None

    @property
    def is_computed(self) -> bool:
        """Whether anything must be computed for this layer this tile."""
        return not (self.x.fresh.empty or self.y.fresh.empty)

    @property
    def compute_w(self) -> int:
        return self.x.fresh.width

    @property
    def compute_h(self) -> int:
        return self.y.fresh.width

    @property
    def mac_count(self) -> int:
        """MACs to compute this layer-tile."""
        if not self.is_computed:
            return 0
        per_pixel = self.layer.k * self.layer.c * self.layer.fx * self.layer.fy
        return per_pixel * self.compute_w * self.compute_h

    @property
    def is_source(self) -> bool:
        """Whether this layer reads the stack's input feature map."""
        return self.input_x is not None

    # ------------------------------------------------------------------
    # Data sizes used by steps 3 and 4 (elements and bytes).
    # ------------------------------------------------------------------
    @property
    def output_elems(self) -> int:
        """Newly computed output elements of this layer-tile."""
        return self.layer.k * self.compute_w * self.compute_h

    @property
    def output_bytes(self) -> int:
        return _elems_to_bytes(self.output_elems, self.layer.act_bits)

    @property
    def input_elems(self) -> int:
        """Input elements needed (halo included) for this layer-tile."""
        return (
            self.layer.in_channels * self.x.in_need.width * self.y.in_need.width
        )

    @property
    def input_bytes(self) -> int:
        return _elems_to_bytes(self.input_elems, self.layer.act_bits)

    # -- overlap cache of this layer's output --------------------------
    @property
    def keep_h_elems(self) -> int:
        """Fresh output to spill into the H cache for the next tile."""
        return self.layer.k * self.x.cache_keep * self.compute_h

    @property
    def keep_v_elems(self) -> int:
        """Fresh output to spill into the V cache for the next tile row."""
        return self.layer.k * self.compute_w * self.y.cache_keep

    @property
    def used_h_elems(self) -> int:
        """Output region served by the H cache instead of recomputed."""
        return self.layer.k * self.x.cache_used * self.compute_h

    @property
    def used_v_elems(self) -> int:
        """Output region served by the V cache (full required width)."""
        return self.layer.k * self.x.required.width * self.y.cache_used

    # -- overlap cache of the stack input feature map -------------------
    def _input_cache_elems(self, kind: str) -> int:
        if self.input_x is None or self.input_y is None:
            return 0
        ch = self.layer.in_channels
        if kind == "keep_h":
            return ch * self.input_x.cache_keep * self.input_y.fresh.width
        if kind == "keep_v":
            return ch * self.input_x.fresh.width * self.input_y.cache_keep
        if kind == "used_h":
            return ch * self.input_x.cache_used * self.input_y.fresh.width
        if kind == "used_v":
            return ch * self.input_x.required.width * self.input_y.cache_used
        if kind == "fresh":
            return ch * self.input_x.fresh.width * self.input_y.fresh.width
        raise ValueError(kind)

    @property
    def input_fresh_elems(self) -> int:
        """Stack-input elements fetched fresh from the previous stack's
        output location this tile (0 for non-source layers)."""
        return self._input_cache_elems("fresh") if self.is_source else 0

    @property
    def input_used_h_elems(self) -> int:
        return self._input_cache_elems("used_h")

    @property
    def input_used_v_elems(self) -> int:
        return self._input_cache_elems("used_v")

    @property
    def input_keep_h_elems(self) -> int:
        return self._input_cache_elems("keep_h")

    @property
    def input_keep_v_elems(self) -> int:
        return self._input_cache_elems("keep_v")

    def scaled_layer(self) -> LayerSpec:
        """The per-tile loop nest handed to the single-layer mapper."""
        return self.layer.scaled_to_tile(
            self.compute_w,
            self.compute_h,
            ix=max(1, self.x.in_need.width),
            iy=max(1, self.y.in_need.width),
        )


@dataclass(frozen=True)
class TileType:
    """A class of identical tiles (Fig. 6) with its multiplicity."""

    index: int
    count: int
    col_index: int
    row_index: int
    is_first_tile: bool
    geometry: tuple[LayerTileGeometry, ...]

    @property
    def mac_count(self) -> int:
        return sum(g.mac_count for g in self.geometry)

    @property
    def h_cache_bytes(self) -> int:
        """Per-stack H-cache capacity requirement at this tile (layer
        outputs plus source-layer input windows)."""
        total = 0
        for g in self.geometry:
            total += _elems_to_bytes(g.keep_h_elems, g.layer.act_bits)
            total += _elems_to_bytes(g.input_keep_h_elems, g.layer.act_bits)
        return total

    @property
    def v_cache_line_bytes(self) -> int:
        """Per-stack V-cache requirement: full-width lines per feature map
        (the stack line buffer of Fig. 7)."""
        total = 0
        for g in self.geometry:
            elems = g.layer.k * g.layer.ox * g.y.cache_keep
            total += _elems_to_bytes(elems, g.layer.act_bits)
            if g.input_y is not None:
                elems = g.layer.in_channels * g.layer.ix * g.input_y.cache_keep
                total += _elems_to_bytes(elems, g.layer.act_bits)
        return total


@dataclass(frozen=True)
class StackTiling:
    """All tile types of one stack under one DF strategy."""

    stack: Stack
    mode: OverlapMode
    tile_x: int
    tile_y: int
    grid_cols: int
    grid_rows: int
    tile_types: tuple[TileType, ...]

    @property
    def tile_count(self) -> int:
        return self.grid_cols * self.grid_rows

    @property
    def total_mac_count(self) -> int:
        """MACs over all tiles (recompute overhead included — Fig. 13)."""
        return sum(t.mac_count * t.count for t in self.tile_types)


def backcalculate(
    stack: Stack, mode: OverlapMode, tile_x: int, tile_y: int
) -> StackTiling:
    """Run DeFiNES steps 1-2 for one stack: tile the output, back-calculate
    all per-layer tile geometries, and group identical tiles into types."""
    sink = stack.sink
    tx = min(tile_x, sink.ox)
    ty = min(tile_y, sink.oy)
    x_edges = tile_edges(sink.ox, tx)
    y_edges = tile_edges(sink.oy, ty)

    x_cols, x_incols = _axis_sequence(stack, "x", x_edges, mode.caches_x)
    y_rows, y_inrows = _axis_sequence(stack, "y", y_edges, mode.caches_y)

    x_class_of = _classify(x_cols, x_incols, stack)
    y_class_of = _classify(y_rows, y_inrows, stack)

    # Tile (0, 0) is always its own type: it fetches weights from DRAM
    # (Fig. 9: "all the layers of the first tile take weights from DRAM").
    combos: dict[tuple[int, int, bool], list[tuple[int, int]]] = {}
    for r in range(len(y_edges)):
        for c in range(len(x_edges)):
            key = (x_class_of[c], y_class_of[r], (r == 0 and c == 0))
            combos.setdefault(key, []).append((c, r))

    sources = {l.name for l in stack.workload.sources()}
    tile_types: list[TileType] = []
    for key, members in sorted(
        combos.items(), key=lambda kv: min((r, c) for c, r in kv[1])
    ):
        col_idx, row_idx = members[0]
        geometry = []
        for layer in stack.layers:
            is_src = layer.name in sources
            geometry.append(
                LayerTileGeometry(
                    layer=layer,
                    x=x_cols[col_idx][layer.name],
                    y=y_rows[row_idx][layer.name],
                    input_x=x_incols[col_idx][layer.name] if is_src else None,
                    input_y=y_inrows[row_idx][layer.name] if is_src else None,
                )
            )
        tile_types.append(
            TileType(
                index=len(tile_types),
                count=len(members),
                col_index=col_idx,
                row_index=row_idx,
                is_first_tile=key[2],
                geometry=tuple(geometry),
            )
        )

    return StackTiling(
        stack=stack,
        mode=mode,
        tile_x=tx,
        tile_y=ty,
        grid_cols=len(x_edges),
        grid_rows=len(y_edges),
        tile_types=tuple(tile_types),
    )


def _classify(
    slices: list[dict[str, AxisGeometry]],
    input_slices: list[dict[str, AxisGeometry]],
    stack: Stack,
) -> list[int]:
    """Group identical axis geometries into classes (class id per position)."""

    def signature(g: AxisGeometry) -> tuple[int, ...]:
        return (
            g.required.width,
            g.fresh.width,
            g.in_need.width,
            g.cache_used,
            g.cache_keep,
        )

    seen: dict[tuple, int] = {}
    class_of: list[int] = []
    for idx, col in enumerate(slices):
        sig = tuple(signature(col[l.name]) for l in stack.layers) + tuple(
            signature(g) for _, g in sorted(input_slices[idx].items())
        )
        cls = seen.setdefault(sig, len(seen))
        class_of.append(cls)
    return class_of


def iter_tiles(tiling: StackTiling) -> Iterator[TileType]:
    """Iterate tile types (steps 2-6 run once per type)."""
    return iter(tiling.tile_types)
