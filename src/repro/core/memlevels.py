"""Step 3 of DeFiNES: determine the top memory level per data type.

For every (tile, layer) combination the data types are prioritized as in
Fig. 5(3) — weights, current layer inputs, current layer outputs, cached
data for H reuse, cached data for V reuse — and each is assigned the
lowest memory level of its operand's hierarchy in which it fits next to
the already-placed higher-priority data.  This reproduces the paper's
Fig. 9/10 behaviour: when I+O no longer fit the LB together, I keeps the
LB and O is pushed to the GB.

The module also implements the "DRAM-only skipping" ablation of
Fig. 18(b): when multi-level skipping is disabled, activations may only
use the highest on-chip level or DRAM as their top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..hardware.accelerator import Accelerator
from ..hardware.memory import MemoryLevel
from .backcalc import TileType


@dataclass(frozen=True)
class MemLevelPolicy:
    """Knobs of the top-level determination."""

    #: Allow skipping multiple upper levels (False = Fig. 18(b) baseline:
    #: activations top out at the highest on-chip level or DRAM only).
    multi_level_skip: bool = True


@dataclass(frozen=True)
class LayerTops:
    """Per-operand top level indices (into the operand hierarchies) for
    one layer of one tile, plus the global ranks used for reporting."""

    tops: Mapping[str, int]
    ranks: Mapping[str, int]


@dataclass(frozen=True)
class TileMemoryPlan:
    """Step-3 output for one tile type."""

    w_resident_idx: int
    layer_tops: tuple[LayerTops, ...]
    cache_h_idx: int | None
    cache_v_idx: int | None

    def cache_level(self, accel: Accelerator, which: str) -> MemoryLevel | None:
        idx = self.cache_h_idx if which == "h" else self.cache_v_idx
        if idx is None:
            return None
        return accel.hierarchy("I")[idx]


def _fits(level: MemoryLevel, need: float, reserved: Mapping[int, float]) -> bool:
    if level.instance.is_dram:
        return True
    available = level.instance.size_bytes - reserved.get(level.instance.uid, 0.0)
    return need <= available


def _lowest_fit(
    accel: Accelerator,
    operand: str,
    need: float,
    reserved: Mapping[int, float],
    policy: MemLevelPolicy,
    minimum: int = 0,
) -> int:
    """Lowest hierarchy index of ``operand`` whose level fits ``need``."""
    hierarchy = accel.hierarchy(operand)
    candidates = range(minimum, len(hierarchy))
    if not policy.multi_level_skip:
        # Only the highest on-chip level or DRAM may serve as a top.
        on_chip = [
            i for i in candidates if not hierarchy[i].instance.is_dram
        ]
        allowed = ([on_chip[-1]] if on_chip else []) + [len(hierarchy) - 1]
        candidates = [i for i in allowed if i >= minimum]
    for idx in candidates:
        level = hierarchy[idx]
        if level.instance.per_pe:
            continue
        if _fits(level, need, reserved):
            return idx
    return len(hierarchy) - 1


def weight_resident_index(accel: Accelerator, stack_weight_bytes: int) -> int:
    """Lowest non-register W level holding the stack's resident weights."""
    reserved: dict[int, float] = {}
    policy = MemLevelPolicy()
    return _lowest_fit(accel, "W", float(stack_weight_bytes), reserved, policy)


def plan_tile_memory(
    accel: Accelerator,
    tile: TileType,
    stack_weight_bytes: int,
    input_source: Mapping[str, int],
    output_dest_idx: int,
    policy: MemLevelPolicy | None = None,
) -> TileMemoryPlan:
    """Run step 3 for one tile type.

    ``input_source`` maps each stack-source layer name to the I-hierarchy
    index where the stack's input feature map lives (DRAM or a lower level
    left by the previous stack); ``output_dest_idx`` is where the stack's
    final output must land (O hierarchy index).
    """
    policy = policy or MemLevelPolicy()
    stack = tile.geometry
    w_resident_idx = weight_resident_index(accel, stack_weight_bytes)
    w_hierarchy = accel.hierarchy("W")
    w_resident = w_hierarchy[w_resident_idx]

    sink_name = stack[-1].layer.name
    layer_tops: list[LayerTops] = []
    io_peak: dict[int, float] = {}  # instance uid -> max I+O bytes seen

    for geom in stack:
        layer = geom.layer
        reserved: dict[int, float] = {}
        if not w_resident.instance.is_dram:
            reserved[w_resident.instance.uid] = float(stack_weight_bytes)

        # Weights: the first tile streams them from DRAM (Fig. 9).
        if layer.weight_count == 0:
            top_w = 0
        elif tile.is_first_tile:
            top_w = len(w_hierarchy) - 1
        else:
            top_w = w_resident_idx

        # Inputs: forced to the stack input location for source layers.
        if geom.layer.name in input_source:
            top_i = input_source[geom.layer.name]
        else:
            top_i = _lowest_fit(
                accel, "I", float(geom.input_bytes), reserved, policy
            )
        i_level = accel.hierarchy("I")[top_i]
        if not i_level.instance.is_dram:
            reserved[i_level.instance.uid] = (
                reserved.get(i_level.instance.uid, 0.0) + geom.input_bytes
            )

        # Outputs: forced for the stack sink.
        if layer.name == sink_name:
            top_o = output_dest_idx
        else:
            top_o = _lowest_fit(
                accel, "O", float(geom.output_bytes), reserved, policy
            )
        o_level = accel.hierarchy("O")[top_o]
        if not o_level.instance.is_dram:
            reserved[o_level.instance.uid] = (
                reserved.get(o_level.instance.uid, 0.0) + geom.output_bytes
            )

        for uid, amount in reserved.items():
            if not w_resident.instance.is_dram and uid == w_resident.instance.uid:
                amount -= stack_weight_bytes
            io_peak[uid] = max(io_peak.get(uid, 0.0), amount)

        ranks = {
            "W": accel.level_rank(w_hierarchy[top_w]),
            "I": accel.level_rank(accel.hierarchy("I")[top_i]),
            "O": accel.level_rank(accel.hierarchy("O")[top_o]),
        }
        layer_tops.append(
            LayerTops(tops={"W": top_w, "I": top_i, "O": top_o}, ranks=ranks)
        )

    # Cached data: lowest priority, sees the peak I/O pressure plus the
    # resident weights.
    cache_reserved = dict(io_peak)
    if not w_resident.instance.is_dram:
        cache_reserved[w_resident.instance.uid] = (
            cache_reserved.get(w_resident.instance.uid, 0.0) + stack_weight_bytes
        )

    cache_h_idx: int | None = None
    cache_v_idx: int | None = None
    h_bytes = float(tile.h_cache_bytes)
    v_bytes = float(tile.v_cache_line_bytes)
    if h_bytes > 0:
        cache_h_idx = _lowest_fit(accel, "I", h_bytes, cache_reserved, policy)
        level = accel.hierarchy("I")[cache_h_idx]
        if not level.instance.is_dram:
            cache_reserved[level.instance.uid] = (
                cache_reserved.get(level.instance.uid, 0.0) + h_bytes
            )
    if v_bytes > 0:
        cache_v_idx = _lowest_fit(accel, "I", v_bytes, cache_reserved, policy)

    return TileMemoryPlan(
        w_resident_idx=w_resident_idx,
        layer_tops=tuple(layer_tops),
        cache_h_idx=cache_h_idx,
        cache_v_idx=cache_v_idx,
    )
