"""Stack partitioning: DeFiNES' third design-space axis (fuse depth).

The automatic rule (Section III, "Inputs"): walk the network in schedule
order, adding layers to the current stack while the stack's total weights
fit the highest on-chip memory level holding weights.  Branch regions
(between two branch-free cut points) are atomic — either fused entirely or
not at all; if such a region alone does not fit, each of its layers
becomes a single-layer stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.accelerator import Accelerator
from ..workloads.graph import WorkloadGraph
from ..workloads.layer import LayerSpec


@dataclass(frozen=True)
class Stack:
    """A stack of fused layers (contiguous subgraph with a single sink)."""

    index: int
    workload: WorkloadGraph
    layers: tuple[LayerSpec, ...]

    @property
    def weight_bytes(self) -> int:
        """Total resident weights of the stack."""
        return sum(l.weight_bytes for l in self.layers)

    @property
    def sink(self) -> LayerSpec:
        """The stack's output layer (tiling is defined on its output)."""
        sinks = self.workload.sinks()
        if len(sinks) != 1:
            raise ValueError(
                f"stack {self.index} has {len(sinks)} sinks; expected 1"
            )
        return sinks[0]

    @property
    def layer_names(self) -> tuple[str, ...]:
        return tuple(l.name for l in self.layers)


def branch_free_segments(workload: WorkloadGraph) -> list[list[LayerSpec]]:
    """Split the network at branch-free cut points.

    A cut point after layer ``L`` (in schedule order) is a position where
    ``L``'s output is the only feature map still needed by later layers —
    i.e. nothing branches across it.  Residual blocks therefore stay
    whole, ending at their join layer.
    """
    layers = workload.topological_layers()
    position = {l.name: i for i, l in enumerate(layers)}

    # For each layer, the schedule position of its last consumer.
    last_use: dict[str, int] = {}
    for layer in layers:
        consumers = workload.successors(layer.name)
        last_use[layer.name] = max(
            (position[c.name] for c in consumers), default=position[layer.name]
        )

    # A cut is legal at position i iff no *earlier* layer's output is
    # still needed after i, i.e. the running max of last_use over
    # layers[:i] does not exceed i.  One pass, O(n).
    segments: list[list[LayerSpec]] = []
    current: list[LayerSpec] = []
    crossing_until = -1
    for i, layer in enumerate(layers):
        current.append(layer)
        if crossing_until <= i:
            segments.append(current)
            current = []
        crossing_until = max(crossing_until, last_use[layer.name])
    if current:
        segments.append(current)
    return segments


def _make_stack(workload: WorkloadGraph, index: int, layers: list[LayerSpec]) -> Stack:
    sub = workload.subgraph(l.name for l in layers)
    return Stack(index=index, workload=sub, layers=tuple(layers))


def _validate_explicit(
    explicit: tuple[tuple[str, ...], ...], expected: list[str]
) -> None:
    """Validate an explicit partition up front: every layer exactly
    once, and every stack a contiguous schedule-order run.  Out-of-order
    or interleaved stacks otherwise fail lazily ("stack N has K sinks")
    or silently mis-tile, so the error here names the offending stack."""
    covered = [name for stack in explicit for name in stack]
    if sorted(covered) != sorted(expected):
        raise ValueError(
            "explicit stacks must cover every layer exactly once; "
            f"got {covered} vs {expected}"
        )
    position = 0
    for index, names in enumerate(explicit):
        run = tuple(expected[position : position + len(names)])
        if tuple(names) != run:
            raise ValueError(
                f"explicit stack {index} {tuple(names)!r} is not contiguous "
                f"in schedule order; expected the next run {run!r}"
            )
        position += len(names)


def _single_sink(workload: WorkloadGraph, layers: list[LayerSpec]) -> bool:
    """Whether ``layers`` form a stack with exactly one sink (a layer
    whose output no other member consumes)."""
    names = {l.name for l in layers}
    sinks = sum(
        1
        for l in layers
        if not any(s.name in names for s in workload.successors(l.name))
    )
    return sinks == 1


def _chunk_segment(
    workload: WorkloadGraph, segment: list[LayerSpec], max_layers: int
) -> list[list[LayerSpec]]:
    """Split an atomic branch region into stacks of at most
    ``max_layers`` layers (the fuse-depth cap).  A naive slice can
    strand two live branch outputs in one chunk (two sinks), which the
    output tiling cannot schedule, so a chunk shrinks until it has a
    single sink — a single layer always does, so this terminates."""
    chunks: list[list[LayerSpec]] = []
    position = 0
    while position < len(segment):
        take = min(max_layers, len(segment) - position)
        while take > 1 and not _single_sink(
            workload, segment[position : position + take]
        ):
            take -= 1
        chunks.append(segment[position : position + take])
        position += take
    return chunks


def partition_stacks(
    workload: WorkloadGraph,
    accel: Accelerator,
    explicit: tuple[tuple[str, ...], ...] | None = None,
    per_layer: bool = False,
    fuse_depth: int | None = None,
) -> list[Stack]:
    """Partition ``workload`` into fused-layer stacks.

    ``explicit`` pins the partition (each inner tuple is a stack's layer
    names, in schedule order, covering the network exactly once);
    ``per_layer`` forces single-layer stacks (SL / LBL scheduling);
    otherwise the automatic weights-fit rule applies, optionally capped
    at ``fuse_depth`` layers per stack (the paper's manual knob).
    """
    layers = workload.topological_layers()
    if per_layer:
        return [
            _make_stack(workload, i, [layer]) for i, layer in enumerate(layers)
        ]
    if explicit is not None:
        _validate_explicit(explicit, [l.name for l in layers])
        return [
            _make_stack(workload, i, [workload.layer(n) for n in names])
            for i, names in enumerate(explicit)
        ]

    top_w = accel.top_weight_buffer()
    capacity = top_w.instance.size_bytes if top_w is not None else 0

    stacks: list[Stack] = []
    current: list[LayerSpec] = []
    current_bytes = 0

    def flush() -> None:
        nonlocal current, current_bytes
        if current:
            stacks.append(_make_stack(workload, len(stacks), current))
            current = []
            current_bytes = 0

    max_layers = fuse_depth if fuse_depth is not None else 1 << 30
    for segment in branch_free_segments(workload):
        seg_bytes = sum(l.weight_bytes for l in segment)
        if seg_bytes > capacity:
            # The atomic region alone does not fit: single-layer stacks
            # (the paper's capacity-overflow rule).
            flush()
            for layer in segment:
                stacks.append(_make_stack(workload, len(stacks), [layer]))
            continue
        if len(segment) > max_layers:
            # The region fits but exceeds the manual fuse-depth cap:
            # honour the cap with cap-sized chunks rather than falling
            # all the way back to per-layer stacks.
            flush()
            for chunk in _chunk_segment(workload, segment, max_layers):
                stacks.append(_make_stack(workload, len(stacks), chunk))
            continue
        if current and (
            current_bytes + seg_bytes > capacity
            or len(current) + len(segment) > max_layers
        ):
            flush()
        current.extend(segment)
        current_bytes += seg_bytes
    flush()
    return stacks
