"""Stack partitioning: DeFiNES' third design-space axis (fuse depth).

The automatic rule (Section III, "Inputs"): walk the network in schedule
order, adding layers to the current stack while the stack's total weights
fit the highest on-chip memory level holding weights.  Branch regions
(between two branch-free cut points) are atomic — either fused entirely or
not at all; if such a region alone does not fit, each of its layers
becomes a single-layer stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.accelerator import Accelerator
from ..workloads.graph import WorkloadGraph
from ..workloads.layer import LayerSpec


@dataclass(frozen=True)
class Stack:
    """A stack of fused layers (contiguous subgraph with a single sink)."""

    index: int
    workload: WorkloadGraph
    layers: tuple[LayerSpec, ...]

    @property
    def weight_bytes(self) -> int:
        """Total resident weights of the stack."""
        return sum(l.weight_bytes for l in self.layers)

    @property
    def sink(self) -> LayerSpec:
        """The stack's output layer (tiling is defined on its output)."""
        sinks = self.workload.sinks()
        if len(sinks) != 1:
            raise ValueError(
                f"stack {self.index} has {len(sinks)} sinks; expected 1"
            )
        return sinks[0]

    @property
    def layer_names(self) -> tuple[str, ...]:
        return tuple(l.name for l in self.layers)


def branch_free_segments(workload: WorkloadGraph) -> list[list[LayerSpec]]:
    """Split the network at branch-free cut points.

    A cut point after layer ``L`` (in schedule order) is a position where
    ``L``'s output is the only feature map still needed by later layers —
    i.e. nothing branches across it.  Residual blocks therefore stay
    whole, ending at their join layer.
    """
    layers = workload.topological_layers()
    position = {l.name: i for i, l in enumerate(layers)}

    # For each layer, the schedule position of its last consumer.
    last_use: dict[str, int] = {}
    for layer in layers:
        consumers = workload.successors(layer.name)
        last_use[layer.name] = max(
            (position[c.name] for c in consumers), default=position[layer.name]
        )

    segments: list[list[LayerSpec]] = []
    current: list[LayerSpec] = []
    for i, layer in enumerate(layers):
        current.append(layer)
        crossing = any(
            position[l.name] <= i < last_use[l.name]
            for l in layers[: i + 1]
            if l.name != layer.name
        )
        if not crossing:
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    return segments


def _make_stack(workload: WorkloadGraph, index: int, layers: list[LayerSpec]) -> Stack:
    sub = workload.subgraph(l.name for l in layers)
    return Stack(index=index, workload=sub, layers=tuple(layers))


def partition_stacks(
    workload: WorkloadGraph,
    accel: Accelerator,
    explicit: tuple[tuple[str, ...], ...] | None = None,
    per_layer: bool = False,
    fuse_depth: int | None = None,
) -> list[Stack]:
    """Partition ``workload`` into fused-layer stacks.

    ``explicit`` pins the partition (each inner tuple is a stack's layer
    names, in schedule order, covering the network exactly once);
    ``per_layer`` forces single-layer stacks (SL / LBL scheduling);
    otherwise the automatic weights-fit rule applies, optionally capped
    at ``fuse_depth`` layers per stack (the paper's manual knob).
    """
    layers = workload.topological_layers()
    if per_layer:
        return [
            _make_stack(workload, i, [layer]) for i, layer in enumerate(layers)
        ]
    if explicit is not None:
        covered = [name for stack in explicit for name in stack]
        expected = [l.name for l in layers]
        if sorted(covered) != sorted(expected):
            raise ValueError(
                "explicit stacks must cover every layer exactly once; "
                f"got {covered} vs {expected}"
            )
        return [
            _make_stack(workload, i, [workload.layer(n) for n in names])
            for i, names in enumerate(explicit)
        ]

    top_w = accel.top_weight_buffer()
    capacity = top_w.instance.size_bytes if top_w is not None else 0

    stacks: list[Stack] = []
    current: list[LayerSpec] = []
    current_bytes = 0

    def flush() -> None:
        nonlocal current, current_bytes
        if current:
            stacks.append(_make_stack(workload, len(stacks), current))
            current = []
            current_bytes = 0

    max_layers = fuse_depth if fuse_depth is not None else 1 << 30
    for segment in branch_free_segments(workload):
        seg_bytes = sum(l.weight_bytes for l in segment)
        if seg_bytes > capacity or len(segment) > max_layers:
            # The atomic region alone does not fit: single-layer stacks.
            flush()
            for layer in segment:
                stacks.append(_make_stack(workload, len(stacks), [layer]))
            continue
        if current and (
            current_bytes + seg_bytes > capacity
            or len(current) + len(segment) > max_layers
        ):
            flush()
        current.extend(segment)
        current_bytes += seg_bytes
    flush()
    return stacks
