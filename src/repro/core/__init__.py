"""DeFiNES core: the depth-first scheduling space and its cost model."""

from .backcalc import (
    AxisGeometry,
    LayerTileGeometry,
    StackTiling,
    TileType,
    backcalculate,
)
from .datacopy import DataCopyAction, copy_cost
from .geometry import Interval, input_interval, tile_edges
from .memlevels import (
    LayerTops,
    MemLevelPolicy,
    TileMemoryPlan,
    plan_tile_memory,
    weight_resident_index,
)
from .optimizer import (
    ALL_MODES,
    PAPER_DIAGONAL,
    PAPER_TILE_GRID_X,
    PAPER_TILE_GRID_Y,
    SweepPoint,
    best_combination,
    best_point,
    best_single_strategy,
    evaluate_layer_by_layer,
    evaluate_single_layer,
    sweep,
)
from .results import ScheduleResult, StackResult, TileTypeResult
from .scheduler import DepthFirstEngine
from .stacks import Stack, branch_free_segments, partition_stacks
from .strategy import DFStrategy, OverlapMode, StackBoundary

__all__ = [
    "AxisGeometry",
    "LayerTileGeometry",
    "StackTiling",
    "TileType",
    "backcalculate",
    "DataCopyAction",
    "copy_cost",
    "Interval",
    "input_interval",
    "tile_edges",
    "LayerTops",
    "MemLevelPolicy",
    "TileMemoryPlan",
    "plan_tile_memory",
    "weight_resident_index",
    "DepthFirstEngine",
    "ScheduleResult",
    "StackResult",
    "TileTypeResult",
    "Stack",
    "branch_free_segments",
    "partition_stacks",
    "DFStrategy",
    "OverlapMode",
    "StackBoundary",
    "ALL_MODES",
    "PAPER_DIAGONAL",
    "PAPER_TILE_GRID_X",
    "PAPER_TILE_GRID_Y",
    "SweepPoint",
    "sweep",
    "best_point",
    "best_single_strategy",
    "best_combination",
    "evaluate_single_layer",
    "evaluate_layer_by_layer",
]
