"""Schedule-space exploration on top of the depth-first engine.

Implements the experiments' search procedures: tile-size/mode sweeps
(case study 1), the five inference strategies of case study 2 (SL, LBL,
a fixed DF point, best single strategy, best per-stack combination), and
the LBL-vs-best-DF comparison of case study 3.  The optimizing target is
user-selectable (energy by default, as in the paper's case studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..mapping.cost import Objective, resolve_objective
from ..workloads.graph import WorkloadGraph
from .results import ScheduleResult, StackResult
from .scheduler import DepthFirstEngine
from .stacks import partition_stacks
from .strategy import DFStrategy, OverlapMode

#: The tile-size grid of the paper's Fig. 12 heatmaps.
PAPER_TILE_GRID_X = (1, 4, 16, 60, 240, 960)
PAPER_TILE_GRID_Y = (1, 4, 18, 72, 270, 540)

#: The diagonal points of Figs. 13-15.
PAPER_DIAGONAL = tuple(zip(PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y))

ALL_MODES = (
    OverlapMode.FULLY_RECOMPUTE,
    OverlapMode.H_CACHED_V_RECOMPUTE,
    OverlapMode.FULLY_CACHED,
)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated DF strategy with its result."""

    strategy: DFStrategy
    result: ScheduleResult

    def score(self, objective: Objective) -> float:
        return objective(self.result.total)


def sweep(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]],
    modes: Sequence[OverlapMode] = ALL_MODES,
) -> list[SweepPoint]:
    """Evaluate a grid of (mode, tile size) DF strategies (case study 1)."""
    points: list[SweepPoint] = []
    for mode in modes:
        for tx, ty in tile_sizes:
            strategy = DFStrategy(tile_x=tx, tile_y=ty, mode=mode)
            points.append(
                SweepPoint(strategy, engine.evaluate(workload, strategy))
            )
    return points


def best_point(
    points: Sequence[SweepPoint], objective: str | Objective = "energy"
) -> SweepPoint:
    """The sweep point minimizing the objective."""
    if not points:
        raise ValueError("no sweep points to choose from")
    score = resolve_objective(objective)
    return min(points, key=lambda p: p.score(score))


def best_single_strategy(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]] | None = None,
    modes: Sequence[OverlapMode] = ALL_MODES,
    objective: str | Objective = "energy",
) -> SweepPoint:
    """Best DF strategy when one strategy serves all stacks (CS2 purple)."""
    tiles = tuple(tile_sizes) if tile_sizes is not None else PAPER_DIAGONAL
    return best_point(sweep(engine, workload, tiles, modes), objective)


def best_combination(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]] | None = None,
    modes: Sequence[OverlapMode] = ALL_MODES,
    objective: str | Objective = "energy",
) -> ScheduleResult:
    """Best per-stack combination (CS2 red): each stack may use its own DF
    strategy.  Stacks are independent given the boundary feature-map
    locations, which do not depend on the intra-stack strategy, so the
    per-stack minima compose into the global optimum."""
    tiles = tuple(tile_sizes) if tile_sizes is not None else PAPER_DIAGONAL
    score = resolve_objective(objective)
    stacks = partition_stacks(workload, engine.accel)

    # Boundary feature-map locations depend only on feature-map sizes, not
    # on the intra-stack strategy, so one shared assignment keeps the
    # per-stack evaluations composable.
    probe = DFStrategy(tile_x=1 << 30, tile_y=1 << 30)
    locations = engine._boundary_locations(workload, probe, stacks)

    best_per_stack: list[StackResult] = []
    labels: list[str] = []
    for stack in stacks:
        best: StackResult | None = None
        best_label = ""
        for mode in ALL_MODES if modes is None else modes:
            for tx, ty in tiles:
                strategy = DFStrategy(tile_x=tx, tile_y=ty, mode=mode,
                                      stack_boundary=probe.stack_boundary)
                candidate = engine.evaluate_stack(
                    workload, strategy, stack, input_locations=locations
                )
                if best is None or score(candidate.total) < score(best.total):
                    best = candidate
                    best_label = strategy.describe()
        assert best is not None
        best_per_stack.append(best)
        labels.append(best_label)

    from ..mapping.cost import CostResult

    total = CostResult()
    for sr in best_per_stack:
        total.add(sr.total)
    return ScheduleResult(
        workload_name=workload.name,
        accelerator_name=engine.accel.name,
        strategy_label="best combination [" + "; ".join(labels) + "]",
        stacks=best_per_stack,
        total=total,
    )


def evaluate_single_layer(
    engine: DepthFirstEngine, workload: WorkloadGraph
) -> ScheduleResult:
    """SL baseline: every layer alone, feature maps through DRAM."""
    return engine.evaluate(workload, DFStrategy.single_layer())


def evaluate_layer_by_layer(
    engine: DepthFirstEngine, workload: WorkloadGraph
) -> ScheduleResult:
    """LBL baseline: every layer alone, feature maps in the lowest level
    they fit."""
    return engine.evaluate(workload, DFStrategy.layer_by_layer())
