"""Schedule-space exploration on top of the depth-first engine.

Implements the experiments' search procedures: tile-size/mode sweeps
(case study 1), the five inference strategies of case study 2 (SL, LBL,
a fixed DF point, best single strategy, best per-stack combination), and
the LBL-vs-best-DF comparison of case study 3.  The optimizing target is
user-selectable (energy by default, as in the paper's case studies).

The searches are built on the exploration runtime
(:mod:`repro.explore`): each one enumerates a declarative
:class:`~repro.explore.spec.SweepSpec` and hands it to an
:class:`~repro.explore.executor.Executor` bound to the engine's mapping
cache, so every search can run its independent evaluations across
worker processes (``jobs=N``) with results identical to the serial
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..mapping.cost import Objective, resolve_objective
from ..workloads.graph import WorkloadGraph
from .results import ScheduleResult, StackResult
from .scheduler import DepthFirstEngine
from .stacks import partition_stacks
from .strategy import DFStrategy, OverlapMode

#: The tile-size grid of the paper's Fig. 12 heatmaps.
PAPER_TILE_GRID_X = (1, 4, 16, 60, 240, 960)
PAPER_TILE_GRID_Y = (1, 4, 18, 72, 270, 540)

#: The diagonal points of Figs. 13-15.
PAPER_DIAGONAL = tuple(zip(PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y))

ALL_MODES = (
    OverlapMode.FULLY_RECOMPUTE,
    OverlapMode.H_CACHED_V_RECOMPUTE,
    OverlapMode.FULLY_CACHED,
)


def grid_strategies(
    tile_sizes: Iterable[tuple[int, int]],
    modes: Sequence[OverlapMode] = ALL_MODES,
    fuse_depth: int | None = None,
) -> Iterator[DFStrategy]:
    """The classic sweep enumeration: every (mode, tile size) strategy,
    mode-major.

    This order is the deterministic identity of every grid walk in the
    repo — :meth:`~repro.explore.spec.SweepSpec.tile_grid` and the DSE
    subsystem's exhaustive backend both enumerate through it, so a
    single-objective exhaustive DSE visits exactly the points (and tie
    breaks) of the paper's sweeps.
    """
    tiles = tuple(tile_sizes)
    for mode in modes:
        for tx, ty in tiles:
            yield DFStrategy(tile_x=tx, tile_y=ty, mode=mode, fuse_depth=fuse_depth)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated DF strategy with its result."""

    strategy: DFStrategy
    result: ScheduleResult

    def score(self, objective: Objective) -> float:
        return objective(self.result.total)


def _executor_for(engine: DepthFirstEngine, jobs: int):
    """An exploration-runtime executor sharing the engine's search
    config, memory policy and mapping cache (lazy import: the explore
    package builds on this module's siblings)."""
    from ..explore.executor import Executor

    return Executor(
        jobs=jobs,
        search_config=engine.mapper.config,
        policy=engine.policy,
        cache=engine.cache,
    )


def sweep(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]],
    modes: Sequence[OverlapMode] = ALL_MODES,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Evaluate a grid of (mode, tile size) DF strategies (case study 1).

    ``jobs`` > 1 evaluates the grid across that many worker processes;
    the returned points are in grid order and identical to a serial run.
    """
    from ..explore.spec import SweepSpec

    spec = SweepSpec.tile_grid(
        engine.accel, workload, tuple(tile_sizes), tuple(modes)
    )
    results = _executor_for(engine, jobs).run(spec)
    return [SweepPoint(r.job.strategy, r.result) for r in results]


def best_point(
    points: Sequence[SweepPoint], objective: str | Objective = "energy"
) -> SweepPoint:
    """The sweep point minimizing the objective."""
    if not points:
        raise ValueError("no sweep points to choose from")
    score = resolve_objective(objective)
    return min(points, key=lambda p: p.score(score))


def best_single_strategy(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]] | None = None,
    modes: Sequence[OverlapMode] = ALL_MODES,
    objective: str | Objective = "energy",
    jobs: int = 1,
) -> SweepPoint:
    """Best DF strategy when one strategy serves all stacks (CS2 purple)."""
    tiles = tuple(tile_sizes) if tile_sizes is not None else PAPER_DIAGONAL
    return best_point(sweep(engine, workload, tiles, modes, jobs=jobs), objective)


def best_combination(
    engine: DepthFirstEngine,
    workload: WorkloadGraph,
    tile_sizes: Iterable[tuple[int, int]] | None = None,
    modes: Sequence[OverlapMode] = ALL_MODES,
    objective: str | Objective = "energy",
    jobs: int = 1,
) -> ScheduleResult:
    """Best per-stack combination (CS2 red): each stack may use its own DF
    strategy.  Stacks are independent given the boundary feature-map
    locations, which do not depend on the intra-stack strategy, so the
    per-stack minima compose into the global optimum."""
    from ..explore.spec import SweepSpec

    tiles = tuple(tile_sizes) if tile_sizes is not None else PAPER_DIAGONAL
    score = resolve_objective(objective)
    stacks = partition_stacks(workload, engine.accel)

    # Boundary feature-map locations depend only on feature-map sizes, not
    # on the intra-stack strategy, so one shared assignment keeps the
    # per-stack evaluations composable.
    probe = DFStrategy(tile_x=1 << 30, tile_y=1 << 30)
    locations = engine._boundary_locations(workload, probe, stacks)

    spec = SweepSpec.per_stack(
        engine.accel,
        workload,
        tuple(stack.layer_names for stack in stacks),
        tiles,
        tuple(modes),
        input_locations=tuple(sorted(locations.items())),
        stack_boundary=probe.stack_boundary,
    )
    results = _executor_for(engine, jobs).run(spec)

    best_per_stack: list[StackResult] = []
    labels: list[str] = []
    for stack in stacks:
        best: StackResult | None = None
        best_label = ""
        for r in results:
            if r.job.stack_index != stack.index:
                continue
            candidate = r.result
            if best is None or score(candidate.total) < score(best.total):
                best = candidate
                best_label = r.job.strategy.describe()
        assert best is not None
        best_per_stack.append(best)
        labels.append(best_label)

    from ..mapping.cost import CostResult

    total = CostResult()
    for sr in best_per_stack:
        total.add(sr.total)
    return ScheduleResult(
        workload_name=workload.name,
        accelerator_name=engine.accel.name,
        strategy_label="best combination [" + "; ".join(labels) + "]",
        stacks=best_per_stack,
        total=total,
    )


def evaluate_single_layer(
    engine: DepthFirstEngine, workload: WorkloadGraph
) -> ScheduleResult:
    """SL baseline: every layer alone, feature maps through DRAM."""
    return engine.evaluate(workload, DFStrategy.single_layer())


def evaluate_layer_by_layer(
    engine: DepthFirstEngine, workload: WorkloadGraph
) -> ScheduleResult:
    """LBL baseline: every layer alone, feature maps in the lowest level
    they fit."""
    return engine.evaluate(workload, DFStrategy.layer_by_layer())
