"""Accelerator model: PE array with spatial unrolling + memory hierarchy.

This is the "HW Architecture" input of DeFiNES (Fig. 5): an array of
processing elements whose spatial unrolling is expressed over the layer
loop dimensions (e.g. ``K 32 | C 2 | OX 4 | OY 4``), plus a per-operand
multi-level memory hierarchy in which levels can be shared between
operands and topped by DRAM.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..workloads.layer import LOOP_DIMS, LayerSpec
from . import energy as energy_model
from .memory import OPERANDS, MemoryInstance, MemoryLevel


@dataclass(frozen=True)
class Accelerator:
    """A DNN accelerator: PE array + memory hierarchy.

    Parameters
    ----------
    name:
        Architecture name (Table I(a) naming).
    spatial_unrolling:
        Loop dimension -> spatial unroll factor.  The PE count is the
        product of the factors.
    levels:
        Memory levels ordered from lowest (closest to the PEs) to highest;
        the highest level serving each operand must be DRAM.  An operand's
        hierarchy is the subsequence of levels serving it.
    mac_energy_pj:
        Energy of one MAC operation.
    """

    name: str
    spatial_unrolling: Mapping[str, int]
    levels: tuple[MemoryLevel, ...]
    mac_energy_pj: float = energy_model.MAC_ENERGY_PJ

    def __post_init__(self) -> None:
        for dim, factor in self.spatial_unrolling.items():
            if dim not in LOOP_DIMS:
                raise ValueError(f"{self.name}: unknown spatial dim {dim!r}")
            if factor < 1:
                raise ValueError(f"{self.name}: unroll {dim}={factor} must be >= 1")
        for operand in OPERANDS:
            hierarchy = self.hierarchy(operand)
            if not hierarchy:
                raise ValueError(f"{self.name}: operand {operand} has no memory")
            if not hierarchy[-1].instance.is_dram:
                raise ValueError(
                    f"{self.name}: top level for {operand} must be DRAM, "
                    f"got {hierarchy[-1].name}"
                )

    # ------------------------------------------------------------------
    # PE array
    # ------------------------------------------------------------------
    @property
    def pe_count(self) -> int:
        """Number of MAC units (product of the spatial unroll factors)."""
        count = 1
        for factor in self.spatial_unrolling.values():
            count *= factor
        return count

    def utilized_unroll(self, layer: LayerSpec, dim: str) -> float:
        """Average utilized spatial unroll of ``dim`` for ``layer``.

        A layer dimension smaller than (or not divisible by) the unroll
        factor under-utilizes the array: e.g. a (1,1) tile on an
        ``OX 4 | OY 4`` array uses 1 of 16 lanes, which is what inflates
        weight local-buffer traffic in the paper's Fig. 14(b).
        """
        unroll = self.spatial_unrolling.get(dim, 1)
        size = layer.loop_sizes[dim]
        return size / math.ceil(size / unroll)

    def spatial_utilization(self, layer: LayerSpec) -> float:
        """Fraction of the PE array doing useful work for ``layer``."""
        used = 1.0
        for dim, unroll in self.spatial_unrolling.items():
            used *= self.utilized_unroll(layer, dim) / unroll
        return used

    def spatial_reuse(self, layer: LayerSpec, operand: str) -> float:
        """How many PEs one fetched word of ``operand`` serves spatially.

        The product of utilized unrolls over dimensions irrelevant to the
        operand (broadcast for W/I, spatial psum reduction for O).
        """
        relevant = layer.relevant_dims(operand)
        reuse = 1.0
        for dim in self.spatial_unrolling:
            if dim not in relevant:
                reuse *= self.utilized_unroll(layer, dim)
        return reuse

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------
    def hierarchy(self, operand: str) -> tuple[MemoryLevel, ...]:
        """The operand's memory levels, lowest first, DRAM last."""
        if operand not in OPERANDS:
            raise ValueError(f"unknown operand {operand!r}")
        return tuple(lvl for lvl in self.levels if lvl.serves(operand))

    def top_level_index(self, operand: str) -> int:
        """Index of DRAM in the operand's hierarchy."""
        return len(self.hierarchy(operand)) - 1

    def level_rank(self, level: MemoryLevel) -> int:
        """Global position of a level (for cross-operand comparisons and
        Fig. 9-style 'Reg < LB < GB < DRAM' reporting)."""
        for rank, candidate in enumerate(self.levels):
            if candidate is level or candidate == level:
                return rank
        raise ValueError(f"{level.name} is not a level of {self.name}")

    def instances(self) -> list[MemoryInstance]:
        """Distinct physical memory instances (shared ones deduplicated)."""
        seen: dict[int, MemoryInstance] = {}
        for lvl in self.levels:
            seen.setdefault(lvl.instance.uid, lvl.instance)
        return list(seen.values())

    def instances_by_uid(self) -> dict[int, MemoryInstance]:
        """Memoized uid -> instance table.  The cost model resolves
        bandwidth limits through this on every mapping evaluation, so the
        table is built once per accelerator, not once per call (the
        instances of a frozen accelerator never change)."""
        cached = self.__dict__.get("_instances_by_uid")
        if cached is None:
            cached = {inst.uid: inst for inst in self.instances()}
            object.__setattr__(self, "_instances_by_uid", cached)
        return cached

    def on_chip_capacity_bytes(self) -> int:
        """Total on-chip memory capacity (excludes DRAM)."""
        return sum(
            inst.size_bytes for inst in self.instances() if not inst.is_dram
        )

    def activation_capacity_bytes(self) -> int:
        """On-chip capacity available to activations: the summed size of
        distinct non-DRAM, non-per-PE instances serving I or O.  This is
        the budget the DSE memory-budget feasibility filter checks
        activation footprints against."""
        seen: dict[int, MemoryInstance] = {}
        for lvl in self.levels:
            if lvl.operands & {"I", "O"}:
                inst = lvl.instance
                if not inst.is_dram and not inst.per_pe:
                    seen.setdefault(inst.uid, inst)
        return sum(inst.size_bytes for inst in seen.values())

    def top_weight_buffer(self) -> MemoryLevel | None:
        """Highest on-chip level that stores weights, used by the automatic
        fuse-depth rule (Section III 'Inputs')."""
        candidates = [
            lvl for lvl in self.hierarchy("W") if not lvl.instance.is_dram
        ]
        return candidates[-1] if candidates else None

    def fingerprint(self) -> str:
        """Structural identity digest, stable across processes and runs.

        Covers everything the cost model reads: name, spatial unrolling,
        MAC energy, and each level's operands plus the physical instance
        parameters (sharing is captured positionally: levels backed by
        the same instance repeat the same local index).  Used to key
        persistent mapping caches, where ``id()``-based identity would
        not survive a round trip through disk or a worker process.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        local_idx: dict[int, int] = {}
        parts = [
            self.name,
            repr(sorted(self.spatial_unrolling.items())),
            repr(self.mac_energy_pj),
        ]
        for lvl in self.levels:
            inst = lvl.instance
            idx = local_idx.setdefault(inst.uid, len(local_idx))
            parts.append(
                f"{''.join(sorted(lvl.operands))}@{idx}:{inst.name},"
                f"{inst.size_bytes},{inst.r_energy_pj_per_byte!r},"
                f"{inst.w_energy_pj_per_byte!r},{inst.bandwidth_bytes!r},"
                f"{inst.ports},{inst.per_pe},{inst.tier}"
            )
        digest = hashlib.sha1("|".join(parts).encode()).hexdigest()[:16]
        fp = f"{self.name}:{digest}"
        object.__setattr__(self, "_fingerprint", fp)
        return fp

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        unroll = " | ".join(f"{d} {f}" for d, f in self.spatial_unrolling.items())
        mems = ", ".join(
            f"{inst.name}:{inst.size_bytes // 1024}KB"
            for inst in self.instances()
            if not inst.is_dram
        )
        return f"{self.name}: {self.pe_count} MACs ({unroll}); {mems}"


def build_accelerator(
    name: str,
    spatial_unrolling: Mapping[str, int],
    levels: Sequence[MemoryLevel],
    mac_energy_pj: float = energy_model.MAC_ENERGY_PJ,
) -> Accelerator:
    """Convenience constructor with list input for ``levels``."""
    return Accelerator(
        name=name,
        spatial_unrolling=dict(spatial_unrolling),
        levels=tuple(levels),
        mac_energy_pj=mac_energy_pj,
    )
