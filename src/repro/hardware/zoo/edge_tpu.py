"""Edge-TPU-like architecture [38] — Table I(a) Idx 5 & 6.

Idx 5 (baseline): spatial K 8 | C 8 | OX 4 | OY 4; per-MAC registers
W 1B and O 2B; a 32KB weight local buffer; a shared I&O 2MB global buffer.

Idx 6 (DF variant): local buffers W 16KB + shared I&O 16KB; global buffer
re-split into W 1MB + I&O 1MB.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 8, "C": 8, "OX": 4, "OY": 4}


def edge_tpu_like() -> Accelerator:
    """Table I(a) Idx 5."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 32 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 2 * 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "edge_tpu_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )


def edge_tpu_like_df() -> Accelerator:
    """Table I(a) Idx 6 — the DF-friendly variant."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 16 * 1024)
    lb_io = MemoryInstance.sram("LB_IO", 16 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "edge_tpu_like_df",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
