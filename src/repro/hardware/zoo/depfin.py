"""DepFiN-like architecture [7] — the taped-out depth-first CNN processor
DeFiNES is validated against (Section IV, Fig. 11).

The published DepFiN description is a 12nm, 3.8 TOPs depth-first processor
for high-resolution image processing with line-buffer style activation
storage.  We model it in DeFiNES terms as a 1024-MAC array with strong
spatial output reuse (suited to large feature maps), shared I&O buffers at
two on-chip levels and an on-chip weight buffer — the configuration the
validation experiment fixes mappings for.  Absolute energy is expected to
differ from silicon (sparsity, place-and-route, PVT — see the paper);
Fig. 11's comparison is on latency and *relative* energy.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 16, "C": 4, "OX": 16}


def depfin_like() -> Accelerator:
    """DepFiN-like validation model (not part of Table I)."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 4)
    lb_w = MemoryInstance.sram("LB_W", 64 * 1024)
    lb_io = MemoryInstance.sram("LB_IO", 128 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 512 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "depfin_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
