"""Meta-prototype-like architecture [28] — Table I(a) Idx 1 & 2.

Idx 1 (baseline): spatial K 32 | C 2 | OX 4 | OY 4; per-MAC registers
W 1B and O 2B; local buffers W 64KB and I 32KB; global buffer with
W 1MB and a shared I&O 1MB.

Idx 2 (DF variant): local buffers become W 32KB plus a shared I&O 64KB;
the global buffer split is unchanged.  This is the paper's primary
case-study architecture.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 32, "C": 2, "OX": 4, "OY": 4}


def meta_proto_like() -> Accelerator:
    """Table I(a) Idx 1."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 64 * 1024)
    lb_i = MemoryInstance.sram("LB_I", 32 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "meta_proto_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_i, "I"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )


def meta_proto_like_df() -> Accelerator:
    """Table I(a) Idx 2 — the DF-friendly variant."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 32 * 1024)
    lb_io = MemoryInstance.sram("LB_IO", 64 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "meta_proto_like_df",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
