"""TPU-like architecture [14] — Table I(a) Idx 3 & 4.

Idx 3 (baseline): systolic-style spatial K 32 | C 32; per-MAC-group
registers W 128B and O 1KB; no local buffer; a single shared I&O 2MB
global buffer.  Weights have *no* on-chip buffer — the paper singles this
out as the reason the baseline TPU-like cannot profit from depth-first
scheduling (weights stream from DRAM every tile).

Idx 4 (DF variant): W register halved to 64B, a shared 64KB I&O local
buffer added, and the global buffer re-split into W 1MB + I&O 1MB.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 32, "C": 32}


def tpu_like() -> Accelerator:
    """Table I(a) Idx 3."""
    w_reg = MemoryInstance.register("W_reg", 128)
    o_reg = MemoryInstance.register("O_reg", 1024)
    gb_io = MemoryInstance.sram("GB_IO", 2 * 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "tpu_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )


def tpu_like_df() -> Accelerator:
    """Table I(a) Idx 4 — the DF-friendly variant."""
    w_reg = MemoryInstance.register("W_reg", 64)
    o_reg = MemoryInstance.register("O_reg", 1024)
    lb_io = MemoryInstance.sram("LB_IO", 64 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "tpu_like_df",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
