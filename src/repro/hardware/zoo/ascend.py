"""Ascend-like architecture [19] — Table I(a) Idx 7 & 8.

Idx 7 (baseline): spatial K 16 | C 16 | OX 2 | OY 2; per-MAC registers
W 1B and O 2B; local buffers W 64KB, I 64KB and O 256KB (separate);
global buffer W 1MB + shared I&O 1MB.

Idx 8 (DF variant): local buffers W 64KB + shared I&O 64KB, plus a
second-level shared I&O 256KB buffer; same global buffer split.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 16, "C": 16, "OX": 2, "OY": 2}


def ascend_like() -> Accelerator:
    """Table I(a) Idx 7."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 64 * 1024)
    lb_i = MemoryInstance.sram("LB_I", 64 * 1024)
    lb_o = MemoryInstance.sram("LB_O", 256 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "ascend_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_i, "I"),
            level(lb_o, "O"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )


def ascend_like_df() -> Accelerator:
    """Table I(a) Idx 8 — the DF-friendly variant."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 64 * 1024)
    lb_io = MemoryInstance.sram("LB_IO", 64 * 1024)
    lb2_io = MemoryInstance.sram("LB2_IO", 256 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "ascend_like_df",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_io, "IO"),
            level(lb2_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
