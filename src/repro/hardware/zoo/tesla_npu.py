"""Tesla-NPU-like architecture [31] — Table I(a) Idx 9 & 10.

Idx 9 (baseline): spatial K 32 | OX 8 | OY 4 (no C unrolling); per-MAC
registers W 1B and O 4B; tiny local buffers W 1KB and I 1KB; global
buffer W 1MB + shared I&O 1MB.

Idx 10 (DF variant): keeps the tiny first-level buffers, adds a second
level W 64KB + shared I&O 64KB, and trims the I&O global buffer to 896KB
to keep total on-chip capacity constant.
"""

from __future__ import annotations

from ..accelerator import Accelerator, build_accelerator
from ..memory import MemoryInstance, level

_SPATIAL = {"K": 32, "OX": 8, "OY": 4}


def tesla_npu_like() -> Accelerator:
    """Table I(a) Idx 9."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 4)
    lb_w = MemoryInstance.sram("LB_W", 1024)
    lb_i = MemoryInstance.sram("LB_I", 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 1024 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "tesla_npu_like",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_i, "I"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )


def tesla_npu_like_df() -> Accelerator:
    """Table I(a) Idx 10 — the DF-friendly variant."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 4)
    lb_w = MemoryInstance.sram("LB_W", 1024)
    lb_i = MemoryInstance.sram("LB_I", 1024)
    lb2_w = MemoryInstance.sram("LB2_W", 64 * 1024)
    lb2_io = MemoryInstance.sram("LB2_IO", 64 * 1024)
    gb_w = MemoryInstance.sram("GB_W", 1024 * 1024)
    gb_io = MemoryInstance.sram("GB_IO", 896 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "tesla_npu_like_df",
        _SPATIAL,
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_i, "I"),
            level(lb2_w, "W"),
            level(lb2_io, "IO"),
            level(gb_w, "W"),
            level(gb_io, "IO"),
            level(dram, "WIO"),
        ],
    )
