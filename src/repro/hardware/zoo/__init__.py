"""Accelerator zoo: the ten Table I(a) architectures plus a DepFiN-like
validation model (Section IV).

All baselines are normalized to 1024 MACs and at most 2 MB of global
buffer, as in the paper; the "DF" variants keep the spatial unrolling and
total on-chip capacity but re-share memory between I and O at lower levels
and give weights an on-chip global buffer (Section V-A guidelines).
"""

from __future__ import annotations

from typing import Callable

from ..accelerator import Accelerator
from .ascend import ascend_like, ascend_like_df
from .depfin import depfin_like
from .edge_tpu import edge_tpu_like, edge_tpu_like_df
from .meta_proto import meta_proto_like, meta_proto_like_df
from .tesla_npu import tesla_npu_like, tesla_npu_like_df
from .tpu import tpu_like, tpu_like_df

#: Table I(a) architectures in paper index order (1-10).
ACCELERATOR_FACTORIES: dict[str, Callable[[], Accelerator]] = {
    "meta_proto_like": meta_proto_like,
    "meta_proto_like_df": meta_proto_like_df,
    "tpu_like": tpu_like,
    "tpu_like_df": tpu_like_df,
    "edge_tpu_like": edge_tpu_like,
    "edge_tpu_like_df": edge_tpu_like_df,
    "ascend_like": ascend_like,
    "ascend_like_df": ascend_like_df,
    "tesla_npu_like": tesla_npu_like,
    "tesla_npu_like_df": tesla_npu_like_df,
}


def get_accelerator(name: str) -> Accelerator:
    """Build a zoo accelerator by name (``depfin_like`` included)."""
    if name == "depfin_like":
        return depfin_like()
    try:
        return ACCELERATOR_FACTORIES[name]()
    except KeyError as exc:
        known = ", ".join(sorted(ACCELERATOR_FACTORIES) + ["depfin_like"])
        raise KeyError(f"unknown accelerator {name!r}; known: {known}") from exc


__all__ = [
    "ACCELERATOR_FACTORIES",
    "get_accelerator",
    "meta_proto_like",
    "meta_proto_like_df",
    "tpu_like",
    "tpu_like_df",
    "edge_tpu_like",
    "edge_tpu_like_df",
    "ascend_like",
    "ascend_like_df",
    "tesla_npu_like",
    "tesla_npu_like_df",
    "depfin_like",
]
