"""Energy and bandwidth model for memories and MACs.

The paper extracts SRAM access costs with CACTI-7 and scales register,
MAC and DRAM costs from them following Interstellar's scaling factors.
CACTI is a C++ tool we cannot ship here, so this module substitutes an
analytical model with the properties the case studies rely on:

* access energy per byte grows ~ sqrt(capacity) (wire/bitline dominated),
* register file accesses are far cheaper than any SRAM,
* DRAM accesses are an order of magnitude above the largest on-chip SRAM,
* DRAM bandwidth is fixed at 64 bit/cycle (the paper's on/off-chip
  bottleneck), while on-chip memories are sized to feed the PE array.

Absolute pJ values therefore differ from the paper's; relative orderings
and capacity scaling — which drive every scheduling conclusion — are
preserved.  See DESIGN.md §4.
"""

from __future__ import annotations

import math

#: Energy of one 8-bit MAC operation (pJ), control overhead included.
MAC_ENERGY_PJ = 0.1

#: Register-file access energy (pJ per byte), read or write.
REGISTER_ENERGY_PJ_PER_BYTE = 0.02

#: DRAM access energy (pJ per byte), read or write.
DRAM_ENERGY_PJ_PER_BYTE = 64.0

#: DRAM bandwidth in bytes per cycle (the paper fixes 64 bit/cycle).
DRAM_BANDWIDTH_BYTES = 8.0

#: Default on-chip bandwidths (bytes/cycle); generous, as the paper sizes
#: on-chip banking so the PE array never starves on ideal workloads.
LOCAL_BUFFER_BANDWIDTH_BYTES = 64.0
GLOBAL_BUFFER_BANDWIDTH_BYTES = 32.0


def sram_energy_pj_per_byte(size_bytes: int) -> float:
    """Access energy (pJ/byte) of an on-chip SRAM of ``size_bytes``.

    Calibrated to CACTI-like magnitudes: a 64 KB local buffer costs
    ~0.4 pJ/B and a 2 MB global buffer ~1.9 pJ/B, with sqrt-capacity
    scaling in between.  The ordering reg << LB << GB << DRAM of the
    paper's Fig. 14 holds for every memory size in Table I(a).
    """
    if size_bytes <= 0:
        raise ValueError(f"SRAM size must be positive, got {size_bytes}")
    kib = size_bytes / 1024.0
    return 0.04 * math.sqrt(kib) + 0.1


def sram_bandwidth_bytes(size_bytes: int) -> float:
    """Default bandwidth (bytes/cycle) for an SRAM of ``size_bytes``.

    Smaller, closer memories are banked wider; this only matters for the
    data-copy latency model (on-chip memories never stall the PE array).
    """
    if size_bytes <= 64 * 1024:
        return LOCAL_BUFFER_BANDWIDTH_BYTES
    return GLOBAL_BUFFER_BANDWIDTH_BYTES
