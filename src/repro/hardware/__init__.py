"""Hardware substrate: memories, energy model, accelerators and the zoo."""

from .accelerator import Accelerator, build_accelerator
from .energy import (
    DRAM_BANDWIDTH_BYTES,
    DRAM_ENERGY_PJ_PER_BYTE,
    MAC_ENERGY_PJ,
    REGISTER_ENERGY_PJ_PER_BYTE,
    sram_bandwidth_bytes,
    sram_energy_pj_per_byte,
)
from .memory import OPERANDS, MemoryInstance, MemoryLevel, level

__all__ = [
    "Accelerator",
    "build_accelerator",
    "MemoryInstance",
    "MemoryLevel",
    "level",
    "OPERANDS",
    "MAC_ENERGY_PJ",
    "REGISTER_ENERGY_PJ_PER_BYTE",
    "DRAM_ENERGY_PJ_PER_BYTE",
    "DRAM_BANDWIDTH_BYTES",
    "sram_energy_pj_per_byte",
    "sram_bandwidth_bytes",
]
