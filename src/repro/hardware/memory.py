"""Memory hierarchy building blocks.

A :class:`MemoryInstance` is one physical memory (a register file, a local
buffer SRAM, a global buffer SRAM, or DRAM).  A :class:`MemoryLevel` places
an instance at one level of one or more operands' hierarchies; operands
sharing an instance (e.g. the I&O global buffer of Table I(a)) contend for
its capacity, which is exactly what drives the paper's Fig. 10 behaviour
(O pushed to GB when I+O no longer fits the LB).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from . import energy as energy_model

#: Operand identifiers used across the project.
OPERANDS = ("W", "I", "O")

_instance_counter = itertools.count()


@dataclass(frozen=True)
class MemoryInstance:
    """One physical memory.

    Attributes
    ----------
    name:
        Human-readable name ("W_reg", "LB_IO", "GB_W", "DRAM", ...).
    size_bytes:
        Capacity. DRAM uses a practically-unbounded capacity.
    r_energy_pj_per_byte / w_energy_pj_per_byte:
        Access energies.
    bandwidth_bytes:
        Bytes per cycle through the memory's port (read or write);
        ``math.inf`` for registers.
    ports:
        Number of independent ports; concurrent data-copy actions beyond
        this serialize (Section III step 4).
    """

    name: str
    size_bytes: int
    r_energy_pj_per_byte: float
    w_energy_pj_per_byte: float
    bandwidth_bytes: float
    ports: int = 1
    per_pe: bool = False
    tier: str = "SRAM"
    uid: int = field(default_factory=lambda: next(_instance_counter), compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.bandwidth_bytes <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.ports < 1:
            raise ValueError(f"{self.name}: needs at least one port")

    @classmethod
    def register(cls, name: str, size_bytes: int) -> "MemoryInstance":
        """A per-PE (or per-MAC-group) register file."""
        return cls(
            name=name,
            size_bytes=size_bytes,
            r_energy_pj_per_byte=energy_model.REGISTER_ENERGY_PJ_PER_BYTE,
            w_energy_pj_per_byte=energy_model.REGISTER_ENERGY_PJ_PER_BYTE,
            bandwidth_bytes=math.inf,
            ports=2,
            per_pe=True,
            tier="Reg",
        )

    @classmethod
    def sram(cls, name: str, size_bytes: int, ports: int = 2) -> "MemoryInstance":
        """An on-chip SRAM with analytically-derived access energy.

        The reporting tier ("LB" / "GB") is inferred from the leading
        letters of the name ("LB2_IO" -> "LB").
        """
        cost = energy_model.sram_energy_pj_per_byte(size_bytes)
        prefix = name.split("_")[0].rstrip("0123456789")
        tier = prefix if prefix in ("LB", "GB") else "SRAM"
        return cls(
            name=name,
            size_bytes=size_bytes,
            r_energy_pj_per_byte=cost,
            w_energy_pj_per_byte=cost,
            bandwidth_bytes=energy_model.sram_bandwidth_bytes(size_bytes),
            ports=ports,
            tier=tier,
        )

    @classmethod
    def dram(cls, name: str = "DRAM") -> "MemoryInstance":
        """Off-chip DRAM: 64 bit/cycle, unbounded capacity."""
        return cls(
            name=name,
            size_bytes=1 << 40,
            r_energy_pj_per_byte=energy_model.DRAM_ENERGY_PJ_PER_BYTE,
            w_energy_pj_per_byte=energy_model.DRAM_ENERGY_PJ_PER_BYTE,
            bandwidth_bytes=energy_model.DRAM_BANDWIDTH_BYTES,
            ports=1,
            tier="DRAM",
        )

    @property
    def is_dram(self) -> bool:
        """Whether this instance models off-chip DRAM."""
        return self.size_bytes >= 1 << 40


@dataclass(frozen=True)
class MemoryLevel:
    """An instance placed at one hierarchy level for a set of operands."""

    instance: MemoryInstance
    operands: frozenset[str]

    def __post_init__(self) -> None:
        unknown = self.operands - set(OPERANDS)
        if unknown:
            raise ValueError(f"unknown operands {sorted(unknown)}")
        if not self.operands:
            raise ValueError("memory level must serve at least one operand")

    @property
    def name(self) -> str:
        return self.instance.name

    def serves(self, operand: str) -> bool:
        return operand in self.operands


def level(instance: MemoryInstance, operands: str) -> MemoryLevel:
    """Shorthand: ``level(lb, "IO")`` serves inputs and outputs."""
    return MemoryLevel(instance=instance, operands=frozenset(operands))
