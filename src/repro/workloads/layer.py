"""Layer specification for DNN workloads.

A layer is described by the seven classic convolution loop dimensions
(``K, C, OX, OY, FX, FY`` plus an implicit batch of one) together with
stride, padding and dilation.  The same representation covers regular
convolutions, depthwise convolutions, pooling, elementwise operations and
fully-connected layers; the :class:`OpType` selects how the three operands
(weights ``W``, inputs ``I``, outputs ``O``) relate to the loop dimensions.

This mirrors the workload input of DeFiNES (Fig. 5 of the paper): the
depth-first cost model only needs the loop-nest view of each layer plus the
spatial in/out geometry used for tile back-calculation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpType(enum.Enum):
    """The kind of operation a layer performs.

    The op type determines operand relevance (which loop dimensions index
    which operand) and whether the layer carries weights at all.
    """

    CONV = "conv"
    DEPTHWISE = "depthwise"
    POOL = "pool"
    ADD = "add"
    FC = "fc"

    @property
    def has_weights(self) -> bool:
        """Whether the layer has a weight operand with a memory footprint."""
        return self in (OpType.CONV, OpType.DEPTHWISE, OpType.FC)


#: Loop dimension names used throughout the mapping machinery.
LOOP_DIMS = ("K", "C", "OX", "OY", "FX", "FY")


@dataclass(frozen=True)
class LayerSpec:
    """A single DNN layer as a loop nest plus spatial geometry.

    Parameters
    ----------
    name:
        Unique name within a workload graph.
    op_type:
        The operation kind; see :class:`OpType`.
    k:
        Number of output channels.
    c:
        Number of input channels per group.  For depthwise layers this is 1
        and ``k`` equals the channel count.
    ox, oy:
        Output feature-map spatial width and height.
    fx, fy:
        Kernel spatial width and height.
    sx, sy:
        Stride in x and y.
    px, py:
        Padding (left/right symmetric in x, top/bottom symmetric in y).
    dx, dy:
        Dilation in x and y.
    act_bits, w_bits, psum_bits:
        Operand precisions in bits (activation, weight, partial sum).
    """

    name: str
    op_type: OpType = OpType.CONV
    k: int = 1
    c: int = 1
    ox: int = 1
    oy: int = 1
    fx: int = 1
    fy: int = 1
    sx: int = 1
    sy: int = 1
    px: int = 0
    py: int = 0
    dx: int = 1
    dy: int = 1
    act_bits: int = 8
    w_bits: int = 8
    psum_bits: int = 16
    #: Optional exact input spans (set for tile-scaled layers whose input
    #: window is clipped at feature-map borders); ``None`` = derived.
    ix_clip: int | None = None
    iy_clip: int | None = None

    def __post_init__(self) -> None:
        for attr in ("k", "c", "ox", "oy", "fx", "fy", "sx", "sy", "dx", "dy"):
            value = getattr(self, attr)
            if value < 1:
                raise ValueError(f"{self.name}: {attr} must be >= 1, got {value}")
        if self.px < 0 or self.py < 0:
            raise ValueError(f"{self.name}: padding must be >= 0")
        if self.op_type is OpType.DEPTHWISE and self.c != 1:
            raise ValueError(
                f"{self.name}: depthwise layers must have c == 1 (got {self.c})"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def ix(self) -> int:
        """Input feature-map width (clipped span for tile layers)."""
        if self.ix_clip is not None:
            return self.ix_clip
        return (self.ox - 1) * self.sx + (self.fx - 1) * self.dx + 1 - 2 * self.px

    @property
    def iy(self) -> int:
        """Input feature-map height (clipped span for tile layers)."""
        if self.iy_clip is not None:
            return self.iy_clip
        return (self.oy - 1) * self.sy + (self.fy - 1) * self.dy + 1 - 2 * self.py

    @property
    def in_channels(self) -> int:
        """Channel count of the input feature map.

        Depthwise, pooling and elementwise layers tie their input channel
        to the ``K`` loop (``c`` is 1 for them).
        """
        if self.op_type in (OpType.DEPTHWISE, OpType.POOL, OpType.ADD):
            return self.k
        return self.c

    @property
    def loop_sizes(self) -> dict[str, int]:
        """Loop-dimension sizes keyed by dimension name."""
        return {
            "K": self.k,
            "C": self.c,
            "OX": self.ox,
            "OY": self.oy,
            "FX": self.fx,
            "FY": self.fy,
        }

    # ------------------------------------------------------------------
    # Operation / data volume
    # ------------------------------------------------------------------
    @property
    def mac_count(self) -> int:
        """Total number of MAC (or ALU) operations in the layer."""
        return self.k * self.c * self.ox * self.oy * self.fx * self.fy

    @property
    def weight_count(self) -> int:
        """Number of weight elements (0 for weight-less layers)."""
        if not self.op_type.has_weights:
            return 0
        return self.k * self.c * self.fx * self.fy

    @property
    def weight_bytes(self) -> int:
        """Weight footprint in bytes."""
        return (self.weight_count * self.w_bits + 7) // 8

    @property
    def output_count(self) -> int:
        """Number of output feature-map elements."""
        return self.k * self.ox * self.oy

    @property
    def output_bytes(self) -> int:
        """Output feature-map footprint in bytes (activation precision)."""
        return (self.output_count * self.act_bits + 7) // 8

    @property
    def input_count(self) -> int:
        """Number of input feature-map elements (without halo clipping)."""
        return self.in_channels * self.ix * self.iy

    @property
    def input_bytes(self) -> int:
        """Input feature-map footprint in bytes."""
        return (self.input_count * self.act_bits + 7) // 8

    # ------------------------------------------------------------------
    # Operand relevance (used by the access-count model)
    # ------------------------------------------------------------------
    def relevant_dims(self, operand: str) -> frozenset[str]:
        """Loop dimensions that index ``operand`` (one of ``W``, ``I``, ``O``).

        Irrelevant dimensions provide temporal/spatial reuse for the
        operand.  Depthwise and pooling layers tie the input channel to the
        ``K`` loop, which is why ``K`` is input-relevant for them.
        """
        if operand == "W":
            if not self.op_type.has_weights:
                return frozenset()
            return frozenset({"K", "C", "FX", "FY"})
        if operand == "I":
            dims = {"C", "OX", "OY", "FX", "FY"}
            if self.op_type in (OpType.DEPTHWISE, OpType.POOL, OpType.ADD):
                dims.add("K")
            return frozenset(dims)
        if operand == "O":
            return frozenset({"K", "OX", "OY"})
        raise ValueError(f"unknown operand {operand!r}")

    def operand_bits(self, operand: str) -> int:
        """Storage precision of one element of ``operand``."""
        if operand == "W":
            return self.w_bits
        if operand == "I":
            return self.act_bits
        if operand == "O":
            return self.act_bits
        raise ValueError(f"unknown operand {operand!r}")

    def scaled_to_tile(
        self,
        ox: int,
        oy: int,
        ix: int | None = None,
        iy: int | None = None,
        name_suffix: str = "",
    ) -> "LayerSpec":
        """Return a copy of this layer restricted to an ``ox`` x ``oy``
        output tile, used when evaluating one tile of a fused stack.

        Padding is dropped: tile halos are handled explicitly by the
        depth-first geometry, and ``ix``/``iy`` pin the exact input span
        (the window may be clipped at feature-map borders).
        """
        if ox < 1 or oy < 1:
            raise ValueError(f"tile size must be >= 1, got ({ox}, {oy})")
        return LayerSpec(
            name=self.name + name_suffix,
            op_type=self.op_type,
            k=self.k,
            c=self.c,
            ox=ox,
            oy=oy,
            fx=self.fx,
            fy=self.fy,
            sx=self.sx,
            sy=self.sy,
            px=0,
            py=0,
            dx=self.dx,
            dy=self.dy,
            act_bits=self.act_bits,
            w_bits=self.w_bits,
            psum_bits=self.psum_bits,
            ix_clip=ix,
            iy_clip=iy,
        )
