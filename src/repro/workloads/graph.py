"""Workload graph: a DAG of layers.

DeFiNES operates on whole networks, including branched topologies (Fig. 8
of the paper): residual connections, multi-consumer feature maps, and
joins.  We represent a workload as a directed acyclic graph whose nodes are
:class:`~repro.workloads.layer.LayerSpec` objects; an edge ``a -> b`` means
layer ``b`` consumes the output feature map of layer ``a``.  Layers without
predecessors consume the network input.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from .layer import LayerSpec


class WorkloadGraph:
    """A DAG of :class:`LayerSpec` nodes keyed by layer name."""

    def __init__(self, name: str = "workload") -> None:
        self.name = name
        self._graph: nx.DiGraph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_layer(self, layer: LayerSpec, inputs: Iterable[str] = ()) -> LayerSpec:
        """Add ``layer`` to the graph, consuming the outputs of ``inputs``.

        ``inputs`` is an iterable of existing layer names; an empty iterable
        marks the layer as consuming the external network input.
        """
        if layer.name in self._graph:
            raise ValueError(f"duplicate layer name {layer.name!r}")
        self._graph.add_node(layer.name, layer=layer)
        for src in inputs:
            if src not in self._graph:
                raise KeyError(f"unknown input layer {src!r} for {layer.name!r}")
            self._graph.add_edge(src, layer.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(layer.name)
            raise ValueError(f"adding {layer.name!r} would create a cycle")
        return layer

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.topological_layers())

    def layer(self, name: str) -> LayerSpec:
        """Look up a layer by name."""
        try:
            return self._graph.nodes[name]["layer"]
        except KeyError as exc:
            raise KeyError(f"no layer named {name!r} in {self.name!r}") from exc

    def layers(self) -> list[LayerSpec]:
        """All layers in insertion-stable topological order."""
        return self.topological_layers()

    def topological_layers(self) -> list[LayerSpec]:
        """Layers in insertion order, which builders keep topological.

        ``add_layer`` only accepts already-present layers as inputs, so
        insertion order is always a valid topological order.
        """
        return [self._graph.nodes[n]["layer"] for n in self._graph.nodes]

    def predecessors(self, name: str) -> list[LayerSpec]:
        """Producing layers of ``name`` (empty for input layers)."""
        return [self._graph.nodes[p]["layer"] for p in self._graph.predecessors(name)]

    def successors(self, name: str) -> list[LayerSpec]:
        """Consuming layers of ``name``."""
        return [self._graph.nodes[s]["layer"] for s in self._graph.successors(name)]

    def is_source(self, name: str) -> bool:
        """Whether the layer consumes the external network input."""
        return self._graph.in_degree(name) == 0

    def is_sink(self, name: str) -> bool:
        """Whether the layer produces a network output."""
        return self._graph.out_degree(name) == 0

    def sources(self) -> list[LayerSpec]:
        """Layers consuming the external network input."""
        return [l for l in self.topological_layers() if self.is_source(l.name)]

    def sinks(self) -> list[LayerSpec]:
        """Layers producing network outputs."""
        return [l for l in self.topological_layers() if self.is_sink(l.name)]

    def has_branches(self) -> bool:
        """Whether any feature map has more than one consumer or producer."""
        return any(
            self._graph.out_degree(n) > 1 or self._graph.in_degree(n) > 1
            for n in self._graph.nodes
        )

    def subgraph(self, names: Iterable[str]) -> "WorkloadGraph":
        """A new workload graph restricted to ``names`` (edges preserved)."""
        names = list(names)
        sub = WorkloadGraph(name=f"{self.name}[{len(names)} layers]")
        keep = set(names)
        for layer in self.topological_layers():
            if layer.name not in keep:
                continue
            inputs = [p.name for p in self.predecessors(layer.name) if p.name in keep]
            sub.add_layer(layer, inputs)
        return sub

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_mac_count(self) -> int:
        """Total MACs over all layers."""
        return sum(l.mac_count for l in self.topological_layers())

    @property
    def total_weight_bytes(self) -> int:
        """Total weight footprint over all layers, in bytes."""
        return sum(l.weight_bytes for l in self.topological_layers())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkloadGraph({self.name!r}, {len(self)} layers)"
