"""Fluent builder helpers for constructing workload graphs.

The zoo networks (FSRCNN, ResNet18, ...) are built with these helpers; they
compute output geometry from the input geometry the same way a framework
would, so network definitions read like model code.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import WorkloadGraph
from .layer import LayerSpec, OpType


def conv_out_size(in_size: int, kernel: int, stride: int, pad: int, dilation: int = 1) -> int:
    """Output spatial size of a convolution along one axis."""
    effective = (kernel - 1) * dilation + 1
    out = (in_size + 2 * pad - effective) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution output collapses: in={in_size} k={kernel} s={stride} p={pad}"
        )
    return out


@dataclass
class _Tensor:
    """The feature map flowing between builder calls."""

    layer_name: str | None  # None for the external input
    channels: int
    x: int
    y: int


class WorkloadBuilder:
    """Builds a :class:`WorkloadGraph` layer by layer.

    Each method returns a :class:`_Tensor` handle that can be fed to later
    calls, which makes branching (e.g. residual blocks) natural::

        b = WorkloadBuilder("resnet-block", channels=64, x=56, y=56)
        t = b.input()
        skip = t
        t = b.conv("c1", t, k=64, f=3, pad=1)
        t = b.conv("c2", t, k=64, f=3, pad=1)
        t = b.add("join", t, skip)
        wl = b.build()
    """

    def __init__(
        self,
        name: str,
        channels: int,
        x: int,
        y: int,
        act_bits: int = 8,
        w_bits: int = 8,
        psum_bits: int = 16,
    ) -> None:
        self.graph = WorkloadGraph(name=name)
        self._input = _Tensor(None, channels, x, y)
        self._act_bits = act_bits
        self._w_bits = w_bits
        self._psum_bits = psum_bits

    def input(self) -> _Tensor:
        """Handle for the external network input."""
        return self._input

    # ------------------------------------------------------------------
    def _add(self, layer: LayerSpec, parents: list[_Tensor]) -> _Tensor:
        inputs = [p.layer_name for p in parents if p.layer_name is not None]
        self.graph.add_layer(layer, inputs)
        return _Tensor(layer.name, layer.k, layer.ox, layer.oy)

    def conv(
        self,
        name: str,
        src: _Tensor,
        k: int,
        f: int,
        stride: int = 1,
        pad: int | None = None,
        dilation: int = 1,
    ) -> _Tensor:
        """Standard convolution. ``pad=None`` means 'same' padding when
        stride is 1, else ``f // 2``."""
        if pad is None:
            pad = (f - 1) * dilation // 2
        ox = conv_out_size(src.x, f, stride, pad, dilation)
        oy = conv_out_size(src.y, f, stride, pad, dilation)
        layer = LayerSpec(
            name=name,
            op_type=OpType.CONV,
            k=k,
            c=src.channels,
            ox=ox,
            oy=oy,
            fx=f,
            fy=f,
            sx=stride,
            sy=stride,
            px=pad,
            py=pad,
            dx=dilation,
            dy=dilation,
            act_bits=self._act_bits,
            w_bits=self._w_bits,
            psum_bits=self._psum_bits,
        )
        return self._add(layer, [src])

    def depthwise(
        self,
        name: str,
        src: _Tensor,
        f: int,
        stride: int = 1,
        pad: int | None = None,
    ) -> _Tensor:
        """Depthwise convolution (channel multiplier 1)."""
        if pad is None:
            pad = (f - 1) // 2
        ox = conv_out_size(src.x, f, stride, pad)
        oy = conv_out_size(src.y, f, stride, pad)
        layer = LayerSpec(
            name=name,
            op_type=OpType.DEPTHWISE,
            k=src.channels,
            c=1,
            ox=ox,
            oy=oy,
            fx=f,
            fy=f,
            sx=stride,
            sy=stride,
            px=pad,
            py=pad,
            act_bits=self._act_bits,
            w_bits=self._w_bits,
            psum_bits=self._psum_bits,
        )
        return self._add(layer, [src])

    def pool(
        self,
        name: str,
        src: _Tensor,
        f: int,
        stride: int | None = None,
        pad: int = 0,
    ) -> _Tensor:
        """Max/average pooling (modeled identically for cost purposes)."""
        if stride is None:
            stride = f
        ox = conv_out_size(src.x, f, stride, pad)
        oy = conv_out_size(src.y, f, stride, pad)
        layer = LayerSpec(
            name=name,
            op_type=OpType.POOL,
            k=src.channels,
            c=1,
            ox=ox,
            oy=oy,
            fx=f,
            fy=f,
            sx=stride,
            sy=stride,
            px=pad,
            py=pad,
            act_bits=self._act_bits,
            w_bits=self._w_bits,
            psum_bits=self._psum_bits,
        )
        return self._add(layer, [src])

    def add(self, name: str, a: _Tensor, b: _Tensor) -> _Tensor:
        """Elementwise addition join (residual connections)."""
        if (a.channels, a.x, a.y) != (b.channels, b.x, b.y):
            raise ValueError(
                f"{name}: add operands differ: "
                f"{(a.channels, a.x, a.y)} vs {(b.channels, b.x, b.y)}"
            )
        layer = LayerSpec(
            name=name,
            op_type=OpType.ADD,
            k=a.channels,
            c=1,
            ox=a.x,
            oy=a.y,
            fx=1,
            fy=1,
            act_bits=self._act_bits,
            w_bits=self._w_bits,
            psum_bits=self._psum_bits,
        )
        return self._add(layer, [a, b])

    def fc(self, name: str, src: _Tensor, k: int) -> _Tensor:
        """Fully connected layer over a (flattened) feature map."""
        layer = LayerSpec(
            name=name,
            op_type=OpType.FC,
            k=k,
            c=src.channels * src.x * src.y,
            ox=1,
            oy=1,
            fx=1,
            fy=1,
            act_bits=self._act_bits,
            w_bits=self._w_bits,
            psum_bits=self._psum_bits,
        )
        return self._add(layer, [src])

    def build(self) -> WorkloadGraph:
        """Finalize and return the workload graph."""
        if len(self.graph) == 0:
            raise ValueError("workload has no layers")
        return self.graph
