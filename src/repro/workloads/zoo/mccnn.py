"""MC-CNN fast [33] — stereo matching feature network.

Four 3x3 convolution layers of 64 channels on a KITTI-sized grayscale
frame (1242x375).  Weight footprint with 8-bit weights is 108.56 KB,
matching Table I(b)'s 108.6 KB; the maximum feature map is 28.4 MB
(paper: 29.1 MB).
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph


def mccnn(x: int = 1242, y: int = 375, width: int = 64, depth: int = 4) -> WorkloadGraph:
    """Build MC-CNN fast's feature tower: ``depth`` 3x3 layers."""
    b = WorkloadBuilder("mccnn", channels=1, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=width, f=3, pad=1)
    for i in range(2, depth + 1):
        t = b.conv(f"L{i}", t, k=width, f=3, pad=1)
    return b.build()
