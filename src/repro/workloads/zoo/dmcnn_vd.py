"""DMCNN-VD [30] — deep demosaicing network (VDSR-style).

20 convolution layers of 3x3 kernels: 3->64, eighteen 64->64 layers and a
final 64->3 reconstruction layer.  With 8-bit weights this gives 651.4 KB
of weights, matching Table I(b)'s 651.3 KB; the 768x576 grid puts the
maximum feature map at 27.0 MB (paper: 26.7 MB) and the average at
~24.5 MB (paper: 24.1 MB).
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph


def dmcnn_vd(x: int = 768, y: int = 576, depth: int = 20, width: int = 64) -> WorkloadGraph:
    """Build DMCNN-VD with ``depth`` 3x3 layers of ``width`` channels."""
    if depth < 2:
        raise ValueError("DMCNN-VD needs at least input and output layers")
    b = WorkloadBuilder("dmcnn_vd", channels=3, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=width, f=3, pad=1)
    for i in range(2, depth):
        t = b.conv(f"L{i}", t, k=width, f=3, pad=1)
    b.conv(f"L{depth}", t, k=3, f=3, pad=1)
    return b.build()
