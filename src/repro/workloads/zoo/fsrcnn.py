"""FSRCNN [5] — super-resolution CNN, the paper's main case-study workload.

Structure (d=56, s=12, m=4): feature extraction 5x5, shrink 1x1, four 3x3
mapping layers, expand 1x1, and a 9x9 reconstruction layer.  All layers are
dimensioned on the 960x540 output grid used throughout the paper (Fig. 6's
tile-type example, case study 1): the total MAC count (~6.5 G) and the
maximum feature-map size (960*540*56 = 27.7 MB vs. Table I(b)'s 28.5 MB)
only line up when every layer runs at the output resolution.

The final 9x9 stride-3 deconvolution of FSRCNN is modeled in its
subpixel-equivalent form: a 3x3 convolution with 9 phase output channels
at output resolution (each phase sees a 3x3 subsampled slice of the 9x9
kernel).  This preserves the deconvolution's MAC count and weight volume
exactly while keeping the loop nest dense — the standard way such layers
run on conv accelerators (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph

#: Final output feature-map size used in the paper's case study 1.
OUTPUT_X = 960
OUTPUT_Y = 540


def fsrcnn(x: int = OUTPUT_X, y: int = OUTPUT_Y, d: int = 56, s: int = 12, m: int = 4) -> WorkloadGraph:
    """Build FSRCNN with feature dimension ``d``, shrink dimension ``s`` and
    ``m`` mapping layers on an ``x`` by ``y`` grid."""
    b = WorkloadBuilder("fsrcnn", channels=1, x=x, y=y)
    t = b.input()
    t = b.conv("L1_feature_extract", t, k=d, f=5, pad=2)
    t = b.conv("L2_shrink", t, k=s, f=1)
    for i in range(m):
        t = b.conv(f"L{3 + i}_map", t, k=s, f=3, pad=1)
    t = b.conv(f"L{3 + m}_expand", t, k=d, f=1)
    b.conv(f"L{4 + m}_reconstruct", t, k=9, f=3, pad=1)
    return b.build()
