"""Workload zoo: the five case-study networks of Table I(b) plus the
DepFiN-validation reference network (Section IV)."""

from __future__ import annotations

from typing import Callable

from ..graph import WorkloadGraph
from .dmcnn_vd import dmcnn_vd
from .fsrcnn import fsrcnn
from .mccnn import mccnn
from .mobilenet_v1 import mobilenet_v1
from .reference import reference_net
from .resnet18 import resnet18

#: Table I(b) workloads in paper order, plus the reference net.
WORKLOAD_FACTORIES: dict[str, Callable[[], WorkloadGraph]] = {
    "fsrcnn": fsrcnn,
    "dmcnn_vd": dmcnn_vd,
    "mccnn": mccnn,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "reference": reference_net,
}


def get_workload(name: str) -> WorkloadGraph:
    """Build a zoo workload by name."""
    try:
        return WORKLOAD_FACTORIES[name]()
    except KeyError as exc:
        known = ", ".join(sorted(WORKLOAD_FACTORIES))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from exc


__all__ = [
    "WORKLOAD_FACTORIES",
    "get_workload",
    "fsrcnn",
    "dmcnn_vd",
    "mccnn",
    "mobilenet_v1",
    "resnet18",
    "reference_net",
]
