"""ResNet18 [8] — the paper's second weight-dominant workload, and the one
that exercises DeFiNES' branch handling (Fig. 8): every residual block is a
branch that must be fused atomically or not at all.

Standard structure on 224x224x3 inputs: 7x7 stride-2 stem, 3x3 stride-2
max pool, four stages of two basic blocks (with 1x1 stride-2 projection
shortcuts at stage transitions), global average pooling, 1000-way
classifier.  8-bit weights give ~11.2 MB, matching Table I(b)'s 11 MB.
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph

#: (output channels, stride of the first block) per stage.
_STAGES = ((64, 1), (128, 2), (256, 2), (512, 2))


def resnet18(x: int = 224, y: int = 224, classes: int = 1000) -> WorkloadGraph:
    """Build ResNet18 with basic residual blocks."""
    b = WorkloadBuilder("resnet18", channels=3, x=x, y=y)
    t = b.input()
    t = b.conv("stem", t, k=64, f=7, stride=2, pad=3)
    t = b.pool("maxpool", t, f=3, stride=2, pad=1)
    for s, (channels, first_stride) in enumerate(_STAGES, start=1):
        for blk in (1, 2):
            stride = first_stride if blk == 1 else 1
            prefix = f"s{s}b{blk}"
            skip = t
            out = b.conv(f"{prefix}_conv1", t, k=channels, f=3, stride=stride, pad=1)
            out = b.conv(f"{prefix}_conv2", out, k=channels, f=3, pad=1)
            if stride != 1 or skip.channels != channels:
                skip = b.conv(f"{prefix}_proj", skip, k=channels, f=1, stride=stride, pad=0)
            t = b.add(f"{prefix}_add", out, skip)
    t = b.pool("avgpool", t, f=t.x)
    b.fc("classifier", t, k=classes)
    return b.build()
