"""The paper's custom reference network used for DepFiN validation
(Section IV): ten 3x3 layers of K=32 followed by a 1x1 layer of K=16,
operating on 1280x720x3 inputs.
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph


def reference_net(x: int = 1280, y: int = 720) -> WorkloadGraph:
    """Build the 11-layer DepFiN validation reference network."""
    b = WorkloadBuilder("reference", channels=3, x=x, y=y)
    t = b.input()
    for i in range(1, 11):
        t = b.conv(f"L{i}", t, k=32, f=3, pad=1)
    b.conv("L11", t, k=16, f=1)
    return b.build()
