"""MobileNetV1 [10] — the paper's first weight-dominant workload.

Standard width-1.0 structure on 224x224x3 inputs: a 3x3 stride-2 stem and
thirteen depthwise-separable blocks, followed by global average pooling
and a 1000-way classifier.  With 8-bit weights the footprint is ~4.0 MB,
matching Table I(b).
"""

from __future__ import annotations

from ..builder import WorkloadBuilder
from ..graph import WorkloadGraph

#: (stride of the depthwise conv, output channels of the pointwise conv)
_BLOCKS = (
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
)


def mobilenet_v1(x: int = 224, y: int = 224, classes: int = 1000) -> WorkloadGraph:
    """Build MobileNetV1 (width multiplier 1.0)."""
    b = WorkloadBuilder("mobilenet_v1", channels=3, x=x, y=y)
    t = b.input()
    t = b.conv("stem", t, k=32, f=3, stride=2, pad=1)
    for i, (stride, out_ch) in enumerate(_BLOCKS, start=1):
        t = b.depthwise(f"dw{i}", t, f=3, stride=stride, pad=1)
        t = b.conv(f"pw{i}", t, k=out_ch, f=1)
    t = b.pool("avgpool", t, f=t.x)
    b.fc("classifier", t, k=classes)
    return b.build()
