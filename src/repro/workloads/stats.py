"""Workload statistics used by Table I(b) of the paper.

Reports per-network: average / maximum feature-map size and total weight
size, which is what separates activation-dominant workloads (FSRCNN,
DMCNN-VD, MC-CNN) from weight-dominant ones (MobileNetV1, ResNet18).
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import WorkloadGraph


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics for a workload (Table I(b) columns)."""

    name: str
    layer_count: int
    total_mac_count: int
    total_weight_bytes: int
    avg_feature_map_bytes: float
    max_feature_map_bytes: int

    @property
    def is_activation_dominant(self) -> bool:
        """Heuristic from the paper: feature maps dwarf weights."""
        return self.avg_feature_map_bytes > self.total_weight_bytes


def feature_map_sizes(workload: WorkloadGraph) -> list[int]:
    """Per-feature-map sizes in bytes: the network input plus every layer
    output, matching how the paper reports 'Aver./Max. Feature Map'."""
    layers = workload.topological_layers()
    sizes: list[int] = []
    for layer in layers:
        if workload.is_source(layer.name):
            sizes.append(layer.input_bytes)
    sizes.extend(layer.output_bytes for layer in layers)
    return sizes


def workload_stats(workload: WorkloadGraph) -> WorkloadStats:
    """Compute Table I(b)-style statistics for ``workload``."""
    sizes = feature_map_sizes(workload)
    return WorkloadStats(
        name=workload.name,
        layer_count=len(workload),
        total_mac_count=workload.total_mac_count,
        total_weight_bytes=workload.total_weight_bytes,
        avg_feature_map_bytes=sum(sizes) / len(sizes),
        max_feature_map_bytes=max(sizes),
    )
