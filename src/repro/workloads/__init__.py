"""Workload substrate: layer specs, workload DAGs and the network zoo."""

from .builder import WorkloadBuilder, conv_out_size
from .graph import WorkloadGraph
from .layer import LOOP_DIMS, LayerSpec, OpType
from .stats import WorkloadStats, feature_map_sizes, workload_stats

__all__ = [
    "LOOP_DIMS",
    "LayerSpec",
    "OpType",
    "WorkloadGraph",
    "WorkloadBuilder",
    "conv_out_size",
    "WorkloadStats",
    "feature_map_sizes",
    "workload_stats",
]
