"""DeFiNES reproduction: fast analytical exploration of the depth-first
(layer-fused) scheduling space for DNN accelerators.

Reimplementation of Mei, Goetschalckx, Symons & Verhelst, "DeFiNES:
Enabling Fast Exploration of the Depth-first Scheduling Space for DNN
Accelerators through Analytical Modeling" (HPCA 2023), including its
ZigZag/LOMA substrates, the Table I workload and accelerator zoos, and
the evaluation harness.

Quickstart::

    from repro import (
        DepthFirstEngine, DFStrategy, OverlapMode,
        get_workload, get_accelerator,
    )

    engine = DepthFirstEngine(get_accelerator("meta_proto_like_df"))
    result = engine.evaluate(
        get_workload("fsrcnn"),
        DFStrategy(tile_x=60, tile_y=72, mode=OverlapMode.FULLY_CACHED),
    )
    print(result.describe())
"""

from .core import (
    ALL_MODES,
    PAPER_DIAGONAL,
    PAPER_TILE_GRID_X,
    PAPER_TILE_GRID_Y,
    DepthFirstEngine,
    DFStrategy,
    MemLevelPolicy,
    OverlapMode,
    ScheduleResult,
    Stack,
    StackBoundary,
    StackResult,
    backcalculate,
    best_combination,
    best_point,
    best_single_strategy,
    evaluate_layer_by_layer,
    evaluate_single_layer,
    partition_stacks,
    sweep,
)
from .dse import (
    DesignPoint,
    DesignSpace,
    DSEResult,
    DSERunner,
    ExhaustiveSearch,
    GeneticSearch,
    MemoryBudgetConstraint,
    ObjectiveCapConstraint,
    ParetoFrontier,
    PartitionAxis,
    RandomSearch,
    Scenario,
)
from .explore import EvalJob, EvalResult, Executor, SweepSpec
from .hardware import Accelerator, MemoryInstance, MemoryLevel, build_accelerator, level
from .hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator
from .mapping import CostResult, MappingCache, MappingSearchEngine, SearchConfig
from .workloads import (
    LayerSpec,
    OpType,
    WorkloadBuilder,
    WorkloadGraph,
    workload_stats,
)
from .workloads.zoo import WORKLOAD_FACTORIES, get_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DepthFirstEngine",
    "DFStrategy",
    "OverlapMode",
    "StackBoundary",
    "MemLevelPolicy",
    "ScheduleResult",
    "StackResult",
    "Stack",
    "partition_stacks",
    "backcalculate",
    "sweep",
    "best_point",
    "best_single_strategy",
    "best_combination",
    "evaluate_single_layer",
    "evaluate_layer_by_layer",
    "ALL_MODES",
    "PAPER_DIAGONAL",
    "PAPER_TILE_GRID_X",
    "PAPER_TILE_GRID_Y",
    # hardware
    "Accelerator",
    "build_accelerator",
    "MemoryInstance",
    "MemoryLevel",
    "level",
    "ACCELERATOR_FACTORIES",
    "get_accelerator",
    # dse (multi-objective exploration)
    "DesignPoint",
    "DesignSpace",
    "DSEResult",
    "DSERunner",
    "ParetoFrontier",
    "PartitionAxis",
    "ExhaustiveSearch",
    "RandomSearch",
    "GeneticSearch",
    "MemoryBudgetConstraint",
    "ObjectiveCapConstraint",
    "Scenario",
    # explore (runtime)
    "EvalJob",
    "EvalResult",
    "Executor",
    "SweepSpec",
    # mapping
    "MappingSearchEngine",
    "MappingCache",
    "SearchConfig",
    "CostResult",
    # workloads
    "LayerSpec",
    "OpType",
    "WorkloadGraph",
    "WorkloadBuilder",
    "workload_stats",
    "WORKLOAD_FACTORIES",
    "get_workload",
]
