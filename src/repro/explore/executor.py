"""Parallel sweep executor: runs :class:`~repro.explore.spec.SweepSpec`
job lists serially or across worker processes.

Design rules:

* **Determinism** — results come back in job order and the parallel
  backend is bit-identical to the serial one: every job is an
  independent evaluation, and the mapping search is deterministic, so
  cache state (cold, warm, or pre-warmed) never changes a result, only
  how fast it is produced.
* **Cache flow** — the executor owns a
  :class:`~repro.mapping.cache.MappingCache`.  Serial runs share it
  across all engines; parallel runs pre-warm each worker process with a
  snapshot of it and harvest the workers' new entries back, so a
  subsequent run (or a :meth:`~repro.mapping.cache.MappingCache.save`)
  benefits from everything any worker learned.
* **Shipping** — jobs may reference zoo workloads/accelerators by name,
  which keeps the pickled payload tiny; objects are pickled as-is.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from .. import obs
from ..core.results import ScheduleResult, StackResult
from ..core.scheduler import DepthFirstEngine
from ..core.stacks import Stack
from ..core.strategy import DFStrategy
from ..mapping.cache import MappingCache
from ..mapping.cost import Objective, resolve_objective
from ..mapping.loma import SearchConfig
from .spec import EvalJob, SweepSpec


@dataclass(frozen=True)
class EvalResult:
    """One evaluated job: a ``ScheduleResult`` for ``"schedule"`` jobs,
    a ``StackResult`` for ``"stack"`` jobs."""

    job: EvalJob
    result: "ScheduleResult | StackResult"
    index: int

    @property
    def strategy(self) -> DFStrategy:
        """The evaluated strategy (``SweepPoint``-compatible)."""
        return self.job.strategy

    def score(self, objective: "str | Objective") -> float:
        return resolve_objective(objective)(self.result.total)


def _resolve_accelerator(ref):
    if isinstance(ref, str):
        from ..hardware.zoo import get_accelerator

        return get_accelerator(ref)
    return ref


def _resolve_workload(ref):
    if isinstance(ref, str):
        from ..workloads.zoo import get_workload

        return get_workload(ref)
    return ref


def _ref_key(ref) -> "str | int":
    return ref if isinstance(ref, str) else id(ref)


class _JobRunner:
    """Evaluates jobs against per-accelerator engines sharing one cache.

    Used directly by the serial backend, as process-global state by each
    worker of the parallel backend, and per shard by the long-lived
    evaluation service.  Object references memoize by ``id()``, which a
    service shard sees fresh for every unpickled job — so both memos are
    capacity-bounded (oldest out) to keep a long-lived runner's memory
    flat; zoo-name references always re-hit their entry.
    """

    #: Per-memo capacity (engines and workloads each).
    MEMO_BOUND = 64

    def __init__(
        self,
        search_config: SearchConfig | None,
        policy,
        cache: MappingCache,
    ) -> None:
        self.search_config = search_config
        self.policy = policy
        self.cache = cache
        self._engines: dict[str | int, DepthFirstEngine] = {}
        self._workloads: dict[str | int, object] = {}

    @classmethod
    def _bound(cls, memo: dict) -> None:
        while len(memo) > cls.MEMO_BOUND:
            del memo[next(iter(memo))]

    def engine_for(self, job: EvalJob) -> DepthFirstEngine:
        key = _ref_key(job.accelerator)
        engine = self._engines.get(key)
        if engine is None:
            engine = DepthFirstEngine(
                _resolve_accelerator(job.accelerator),
                self.search_config,
                self.policy,
                cache=self.cache,
            )
            self._engines[key] = engine
            self._bound(self._engines)
        return engine

    def workload_for(self, job: EvalJob):
        key = _ref_key(job.workload)
        workload = self._workloads.get(key)
        if workload is None:
            workload = _resolve_workload(job.workload)
            self._workloads[key] = workload
            self._bound(self._workloads)
        return workload

    def evaluate(self, job: EvalJob) -> "ScheduleResult | StackResult":
        engine = self.engine_for(job)
        workload = self.workload_for(job)
        if job.kind == "stack":
            layers = tuple(workload.layer(n) for n in job.stack_layers)
            stack = Stack(
                index=job.stack_index,
                workload=workload.subgraph(job.stack_layers),
                layers=layers,
            )
            return engine.evaluate_stack(
                workload,
                job.strategy,
                stack,
                input_locations=dict(job.input_locations),
            )
        return engine.evaluate(workload, job.strategy)


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level: must be picklable / importable)
# ----------------------------------------------------------------------
_WORKER_RUNNER: list[_JobRunner] = []


def _worker_init(search_config, policy, warm_entries, obs_enabled=False) -> None:
    """Process-pool initializer: build this worker's runner, pre-warmed
    with the parent cache's entries.  Telemetry restarts from a clean
    worker-local registry (no tracer — the trace file is single-writer)
    so the parent's fork-merge harvest never double-counts."""
    obs.worker_begin(obs_enabled)
    cache = MappingCache()
    cache.merge(warm_entries)
    _WORKER_RUNNER.clear()
    _WORKER_RUNNER.append(_JobRunner(search_config, policy, cache))


def _worker_run_shard(shard: "list[tuple[int, EvalJob]]"):
    """Evaluate one shard; returns indexed results, the cache entries
    this worker learned, its (hits, misses) delta — so the parent can
    harvest new results *and* keep aggregate statistics truthful — and
    the worker's telemetry registry dump (``None`` when telemetry is
    off), fork-merged into the parent registry."""
    runner = _WORKER_RUNNER[0]
    baseline = runner.cache.keys()
    hits0, misses0 = runner.cache.hits, runner.cache.misses
    results = [(index, runner.evaluate(job)) for index, job in shard]
    stats = (runner.cache.hits - hits0, runner.cache.misses - misses0)
    return results, runner.cache.delta(baseline), stats, obs.harvest()


#: Executor backends; ``None`` auto-selects serial/process from ``jobs``.
BACKENDS = ("serial", "process", "service")


class Executor:
    """Runs sweep jobs with a serial, process-pool or service backend.

    Parameters
    ----------
    jobs:
        Worker processes (service: shards).  ``1`` (default) evaluates
        in-process; ``0`` or ``None`` means one worker per CPU.
    search_config, policy:
        Engine construction knobs, shared by every evaluation.
    cache:
        A :class:`MappingCache` handle shared across the run (and, if
        disk-backed, across runs).  A private in-memory cache is created
        when omitted.  A :class:`~repro.serve.cache_server.CacheClient`
        is accepted anywhere a cache is: every backend then reads and
        writes the remote server's live table.
    backend:
        ``None`` (default) auto-selects: serial for ``jobs=1``, the
        process pool otherwise.  ``"service"`` runs batches through a
        long-lived :class:`~repro.serve.service.EvalService` whose
        ``jobs`` shards share one live cache server — hits propagate
        *between* workers mid-run, and the service (with its warm
        shards) persists across ``run()`` calls until :meth:`close`.
    max_pending:
        Service backend only: in-flight bound (backpressure).

    Every backend returns bit-identical results for the same job list.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        search_config: SearchConfig | None = None,
        policy=None,
        cache: MappingCache | None = None,
        backend: str | None = None,
        max_pending: int | None = None,
    ) -> None:
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self.jobs = jobs
        self.search_config = search_config
        self.policy = policy
        self.cache = cache if cache is not None else MappingCache()
        self.backend = backend
        self.max_pending = max_pending
        self._service = None
        self._service_client = None

    # ------------------------------------------------------------------
    def run(self, spec: "SweepSpec | Iterable[EvalJob]") -> list[EvalResult]:
        """Evaluate every job; results are returned in job order and are
        identical whichever backend ran them."""
        jobs = list(spec.jobs if isinstance(spec, SweepSpec) else spec)
        if not jobs:
            return []
        backend = self.backend
        if backend is None:
            backend = "serial" if self.jobs == 1 or len(jobs) == 1 else "process"
        if backend != "service" and (self.jobs == 1 or len(jobs) == 1):
            backend = "serial"
        with obs.span("executor.run", backend=backend, jobs=len(jobs)):
            if backend == "service":
                results = self._run_service(jobs)
            elif backend == "serial":
                results = self._run_serial(jobs)
            else:
                results = self._run_parallel(jobs)
        if obs.enabled:
            obs.metrics().counter(
                "executor_jobs_total", backend=backend
            ).inc(len(jobs))
        return results

    # ------------------------------------------------------------------
    # Service backend lifecycle
    # ------------------------------------------------------------------
    def _run_service(self, jobs: Sequence[EvalJob]) -> list[EvalResult]:
        if self._service is None:
            from ..serve.cache_server import CacheClient
            from ..serve.service import EvalService, ServiceClient

            if isinstance(self.cache, CacheClient):
                # The cache already lives behind a server: shards talk
                # to it directly instead of starting an embedded one.
                service = EvalService(
                    shards=self.jobs,
                    search_config=self.search_config,
                    policy=self.policy,
                    cache_address=self.cache.address,
                    max_pending=self.max_pending,
                )
            else:
                service = EvalService(
                    shards=self.jobs,
                    search_config=self.search_config,
                    policy=self.policy,
                    cache=self.cache,
                    max_pending=self.max_pending,
                )
            self._service = service.start()
            self._service_client = ServiceClient(self._service)
        return self._service_client.run(jobs)

    @property
    def service(self):
        """The live :class:`EvalService` of the service backend
        (``None`` until the first ``run()``, or on other backends)."""
        return self._service

    def close(self) -> None:
        """Stop the service backend's shards and embedded cache server
        (idempotent; other backends hold no long-lived state)."""
        service, self._service = self._service, None
        self._service_client = None
        if service is not None:
            service.stop()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run_serial(self, jobs: Sequence[EvalJob]) -> list[EvalResult]:
        runner = _JobRunner(self.search_config, self.policy, self.cache)
        return [
            EvalResult(job=job, result=runner.evaluate(job), index=i)
            for i, job in enumerate(jobs)
        ]

    def _run_parallel(self, jobs: Sequence[EvalJob]) -> list[EvalResult]:
        workers = min(self.jobs, len(jobs))
        # Round-robin sharding spreads expensive grid regions across
        # workers; one shard per worker maximizes in-worker cache reuse.
        shards: list[list[tuple[int, EvalJob]]] = [[] for _ in range(workers)]
        for i, job in enumerate(jobs):
            shards[i % workers].append((i, job))

        by_index: dict[int, object] = {}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(
                self.search_config,
                self.policy,
                self.cache.snapshot(),
                obs.enabled,
            ),
        ) as pool:
            futures = [pool.submit(_worker_run_shard, shard) for shard in shards]
            for future in futures:
                results, new_entries, (hits, misses), telemetry = future.result()
                self.cache.merge(new_entries)
                self.cache.hits += hits
                self.cache.misses += misses
                obs.absorb(telemetry)
                by_index.update(results)
        return [
            EvalResult(job=job, result=by_index[i], index=i)
            for i, job in enumerate(jobs)
        ]
