"""Declarative sweep specifications for the exploration runtime.

The paper's experiments are all grids of *independent* depth-first
evaluations: a tile-size/mode grid (case study 1), five strategies per
workload (case study 2), per-stack strategy searches (CS2's best
combination), and architecture x workload sweeps (case study 3).  This
module turns each of those shapes into an enumerable list of
:class:`EvalJob` so a single :class:`~repro.explore.executor.Executor`
can run any of them — serially or across worker processes — with
deterministic result ordering.

Workloads and accelerators may be referenced by zoo name (cheap to ship
to worker processes) or passed as objects (anything picklable works).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..core.strategy import DFStrategy, OverlapMode, StackBoundary

if TYPE_CHECKING:
    from ..hardware.accelerator import Accelerator
    from ..workloads.graph import WorkloadGraph

#: Reference to a zoo entry (by name) or a concrete object.
AcceleratorRef = "str | Accelerator"
WorkloadRef = "str | WorkloadGraph"

#: All overlap-storing modes, in the paper's Fig. 12 order.
DEFAULT_MODES = tuple(OverlapMode)


@dataclass(frozen=True)
class EvalJob:
    """One independent evaluation of the cost model.

    ``kind`` selects the entry point: ``"schedule"`` evaluates the whole
    workload under ``strategy`` (returns a ``ScheduleResult``);
    ``"stack"`` evaluates a single fused-layer stack — identified by
    ``stack_layers`` with pinned boundary ``input_locations`` — and
    returns a ``StackResult`` (the per-stack combination search of case
    study 2).
    """

    accelerator: "str | Accelerator"
    workload: "str | WorkloadGraph"
    strategy: DFStrategy
    kind: str = "schedule"
    stack_layers: tuple[str, ...] = ()
    stack_index: int = 0
    input_locations: tuple[tuple[str, int], ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("schedule", "stack"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "stack" and not self.stack_layers:
            raise ValueError("stack jobs need stack_layers")

    @property
    def accelerator_name(self) -> str:
        accel = self.accelerator
        return accel if isinstance(accel, str) else accel.name

    @property
    def workload_name(self) -> str:
        wl = self.workload
        return wl if isinstance(wl, str) else wl.name

    def describe(self) -> str:
        base = (
            f"{self.workload_name} on {self.accelerator_name} "
            f"[{self.strategy.describe()}]"
        )
        if self.kind == "stack":
            base += f" stack#{self.stack_index}"
        return base


@dataclass(frozen=True)
class SweepSpec:
    """An ordered, enumerable collection of evaluation jobs.

    Job order is the specification's deterministic identity: executors
    must return results in exactly this order, whatever backend runs
    them.  Specs concatenate with ``+`` so heterogeneous experiments
    (e.g. CS3's LBL baselines plus DF grids) can run as one batch.
    """

    jobs: tuple[EvalJob, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[EvalJob]:
        return iter(self.jobs)

    def __add__(self, other: "SweepSpec") -> "SweepSpec":
        return SweepSpec(self.jobs + other.jobs)

    # ------------------------------------------------------------------
    # Constructors for the experiment shapes of the paper
    # ------------------------------------------------------------------
    @classmethod
    def tile_grid(
        cls,
        accelerator: "str | Accelerator",
        workload: "str | WorkloadGraph",
        tile_sizes: Iterable[tuple[int, int]],
        modes: Sequence[OverlapMode] = DEFAULT_MODES,
        tag: str = "",
    ) -> "SweepSpec":
        """The CS1 grid: every (mode, tile size) combination, mode-major
        (the classic ``sweep`` order, shared with the DSE exhaustive
        backend via :func:`~repro.core.optimizer.grid_strategies`)."""
        from ..core.optimizer import grid_strategies

        return cls(
            tuple(
                EvalJob(
                    accelerator=accelerator,
                    workload=workload,
                    strategy=strategy,
                    tag=tag,
                )
                for strategy in grid_strategies(tile_sizes, modes)
            )
        )

    @classmethod
    def strategies(
        cls,
        accelerator: "str | Accelerator",
        workload: "str | WorkloadGraph",
        strategies: Iterable[DFStrategy],
        tag: str = "",
    ) -> "SweepSpec":
        """An explicit strategy list for one workload."""
        return cls(
            tuple(
                EvalJob(
                    accelerator=accelerator,
                    workload=workload,
                    strategy=strategy,
                    tag=tag,
                )
                for strategy in strategies
            )
        )

    @classmethod
    def multi_workload(
        cls,
        accelerator: "str | Accelerator",
        workloads: Iterable["str | WorkloadGraph"],
        strategies: Sequence[DFStrategy],
    ) -> "SweepSpec":
        """CS2 shape: the same strategies across workloads, workload-major."""
        jobs: list[EvalJob] = []
        for workload in workloads:
            jobs.extend(
                cls.strategies(accelerator, workload, strategies).jobs
            )
        return cls(tuple(jobs))

    @classmethod
    def multi_architecture(
        cls,
        accelerators: Iterable["str | Accelerator"],
        workloads: Sequence["str | WorkloadGraph"],
        strategies: Sequence[DFStrategy],
    ) -> "SweepSpec":
        """CS3 shape: strategies x workloads per architecture,
        architecture-major."""
        jobs: list[EvalJob] = []
        for accelerator in accelerators:
            jobs.extend(
                cls.multi_workload(accelerator, workloads, strategies).jobs
            )
        return cls(tuple(jobs))

    @classmethod
    def per_stack(
        cls,
        accelerator: "str | Accelerator",
        workload: "str | WorkloadGraph",
        stacks: Sequence[tuple[str, ...]],
        tile_sizes: Iterable[tuple[int, int]],
        modes: Sequence[OverlapMode] = DEFAULT_MODES,
        input_locations: tuple[tuple[str, int], ...] = (),
        stack_boundary: StackBoundary = StackBoundary.LOWEST_FIT,
    ) -> "SweepSpec":
        """The per-stack combination search: every (mode, tile) strategy
        for every stack, stack-major.  ``stacks`` are tuples of layer
        names (as from ``Stack.layer_names``); ``input_locations`` pins
        the boundary feature-map placements shared by all jobs."""
        tiles = tuple(tile_sizes)
        return cls(
            tuple(
                EvalJob(
                    accelerator=accelerator,
                    workload=workload,
                    strategy=DFStrategy(
                        tile_x=tx,
                        tile_y=ty,
                        mode=mode,
                        stack_boundary=stack_boundary,
                    ),
                    kind="stack",
                    stack_layers=tuple(layer_names),
                    stack_index=index,
                    input_locations=input_locations,
                )
                for index, layer_names in enumerate(stacks)
                for mode in modes
                for tx, ty in tiles
            )
        )
