"""Exploration runtime: declarative sweeps, parallel execution, and
persistent mapping caching.

The paper's experiments are large grids of independent cost-model
evaluations.  This subsystem runs them as first-class batches:

* :class:`SweepSpec` / :class:`EvalJob` — declarative job lists for the
  tile-grid, multi-strategy, per-stack, multi-workload and
  multi-architecture sweep shapes;
* :class:`Executor` — serial or ``ProcessPoolExecutor``-backed
  evaluation with deterministic, backend-independent results;
* :class:`MappingCache` — the shareable (and optionally disk-backed)
  store of LOMA search results that lets warm sweeps skip the mapping
  search entirely (re-exported from :mod:`repro.mapping.cache`).

Quick parallel sweep::

    from repro.explore import Executor, SweepSpec

    spec = SweepSpec.tile_grid("meta_proto_like_df", "fsrcnn",
                               [(4, 4), (16, 18), (60, 72)])
    results = Executor(jobs=4, cache=MappingCache("loma.json")).run(spec)
    best = min(results, key=lambda r: r.score("energy"))
"""

from ..mapping.cache import MappingCache
from .executor import BACKENDS, EvalResult, Executor
from .spec import DEFAULT_MODES, EvalJob, SweepSpec

__all__ = [
    "BACKENDS",
    "DEFAULT_MODES",
    "EvalJob",
    "EvalResult",
    "Executor",
    "MappingCache",
    "SweepSpec",
]
