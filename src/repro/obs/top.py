"""`repro top`: live fleet view over the cache server's wire ops.

The cache server already exposes everything a monitor needs — the
``stats`` op (table counters + live load) and the ``metrics`` op
(Prometheus exposition of the server process, which for an embedded
server includes its :class:`~repro.serve.service.EvalService` shard
counters).  This module polls those two ops and renders the deltas
between consecutive samples as rates: request throughput, evaluations
per second, per-shard utilization.

Kept free of any terminal dependency: :func:`sample_server` returns a
plain dict and :func:`top_report` a string, so the CLI loop (and the
tests) own cursor control and timing.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from .metrics import parse_prometheus, split_series

#: Stats-op request ops that correspond to one evaluation landing in
#: the table (used as the evals/s proxy when no service shards report).
_PUT_OPS = ("put", "put_many")


def sample_server(client: Any) -> dict[str, Any]:
    """One monitoring sample: the server's ``stats`` op, its parsed
    ``metrics`` exposition, and a monotonic timestamp for rate math.
    ``client`` is anything with the :class:`CacheClient` control
    surface (``server_stats()`` / ``server_metrics()``)."""
    stats = client.server_stats()
    exposition = client.server_metrics()["text"]
    return {
        "time": time.monotonic(),
        "stats": stats,
        "values": parse_prometheus(exposition),
    }


def _rate(
    curr: float, prev: float | None, dt: float | None
) -> float | None:
    if prev is None or dt is None or dt <= 0:
        return None
    return (curr - prev) / dt


def _fmt(value: Any, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != int(value) or abs(value) < 1000:
            return f"{value:.1f}{suffix}"
        value = int(value)
    return f"{value}{suffix}"


def _series_by_label(
    values: Mapping[str, float], name: str, label: str
) -> dict[str, float]:
    """``{label value: sample value}`` for one metric family."""
    out: dict[str, float] = {}
    for series, value in values.items():
        try:
            metric, labels = split_series(series)
        except ValueError:
            continue
        if metric == name and label in labels:
            out[labels[label]] = value
    return out


def _shard_rows(
    curr: dict[str, Any], prev: dict[str, Any] | None
) -> list[tuple[str, float, float | None, float | None]]:
    """Per-shard (shard, jobs, jobs/s, busy fraction) rows from the
    service counters an embedded :class:`EvalService` exports."""
    jobs = _series_by_label(curr["values"], "service_jobs_total", "shard")
    if not jobs:
        return []
    busy = _series_by_label(
        curr["values"], "service_exec_seconds_sum", "shard"
    )
    prev_jobs: dict[str, float] = {}
    prev_busy: dict[str, float] = {}
    dt: float | None = None
    if prev is not None:
        dt = curr["time"] - prev["time"]
        prev_jobs = _series_by_label(
            prev["values"], "service_jobs_total", "shard"
        )
        prev_busy = _series_by_label(
            prev["values"], "service_exec_seconds_sum", "shard"
        )
    rows: list[tuple[str, float, float | None, float | None]] = []
    for shard in sorted(jobs, key=lambda s: (len(s), s)):
        rows.append(
            (
                shard,
                jobs[shard],
                _rate(jobs[shard], prev_jobs.get(shard), dt),
                _rate(busy.get(shard, 0.0), prev_busy.get(shard), dt),
            )
        )
    return rows


def top_report(
    address: str, current: dict[str, Any], previous: dict[str, Any] | None = None
) -> str:
    """Render one refresh frame.  With a ``previous`` sample the frame
    includes rates (requests/s, evals/s, shard utilization); the first
    frame shows absolute counters only."""
    stats = current["stats"]
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.1%}" if lookups else "-"
    lines = [
        f"repro top — {address} — "
        + time.strftime("%H:%M:%S", time.localtime()),
        "",
        f"  cache     entries {_fmt(stats.get('size'))}"
        f"   hits {_fmt(hits)}   misses {_fmt(misses)}"
        f"   hit rate {hit_rate}",
        f"  load      connections {_fmt(stats.get('connections'))}"
        f" ({_fmt(stats.get('connections_total'))} total)"
        f"   in-flight {_fmt(stats.get('in_flight'))}"
        f"   queued {_fmt(stats.get('queue_depth'))}"
        f"   unauthorized {_fmt(stats.get('unauthorized'))}",
    ]
    requests = stats.get("requests", {})
    if requests:
        ops = "   ".join(
            f"{op} {_fmt(count)}" for op, count in sorted(requests.items())
        )
        lines.append(f"  requests  {ops}")

    dt = None
    prev_requests: dict[str, Any] = {}
    if previous is not None:
        dt = current["time"] - previous["time"]
        prev_requests = previous["stats"].get("requests", {})

    shard_rows = _shard_rows(current, previous)
    if previous is not None:
        gets = _rate(requests.get("get", 0), prev_requests.get("get"), dt)
        reqs = _rate(
            sum(requests.values()),
            sum(prev_requests.values()) if prev_requests else None,
            dt,
        )
        if shard_rows and all(r[2] is not None for r in shard_rows):
            evals = sum(r[2] for r in shard_rows if r[2] is not None)
        else:
            evals = _rate(
                sum(requests.get(op, 0) for op in _PUT_OPS),
                sum(prev_requests.get(op, 0) for op in _PUT_OPS),
                dt,
            )
        lines.append(
            f"  rates     reqs/s {_fmt(reqs)}   gets/s {_fmt(gets)}"
            f"   evals/s {_fmt(evals)}   (over {_fmt(dt, 's')})"
        )
    else:
        lines.append("  rates     (first sample — rates on next refresh)")

    if shard_rows:
        lines.append("")
        lines.append("  shard      jobs    jobs/s     busy")
        for shard, jobs, jobs_s, busy_frac in shard_rows:
            busy = f"{busy_frac:.0%}" if busy_frac is not None else "-"
            lines.append(
                f"  {shard:>5}  {_fmt(jobs):>8}  {_fmt(jobs_s):>8}  {busy:>7}"
            )
    return "\n".join(lines) + "\n"
