"""Process-local metrics: counters, gauges and mergeable histograms.

The registry is the numeric half of the telemetry layer (traces are the
temporal half, :mod:`repro.obs.trace`).  Design constraints, in order:

* **hot-path cheap** — the LOMA search bumps counters per evaluated
  ordering batch; an increment is one attribute add on a plain Python
  int (atomic under the GIL), no locks, no dict lookups when the caller
  holds the metric object.  The *read* path (exposition, JSON dump)
  takes no locks either: it reads live ints, which is always a
  consistent-enough snapshot for monitoring.
* **mergeable** — registries from forked worker shards serialize with
  :meth:`MetricsRegistry.to_json` and fold into the parent with
  :meth:`MetricsRegistry.merge_json`: counters and histogram buckets
  add, gauges keep the merged-in value (last writer wins).  Histogram
  merging is associative and commutative, so harvest order never
  changes the aggregate (property-tested).
* **dependency-free output** — Prometheus-style text exposition
  (:meth:`MetricsRegistry.render_prometheus`) and a JSON dump; nothing
  is imported beyond the standard library.

Metrics never feed back into cost math, cache keys or rng streams —
they are write-only from the instrumented code's point of view.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, cast


class BucketMismatchError(ValueError):
    """Two histograms with different bucket boundaries were asked to
    merge — adding their counts pairwise would silently mix scales, so
    the mismatch is a named, catchable error instead."""

#: Default histogram bucket upper bounds (seconds-flavored: latencies
#: from 100us to ~2min land in distinct buckets; +Inf is implicit).
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

#: Metric identity: name plus sorted (label, value) pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Sorted, stringified label pairs (the second half of a MetricKey).
LabelPairs = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus text-exposition escaping for a label value: backslash,
    double quote and newline must be escaped or the rendered line is
    ambiguous (a raw newline even splits the series across lines)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, None)
        if nxt is None:
            # A trailing lone backslash stays literal.
            out.append(ch)
        elif nxt == "n":
            out.append("\n")
        else:
            # \\ and \" unescape to the char itself; an unknown escape
            # degrades to the literal character (lenient, like scrapers).
            out.append(nxt)
    return "".join(out)


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Prometheus-style number: integral floats print as ints, the
    infinities as +Inf/-Inf."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonic count; :meth:`inc` is one int add."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_json(self) -> int:
        return self.value

    def merge_json(self, data: Any) -> None:
        self.value += int(data)

    def render(self) -> Iterable[str]:
        yield f"{self.name}{_render_labels(self.labels)} {self.value}"


class Gauge:
    """Point-in-time value (queue depth, hypervolume, shard count)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def to_json(self) -> float:
        return self.value

    def merge_json(self, data: Any) -> None:
        # Gauges are not additive; the merged-in (worker) observation
        # wins, matching "last writer wins" for point-in-time values.
        self.value = float(data)

    def render(self) -> Iterable[str]:
        yield f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"


class Histogram:
    """Fixed-bucket histogram (cumulative exposition, mergeable).

    ``buckets`` are the finite upper bounds; counts are kept
    *per-bucket* (not cumulative) internally so merging is a pairwise
    add, and rendered cumulatively with the implicit ``+Inf`` bucket,
    Prometheus style.  Two histograms merge only if their bounds match
    — a mismatch raises rather than silently mixing scales.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram buckets must be strictly increasing: {buckets}"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        # Linear scan: bucket lists are short (~15) and observations on
        # instrumented paths are far rarer than counter bumps.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_json(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def merge_json(self, data: Any) -> None:
        bounds = tuple(float(b) for b in data["buckets"])
        if bounds != self.buckets:
            raise BucketMismatchError(
                f"histogram {self.name!r}: cannot merge buckets {bounds} "
                f"into {self.buckets}"
            )
        for i, c in enumerate(data["counts"]):
            self.counts[i] += int(c)
        self.total += float(data["sum"])
        self.count += int(data["count"])

    def render(self) -> Iterable[str]:
        label_pairs = self.labels
        cumulative = 0
        for bound, bucket_count in zip(
            self.buckets + (math.inf,), self.counts
        ):
            cumulative += bucket_count
            le = label_pairs + (("le", _format_value(bound)),)
            yield f"{self.name}_bucket{_render_labels(le)} {cumulative}"
        yield f"{self.name}_sum{_render_labels(label_pairs)} {_format_value(self.total)}"
        yield f"{self.name}_count{_render_labels(label_pairs)} {self.count}"


Metric = Counter | Gauge | Histogram

_KINDS: dict[str, type[Metric]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Keyed store of metrics; the single handle a process exports.

    Metric identity is ``(name, labels)``: ``counter("x", shard=0)`` and
    ``counter("x", shard=1)`` are two series of one family.  A name must
    keep one kind across the registry (Prometheus exposition rule).
    """

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Metric] = {}
        self._kinds: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(
        self, kind: str, name: str, labels: Mapping[str, object], **extra: Any
    ) -> Metric:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {known}"
                )
            metric = _KINDS[kind](name, key[1], **extra)
            self._metrics[key] = metric
            self._kinds[name] = kind
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """Get-or-create a counter; hold the returned object on hot
        paths so the dict lookup is paid once."""
        return cast(Counter, self._get("counter", name, labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return cast(Gauge, self._get("gauge", name, labels))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return cast(
            Histogram, self._get("histogram", name, labels, buckets=buckets)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str, **labels: object) -> Metric | None:
        """The live metric object, or ``None`` if never registered."""
        return self._metrics.get((name, _labels_key(labels)))

    def value(self, name: str, **labels: object) -> int | float | dict[str, Any]:
        """Convenience: the current value (counter/gauge) or JSON form
        (histogram) of a metric; ``0`` when absent."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0
        return metric.to_json()

    def clear(self) -> None:
        self._metrics.clear()
        self._kinds.clear()

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """JSON-serializable dump (the wire format of a fork harvest)."""
        return {
            "metrics": [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "labels": list(metric.labels),
                    "data": metric.to_json(),
                }
                for metric in self._metrics.values()
            ]
        }

    def merge_json(self, data: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_json` dump into this registry (counters and
        histogram buckets add; gauges take the merged value)."""
        for raw in data.get("metrics", []):
            kind = raw["kind"]
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind {kind!r}")
            labels = {k: v for k, v in raw.get("labels", [])}
            extra: dict[str, Any] = {}
            if kind == "histogram":
                extra["buckets"] = tuple(raw["data"]["buckets"])
            metric = self._get(kind, raw["name"], labels, **extra)
            metric.merge_json(raw["data"])

    def merge(self, other: MetricsRegistry) -> None:
        self.merge_json(other.to_json())

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition (one TYPE line per family, series
        sorted by name then labels, trailing newline)."""
        lines: list[str] = []
        seen_type: set[str] = set()
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if metric.name not in seen_type:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                seen_type.add(metric.name)
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.render_prometheus())
        return target

    def write_json(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json()))
        return target


def load_metrics(path: str | Path) -> MetricsRegistry:
    """Load a registry from a :meth:`MetricsRegistry.write_json` file."""
    registry = MetricsRegistry()
    registry.merge_json(json.loads(Path(path).read_text()))
    return registry


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a Prometheus text exposition into ``{series: value}`` (the
    series string includes its label set verbatim).  Only what the
    ``repro stats`` pretty-printer and the smoke tests need — not a
    general scrape parser.

    Round-trips :meth:`MetricsRegistry.render_prometheus` exactly:
    escaped label values contain no raw newline or trailing space, so
    one line is one series and the value is the last space-separated
    token.  Use :func:`split_series` to recover the label dict.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            values[series] = float(value.replace("+Inf", "inf"))
        except ValueError:
            continue
    return values


_SERIES_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?$")
#: One label pair; the value matches escaped sequences or anything that
#: is neither a quote nor a bare backslash, so escaped quotes inside the
#: value do not terminate the match.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def split_series(series: str) -> tuple[str, dict[str, str]]:
    """Split a series string (``name{k="v",...}``) into the metric name
    and its label dict, undoing label-value escaping.  Raises
    ``ValueError`` on a string no registry would render."""
    match = _SERIES_RE.match(series.strip())
    if match is None:
        raise ValueError(f"not a metric series: {series!r}")
    raw = match.group("labels")
    labels: dict[str, str] = {}
    if raw:
        labels = {
            k: unescape_label_value(v) for k, v in _LABEL_RE.findall(raw)
        }
    return match.group("name"), labels
