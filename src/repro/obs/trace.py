"""Structured tracing: nested spans emitted as JSON lines.

A :class:`Tracer` owns one per-run trace file.  Instrumented code opens
spans with::

    with tracer.span("dse.generation", index=3):
        ...

and each completed span becomes one JSON line with monotonic start/end
timestamps, a span id, its parent's id (nesting is tracked per thread)
and the caller's attributes.  Lines are written on span *exit* only, so
a trace file never contains half-open records; readers sort by start
time to rebuild the tree.

Zero-overhead contract: the module-level :func:`repro.obs.span` helper
returns a shared no-op context manager when telemetry is off — no
timestamp is taken, no object allocated.  With tracing on, the *cost
math is untouched*: spans read the monotonic clock and write to the
trace file, nothing else, so results are bit-identical with tracing on
or off (asserted by the identity tests).

Sampling (``sample < 1.0``) keeps a deterministic subset of *root*
spans — the decision is a pure counter rule, never an rng draw, so
enabling sampling cannot perturb any seeded random stream.  Children
follow their root's decision: a kept root keeps its whole subtree.

Forked worker processes inherit the parent's tracer object; to keep the
file single-writer, a tracer only records from the process that created
it (others fall back to no-ops).  Worker-side telemetry travels as
*metrics* (fork-merged registries) instead.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from types import TracebackType
from typing import IO, Any


class _NullSpan:
    """Reusable no-op span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None


#: The shared disabled-path singleton.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records on exit via its tracer."""

    __slots__ = ("tracer", "name", "id", "parent", "attrs", "start")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        parent: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self.id: int | None = None
        self.start = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes after the span opened (e.g. result counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> _Span:
        self.id = self.tracer._enter(self)
        self.start = time.monotonic()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = time.monotonic()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._exit(self, end)
        return None


#: What ``Tracer.span`` / ``repro.obs.span`` hand back: a live span, or
#: the shared no-op when this process must not record.
SpanLike = _Span | _NullSpan


class Tracer:
    """Writes one process's spans to a JSON-lines trace file.

    Parameters
    ----------
    path:
        Trace file; created (parents included) on first write.  The
        first record is a ``{"type": "run"}`` header carrying the wall
        clock and pid, so monotonic span times can be anchored.
    sample:
        Fraction of root spans kept, in ``(0, 1]``.  The rule is the
        deterministic counter test ``int(n*sample) < int((n+1)*sample)``
        — root span ``n`` is kept iff its index crosses an integer
        boundary — which spreads kept spans evenly and never consults
        an rng.
    """

    def __init__(self, path: str | Path, sample: float = 1.0) -> None:
        if not (0.0 < sample <= 1.0):
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.path = Path(path)
        self.sample = sample
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._file: IO[str] | None = None
        self._next_id = 0
        self._roots_seen = 0
        self.spans_written = 0
        self.spans_dropped = 0

    # ------------------------------------------------------------------
    def _stack(self) -> list[int | None]:
        stack: list[int | None] | None = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def recording(self) -> bool:
        """Whether this process may write (single-writer guard)."""
        return os.getpid() == self.pid

    def span(self, name: str, **attrs: Any) -> SpanLike:
        if not self.recording:
            return NULL_SPAN
        return _Span(self, name, None, attrs)

    def _enter(self, span: _Span) -> int | None:
        stack = self._stack()
        if stack:
            parent_id = stack[-1]
            kept = parent_id is not None
        else:
            with self._lock:
                n = self._roots_seen
                self._roots_seen += 1
            kept = int(n * self.sample) < int((n + 1) * self.sample)
            parent_id = None
        if not kept:
            stack.append(None)  # children inherit the drop decision
            return None
        span.parent = parent_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack.append(span_id)
        return span_id

    def _exit(self, span: _Span, end: float) -> None:
        stack = self._stack()
        if stack:
            stack.pop()
        if span.id is None:
            self.spans_dropped += 1
            return
        record: dict[str, Any] = {
            "type": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start": span.start,
            "end": end,
            "dur": end - span.start,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)
        self.spans_written += 1

    # ------------------------------------------------------------------
    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = open(self.path, "w")
                header = {
                    "type": "run",
                    "pid": self.pid,
                    "wall_time": time.time(),
                    "monotonic": time.monotonic(),
                    "sample": self.sample,
                }
                self._file.write(json.dumps(header) + "\n")
            self._file.write(line)

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------
def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a trace file into its records (header included).  Raises
    ``ValueError`` naming the offending line on malformed input."""
    records, problems = _parse_trace(path, tolerant=False)
    assert not problems
    return records


def load_trace_tolerant(
    path: str | Path,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Like :func:`load_trace`, but a malformed line is collected
    instead of raised.  A run killed mid-write leaves a final line cut
    in half; its trace is still worth summarizing.  Returns
    ``(records, problems)`` where each problem names the bad line."""
    return _parse_trace(path, tolerant=True)


def _parse_trace(
    path: str | Path, tolerant: bool
) -> tuple[list[dict[str, Any]], list[str]]:
    records: list[dict[str, Any]] = []
    problems: list[str] = []
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                message = f"{path}:{lineno}: not a trace line: {exc}"
                if tolerant:
                    problems.append(message)
                    continue
                raise ValueError(message)
            if not isinstance(record, dict) or "type" not in record:
                message = (
                    f"{path}:{lineno}: trace records are objects with a 'type'"
                )
                if tolerant:
                    problems.append(message)
                    continue
                raise ValueError(message)
            records.append(record)
    return records, problems


def trace_spans(
    records: list[dict[str, Any]] | str | Path,
) -> list[dict[str, Any]]:
    """The span records of a trace, sorted by start time."""
    if not isinstance(records, list):
        records = load_trace(records)
    spans = [r for r in records if r.get("type") == "span"]
    spans.sort(key=lambda r: (r["start"], r["id"]))
    return spans


def span_summary(
    records: list[dict[str, Any]] | str | Path,
) -> list[dict[str, Any]]:
    """Aggregate spans by name: count, total time, and *self* time
    (total minus the time covered by direct children), sorted by self
    time descending — the "where did the run spend its time" table."""
    spans = trace_spans(records)
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + span["dur"]
    by_name: dict[str, dict[str, Any]] = {}
    for span in spans:
        row = by_name.setdefault(
            span["name"], {"name": span["name"], "count": 0, "total": 0.0, "self": 0.0}
        )
        row["count"] += 1
        row["total"] += span["dur"]
        row["self"] += max(span["dur"] - child_time.get(span["id"], 0.0), 0.0)
    return sorted(by_name.values(), key=lambda r: (-r["self"], r["name"]))


def trace_coverage(
    records: list[dict[str, Any]] | str | Path,
) -> float | None:
    """Fraction of the trace's wall-clock covered by *root* spans
    (union of their intervals over the first-start..last-end window);
    ``None`` for a trace without spans."""
    spans = trace_spans(records)
    if not spans:
        return None
    window_start = min(float(s["start"]) for s in spans)
    window_end = max(float(s["end"]) for s in spans)
    if window_end <= window_start:
        return 1.0
    roots = [s for s in spans if s.get("parent") is None]
    covered = 0.0
    cursor = window_start
    for span in sorted(roots, key=lambda s: float(s["start"])):
        start = max(float(span["start"]), cursor)
        end = float(span["end"])
        if end > start:
            covered += end - start
            cursor = end
    return covered / (window_end - window_start)
