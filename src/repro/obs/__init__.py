"""Telemetry layer: structured tracing + process-local metrics.

One dependency-free observability surface for every subsystem:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket mergeable histograms, with Prometheus-style
  text exposition and a JSON dump; registries from forked worker shards
  fold back into the parent on harvest.
* :mod:`repro.obs.trace` — ``span("phase", **attrs)`` context managers
  emitting structured JSON-lines trace events (monotonic start/end,
  nesting via ids) to a per-run trace file, with a deterministic
  sampling knob.

The whole layer hangs off **one module-level flag**: :data:`enabled`.
Instrumented hot paths guard with ``if obs.enabled:`` — one module
attribute read when telemetry is off, nothing else — and
:func:`span` returns a shared no-op context manager while disabled.
Telemetry is *identity-neutral* by contract: it never touches cost
math, cache keys or rng streams, so serial == process == service
bit-identity holds with tracing on (tested).

Usage::

    from repro import obs

    obs.enable(trace="run.jsonl", sample=1.0)
    with obs.span("phase", detail=42):
        if obs.enabled:
            obs.metrics().counter("things_done").inc()
    obs.metrics().write_prometheus("run.prom")
    obs.disable()
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from . import ledger, regress, top
from .metrics import (
    DEFAULT_BUCKETS,
    BucketMismatchError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    load_metrics,
    parse_prometheus,
    split_series,
    unescape_label_value,
)
from .trace import (
    NULL_SPAN,
    SpanLike,
    Tracer,
    load_trace,
    load_trace_tolerant,
    span_summary,
    trace_coverage,
    trace_spans,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "BucketMismatchError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanLike",
    "Tracer",
    "enable",
    "disable",
    "enabled",
    "escape_label_value",
    "ledger",
    "load_metrics",
    "load_trace",
    "load_trace_tolerant",
    "metrics",
    "parse_prometheus",
    "regress",
    "span",
    "span_summary",
    "split_series",
    "top",
    "trace_coverage",
    "trace_spans",
    "tracer",
    "unescape_label_value",
]

#: THE telemetry switch.  Read it as ``obs.enabled`` (module attribute),
#: never ``from repro.obs import enabled`` (a by-value snapshot).
enabled: bool = False

_registry = MetricsRegistry()
_tracer: Tracer | None = None


def metrics() -> MetricsRegistry:
    """The process's metrics registry (live whether or not telemetry is
    enabled; instrumented code guards its bumps on :data:`enabled`)."""
    return _registry


def tracer() -> Tracer | None:
    """The active tracer, or ``None`` (disabled / metrics-only mode)."""
    return _tracer


def enable(
    trace: str | Path | None = None,
    sample: float = 1.0,
) -> MetricsRegistry:
    """Turn telemetry on for this process.

    ``trace`` names the JSON-lines trace file (omit it for metrics-only
    telemetry); ``sample`` keeps that fraction of root spans
    (deterministic counter rule — no rng).  Returns the registry for
    convenience.  Calling again replaces the tracer (the old file is
    closed) and keeps accumulated metrics.
    """
    global enabled, _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = Tracer(trace, sample=sample) if trace is not None else None
    enabled = True
    return _registry


def disable() -> None:
    """Turn telemetry off and close the trace file (idempotent).
    Metrics stay readable until :func:`reset`."""
    global enabled, _tracer
    enabled = False
    if _tracer is not None:
        _tracer.close()
        _tracer = None


def reset() -> None:
    """Fresh registry + disabled state (tests and forked workers)."""
    disable()
    _registry.clear()


def span(name: str, **attrs: Any) -> SpanLike:
    """A tracing span when enabled, the shared no-op otherwise."""
    if not enabled or _tracer is None:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def flush() -> None:
    """Flush the trace file (no-op when tracing is off)."""
    if _tracer is not None:
        _tracer.flush()


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
def worker_begin(parent_enabled: bool) -> None:
    """Initialize telemetry inside a freshly started worker process.

    Forked children inherit the parent's module state — including its
    registry contents and tracer — so harvesting without a reset would
    double-count everything the parent had already recorded, and two
    processes would write one trace file.  This gives the worker a
    clean registry and *no* tracer (worker telemetry travels as merged
    metrics, the trace file stays single-writer), enabled iff the
    parent's telemetry was on.
    """
    global enabled, _tracer
    _tracer = None
    _registry.clear()
    enabled = bool(parent_enabled)


def harvest() -> dict[str, Any] | None:
    """The worker's registry dump for fork-merge into the parent
    (``None`` when telemetry is off — nothing to ship)."""
    if not enabled:
        return None
    return _registry.to_json()


def absorb(dump: dict[str, Any] | None) -> None:
    """Merge a worker's :func:`harvest` into this process's registry."""
    if dump:
        _registry.merge_json(dump)
