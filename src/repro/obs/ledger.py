"""Durable run ledger: one JSON record per CLI run under ``.repro/runs/``.

PR 7 gave every run spans and metrics, but the telemetry died with the
process.  The ledger is the cross-run layer: ``repro evaluate`` and
``repro dse`` append a record — manifest (argv, seed, engine/backend,
accelerator fingerprints, package versions), wall-clock, the final
:class:`~repro.obs.metrics.MetricsRegistry` dump (when telemetry was
on), the per-generation convergence series, and the outcome status —
that ``repro runs list|show|diff|gc|regress`` read back.

Crash capture is the load-bearing design point: the record is written
*at begin* with ``status: "running"`` and atomically rewritten at
finish, so a run that raises (finished by the CLI's exception handler
as ``crashed``) or is SIGKILLed outright (left as ``running``) still
leaves a ledger entry.  Writes are tmp-file + ``os.replace`` so readers
never see a half-written record.

Knobs: ``REPRO_RUNS_DIR`` relocates the ledger directory (tests and CI
point it at a tmp dir), ``REPRO_LEDGER=0`` disables it, and the CLI
mirrors both as ``--runs-dir`` / ``--no-ledger``.  The ledger is
independent of the telemetry switch — it must not cost a counter bump
on any hot path, and it does not: it writes once at begin and once at
finish.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Bump when the record shape changes incompatibly.
LEDGER_FORMAT_VERSION = 1

RUNS_DIR_ENV = "REPRO_RUNS_DIR"
LEDGER_ENV = "REPRO_LEDGER"
DEFAULT_RUNS_DIR = Path(".repro") / "runs"

_active: RunHandle | None = None


def ledger_enabled() -> bool:
    """``False`` when ``REPRO_LEDGER`` is set to 0/off/false/no."""
    value = os.environ.get(LEDGER_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")


def runs_dir(directory: str | Path | None = None) -> Path:
    """Resolve the ledger directory: explicit argument, then
    ``REPRO_RUNS_DIR``, then ``.repro/runs`` under the cwd."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return Path(env)
    return DEFAULT_RUNS_DIR


def package_versions() -> dict[str, str | None]:
    """Interpreter and package versions recorded in every manifest —
    the first thing to check when two runs of one config disagree."""
    versions: dict[str, str | None] = {"python": platform.python_version()}
    try:
        from .. import __version__ as repro_version

        versions["repro"] = repro_version
    except Exception:  # pragma: no cover - package always importable
        versions["repro"] = None
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        versions["numpy"] = None
    return versions


class RunHandle:
    """A live run's ledger entry; write-at-begin, rewrite-at-finish."""

    def __init__(self, directory: Path, record: dict[str, Any]) -> None:
        self.directory = directory
        self.record = record
        self.path = directory / f"{record['id']}.json"
        self.finished = False
        self._write()

    # ------------------------------------------------------------------
    def set(self, **fields: Any) -> None:
        """Attach manifest fields discovered after begin (not flushed
        until :meth:`finish` — cheap to call anywhere)."""
        self.record.update(fields)

    def add_convergence(self, point: Mapping[str, Any]) -> None:
        """Append one per-generation convergence point (hv/epsilon) and
        flush, so a crashed search keeps its partial series."""
        self.record.setdefault("convergence", []).append(dict(point))
        try:
            self._write()
        except OSError:
            # A full/unwritable disk must not kill a live search; the
            # point stays in the record and finish() retries the write.
            pass

    def finish(
        self,
        status: str = "ok",
        error: str | None = None,
        result: Mapping[str, Any] | None = None,
    ) -> Path:
        """Seal the record (idempotent: the first finish wins, so a
        crash handler re-raising through an outer handler cannot flip a
        ``crashed`` record back to ``ok``)."""
        if self.finished:
            return self.path
        self.finished = True
        now = time.time()
        self.record["finished"] = now
        self.record["wall_seconds"] = now - self.record["started"]
        self.record["status"] = status
        if error is not None:
            self.record["error"] = error
        if result is not None:
            self.record["result"] = dict(result)
        # Capture the telemetry registry if the run had it on.  Imported
        # lazily: the obs package imports this module at load time.
        from repro import obs

        if obs.enabled and len(obs.metrics()):
            self.record["metrics"] = obs.metrics().to_json()
        self._write()
        global _active
        if _active is self:
            _active = None
        return self.path

    # ------------------------------------------------------------------
    def _write(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.record, indent=1, sort_keys=True))
        os.replace(tmp, self.path)


def begin_run(
    command: str,
    argv: Iterable[str],
    manifest: Mapping[str, Any] | None = None,
    directory: str | Path | None = None,
) -> RunHandle:
    """Open a ledger record with ``status: "running"`` and make it the
    process's :func:`active_run`.  The id is timestamp + pid + command
    (with a collision suffix: test suites start many runs per second)."""
    global _active
    target = runs_dir(directory)
    started = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(started))
    base = f"{stamp}-{os.getpid()}-{command}"
    run_id, n = base, 1
    while (target / f"{run_id}.json").exists():
        n += 1
        run_id = f"{base}-{n}"
    record: dict[str, Any] = {
        "format": LEDGER_FORMAT_VERSION,
        "id": run_id,
        "command": command,
        "argv": list(argv),
        "status": "running",
        "started": started,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "versions": package_versions(),
    }
    if manifest:
        record["manifest"] = dict(manifest)
    handle = RunHandle(target, record)
    _active = handle
    return handle


def active_run() -> RunHandle | None:
    """The in-flight run's handle (lets the DSE loop stream convergence
    points into the record without threading a handle through APIs)."""
    return _active


def reset() -> None:
    """Forget the active handle (test isolation)."""
    global _active
    _active = None


# ----------------------------------------------------------------------
# Reading the ledger back
# ----------------------------------------------------------------------
def list_runs(directory: str | Path | None = None) -> list[dict[str, Any]]:
    """All records in the ledger, oldest first.  An unreadable file
    (foreign junk, torn write from a pre-atomic-rename tool) surfaces as
    a stub with ``status: "unreadable"`` rather than hiding."""
    target = runs_dir(directory)
    if not target.is_dir():
        return []
    records: list[dict[str, Any]] = []
    for path in sorted(target.glob("*.json")):
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except (OSError, ValueError):
            record = {"id": path.stem, "status": "unreadable", "started": 0.0}
        record.setdefault("id", path.stem)
        record["_path"] = str(path)
        records.append(record)
    records.sort(key=lambda r: (r.get("started") or 0.0, r["id"]))
    return records


def load_run(ref: str, directory: str | Path | None = None) -> dict[str, Any]:
    """Resolve a run reference: ``latest``, an exact id, a unique id
    prefix, or a path to a record file."""
    as_path = Path(ref)
    if as_path.is_file():
        record: dict[str, Any] = json.loads(as_path.read_text())
        record["_path"] = str(as_path)
        return record
    records = [r for r in list_runs(directory) if r.get("status") != "unreadable"]
    if ref == "latest":
        if not records:
            raise ValueError(f"no runs recorded under {runs_dir(directory)}")
        return records[-1]
    exact = [r for r in records if r["id"] == ref]
    if exact:
        return exact[0]
    prefixed = [r for r in records if r["id"].startswith(ref)]
    if len(prefixed) == 1:
        return prefixed[0]
    if prefixed:
        ids = ", ".join(r["id"] for r in prefixed)
        raise ValueError(f"run reference {ref!r} is ambiguous: {ids}")
    raise ValueError(
        f"no run matching {ref!r} under {runs_dir(directory)} "
        f"(try 'repro runs list')"
    )


def gc_runs(
    directory: str | Path | None = None,
    keep: int = 20,
    dry_run: bool = False,
) -> list[str]:
    """Drop the oldest records beyond ``keep``; returns removed ids."""
    if keep < 0:
        raise ValueError("keep must be >= 0")
    records = list_runs(directory)
    doomed = records[: max(0, len(records) - keep)]
    removed: list[str] = []
    for record in doomed:
        if not dry_run:
            try:
                os.unlink(record["_path"])
            except OSError:
                continue
        removed.append(record["id"])
    return removed


# ----------------------------------------------------------------------
# Derived metrics (shared by `runs show|diff` and the regression gate)
# ----------------------------------------------------------------------
def metric_total(
    record: Mapping[str, Any], name: str, **match: str
) -> float | None:
    """Sum a counter/gauge family from a record's metrics dump across
    series whose labels include ``match``; ``None`` when absent."""
    dump = record.get("metrics") or {}
    total: float | None = None
    for raw in dump.get("metrics", []):
        if raw.get("name") != name:
            continue
        labels = {k: v for k, v in raw.get("labels", [])}
        if any(labels.get(k) != v for k, v in match.items()):
            continue
        data = raw.get("data")
        if not isinstance(data, (int, float)):
            continue  # histograms have no single total here
        total = (total or 0.0) + float(data)
    return total


def key_metrics(record: Mapping[str, Any]) -> dict[str, Any]:
    """The comparable scalars of a run (``None`` where unavailable):
    wall-clock, orderings evaluated and per-second, mapping-cache hit
    rate, DSE evaluations / hypervolume / epsilon / frontier size."""
    out: dict[str, Any] = {
        "wall_seconds": record.get("wall_seconds"),
        "orderings": metric_total(record, "loma_orderings_evaluated_total"),
        "orderings_per_s": None,
        "cache_hit_rate": None,
        "evaluations": None,
        "hypervolume": None,
        "epsilon": None,
        "frontier_size": None,
    }
    wall = out["wall_seconds"]
    if out["orderings"] and wall:
        out["orderings_per_s"] = out["orderings"] / wall
    hits = metric_total(record, "mapping_cache_gets_total", result="hit")
    misses = metric_total(record, "mapping_cache_gets_total", result="miss")
    if hits is not None or misses is not None:
        total = (hits or 0.0) + (misses or 0.0)
        if total:
            out["cache_hit_rate"] = (hits or 0.0) / total
    result = record.get("result") or {}
    convergence = record.get("convergence") or []
    last = convergence[-1] if convergence else {}
    out["evaluations"] = result.get("evaluations", last.get("evaluations"))
    out["hypervolume"] = result.get("hypervolume", last.get("hypervolume"))
    out["epsilon"] = result.get("epsilon", last.get("epsilon"))
    out["frontier_size"] = result.get(
        "frontier_size", last.get("frontier_size")
    )
    return out
