"""Perf-regression gate: compare ledger records (and bench files).

``repro runs regress --baseline REF`` turns two ledger records into a
list of :class:`Check` verdicts with per-metric thresholds:

* **orderings/s** — throughput; relative, with a generous default
  tolerance because baselines travel across machines.
* **cache hit rate** — absolute drop tolerance; a hit-rate collapse is
  a correctness-of-keying smell long before it is a perf problem.
* **hypervolume** — search quality; compared only when both runs spent
  the same evaluation budget (hv at different budgets measures budget,
  not quality).  The engine is deterministic per seed across machines
  (the repo commits golden frontier fixtures), so the tolerance is
  tight by default.

Metrics missing on either side are reported as ``skipped`` checks, not
failures: a telemetry-off baseline can still gate hypervolume.  The
same shapes compare two ``BENCH_loma.json``-style files point by point
(:func:`compare_bench`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from .ledger import key_metrics

#: Default thresholds (overridable per CLI flag).
DEFAULT_MAX_SLOWDOWN = 0.5
DEFAULT_MAX_HV_LOSS = 0.001
DEFAULT_MAX_HIT_RATE_DROP = 0.05

OK = "ok"
REGRESSED = "regressed"
SKIPPED = "skipped"


@dataclass(frozen=True)
class Check:
    """One metric's verdict in a regression comparison."""

    metric: str
    baseline: float | None
    current: float | None
    limit: str
    status: str  # ok | regressed | skipped
    note: str = ""

    @property
    def regressed(self) -> bool:
        return self.status == REGRESSED


def _skip(metric: str, limit: str, note: str) -> Check:
    return Check(metric, None, None, limit, SKIPPED, note)


def _relative_floor_check(
    metric: str,
    baseline: float | None,
    current: float | None,
    max_loss: float,
) -> Check:
    """Higher-is-better metric gated at ``baseline * (1 - max_loss)``."""
    limit = f">= baseline * {1.0 - max_loss:g}"
    if baseline is None or current is None:
        side = "baseline" if baseline is None else "current"
        return _skip(metric, limit, f"{side} run did not record it")
    floor = baseline * (1.0 - max_loss)
    status = OK if current >= floor else REGRESSED
    return Check(metric, baseline, current, limit, status)


def compare_runs(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    max_hv_loss: float = DEFAULT_MAX_HV_LOSS,
    max_hit_rate_drop: float = DEFAULT_MAX_HIT_RATE_DROP,
) -> list[Check]:
    """Gate a current ledger record against a baseline record."""
    base = key_metrics(baseline)
    curr = key_metrics(current)
    checks = [
        _relative_floor_check(
            "orderings_per_s",
            base["orderings_per_s"],
            curr["orderings_per_s"],
            max_slowdown,
        )
    ]

    # Cache hit rate: absolute drop tolerance.
    limit = f">= baseline - {max_hit_rate_drop:g}"
    if base["cache_hit_rate"] is None or curr["cache_hit_rate"] is None:
        side = "baseline" if base["cache_hit_rate"] is None else "current"
        checks.append(
            _skip("cache_hit_rate", limit, f"{side} run did not record it")
        )
    else:
        status = (
            OK
            if curr["cache_hit_rate"]
            >= base["cache_hit_rate"] - max_hit_rate_drop
            else REGRESSED
        )
        checks.append(
            Check(
                "cache_hit_rate",
                base["cache_hit_rate"],
                curr["cache_hit_rate"],
                limit,
                status,
            )
        )

    # Hypervolume: only meaningful at a fixed evaluation budget.
    hv_limit = f">= baseline * {1.0 - max_hv_loss:g}"
    if base["hypervolume"] is None or curr["hypervolume"] is None:
        side = "baseline" if base["hypervolume"] is None else "current"
        checks.append(
            _skip("hypervolume", hv_limit, f"{side} run has no hypervolume")
        )
    elif (
        base["evaluations"] is not None
        and curr["evaluations"] is not None
        and base["evaluations"] != curr["evaluations"]
    ):
        checks.append(
            _skip(
                "hypervolume",
                hv_limit,
                f"evaluation budgets differ "
                f"({base['evaluations']} vs {curr['evaluations']})",
            )
        )
    else:
        checks.append(
            _relative_floor_check(
                "hypervolume",
                base["hypervolume"],
                curr["hypervolume"],
                max_hv_loss,
            )
        )
    return checks


# ----------------------------------------------------------------------
# Bench-file comparison (BENCH_loma.json shape)
# ----------------------------------------------------------------------
def _bench_points(bench: Mapping[str, Any]) -> dict[tuple[str, str], Any]:
    return {
        (p.get("workload", "?"), p.get("accelerator", "?")): p
        for p in bench.get("points", [])
    }


def compare_bench(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> list[Check]:
    """Gate a ``BENCH_loma.json``-shaped file against a baseline one:
    per point, batch-engine orderings/s and batch-vs-scalar speedup must
    hold within the slowdown tolerance."""
    base_points = _bench_points(baseline)
    curr_points = _bench_points(current)
    checks: list[Check] = []
    for key in sorted(base_points):
        workload, accelerator = key
        tag = f"{workload}/{accelerator}"
        base_point = base_points[key]
        curr_point = curr_points.get(key)
        if curr_point is None:
            checks.append(
                Check(
                    f"bench[{tag}]",
                    None,
                    None,
                    "point present",
                    REGRESSED,
                    "benchmark point missing from current file",
                )
            )
            continue
        checks.append(
            _relative_floor_check(
                f"bench[{tag}].batch_orderings_per_s",
                (base_point.get("batch") or {}).get("orderings_per_s"),
                (curr_point.get("batch") or {}).get("orderings_per_s"),
                max_slowdown,
            )
        )
        checks.append(
            _relative_floor_check(
                f"bench[{tag}].speedup",
                base_point.get("speedup"),
                curr_point.get("speedup"),
                max_slowdown,
            )
        )
    return checks


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read a bench file, with a useful error for a non-bench file."""
    data: dict[str, Any] = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "points" not in data:
        raise ValueError(f"{path}: not a bench file (no 'points' list)")
    return data


def has_regressions(checks: list[Check]) -> bool:
    return any(check.regressed for check in checks)
