"""Memory-access and energy breakdowns (the paper's Fig. 14 views).

Aggregates a schedule result's traffic into the paper's reporting axes:
memory tier (Reg / LB / GB / DRAM) x data category (layer activations,
weights, data copy actions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..hardware.accelerator import Accelerator
from ..mapping.cost import CostResult

#: Fig. 14's data categories.
CATEGORIES = ("activation", "weight", "copy")

#: Reporting tiers in hierarchy order.
TIERS = ("Reg", "LB", "GB", "DRAM")


def _category(operand: str) -> str:
    if operand in ("I", "O"):
        return "activation"
    if operand == "W":
        return "weight"
    return "copy"


def tier_of(accel: Accelerator, level_name: str) -> str:
    """Reporting tier of a memory level name."""
    for inst in accel.instances():
        if inst.name == level_name:
            return inst.tier
    return "DRAM" if level_name == "DRAM" else "SRAM"


@dataclass(frozen=True)
class AccessBreakdown:
    """Element access counts per (category, tier) — Fig. 14(a)-(d)."""

    accesses: Mapping[tuple[str, str], float]
    energy_pj: Mapping[tuple[str, str], float]

    def by_tier(self, category: str | None = None) -> dict[str, float]:
        """Accesses per tier, optionally for one category."""
        out = {tier: 0.0 for tier in TIERS}
        for (cat, tier), count in self.accesses.items():
            if category is not None and cat != category:
                continue
            out[tier] = out.get(tier, 0.0) + count
        return out

    def by_category(self) -> dict[str, float]:
        """Accesses per category (all tiers)."""
        out = {cat: 0.0 for cat in CATEGORIES}
        for (cat, _tier), count in self.accesses.items():
            out[cat] = out.get(cat, 0.0) + count
        return out

    def total(self) -> float:
        return sum(self.accesses.values())

    def energy_by_category(self) -> dict[str, float]:
        out = {cat: 0.0 for cat in CATEGORIES}
        for (cat, _tier), e in self.energy_pj.items():
            out[cat] = out.get(cat, 0.0) + e
        return out


def access_breakdown(accel: Accelerator, cost: CostResult) -> AccessBreakdown:
    """Aggregate a cost result into the Fig. 14 reporting axes."""
    accesses: dict[tuple[str, str], float] = {}
    energy: dict[tuple[str, str], float] = {}
    for (operand, level_name), t in cost.traffic.items():
        key = (_category(operand), tier_of(accel, level_name))
        accesses[key] = accesses.get(key, 0.0) + t.accesses_elems
        energy[key] = energy.get(key, 0.0) + t.energy_pj
    return AccessBreakdown(accesses=accesses, energy_pj=energy)


def energy_components(accel: Accelerator, cost: CostResult) -> dict[str, float]:
    """The Fig. 18 energy split: MAC / on-chip memory / DRAM (pJ)."""
    on_chip = 0.0
    dram = 0.0
    for (_cat, level_name), t in cost.traffic.items():
        if tier_of(accel, level_name) == "DRAM":
            dram += t.energy_pj
        else:
            on_chip += t.energy_pj
    return {"mac": cost.mac_energy_pj, "on_chip": on_chip, "dram": dram}


def weight_vs_activation_energy(cost: CostResult) -> dict[str, float]:
    """The Fig. 18(c) split: memory energy caused by weight traffic vs
    activation traffic (data copies count as activation movement)."""
    out = {"weight": 0.0, "activation": 0.0}
    for (operand, _level), t in cost.traffic.items():
        key = "weight" if operand == "W" else "activation"
        out[key] += t.energy_pj
    return out
