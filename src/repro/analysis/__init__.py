"""Analysis and reporting: breakdowns, heatmaps and paper-style tables."""

from .breakdown import (
    CATEGORIES,
    TIERS,
    AccessBreakdown,
    access_breakdown,
    energy_components,
    tier_of,
    weight_vs_activation_energy,
)
from .frontier import (
    convergence_table,
    frontier_csv,
    frontier_table,
    infeasible_table,
)
from .plots import (
    HAVE_MATPLOTLIB,
    convergence_series,
    frontier_series,
    plot_convergence,
    plot_dse_summary,
    plot_frontier,
)
from .heatmap import (
    SweepPointLike,
    energy_mj,
    latency_mcycles,
    render_heatmap,
    sweep_grid,
)
from .report import (
    TABLE2_ROWS,
    metrics_report,
    strategy_comparison,
    table1_architectures,
    table1_workloads,
    table2_factors,
    top_level_map,
    trace_report,
)

__all__ = [
    "CATEGORIES",
    "TIERS",
    "AccessBreakdown",
    "access_breakdown",
    "energy_components",
    "tier_of",
    "weight_vs_activation_energy",
    "frontier_table",
    "frontier_csv",
    "convergence_table",
    "infeasible_table",
    "HAVE_MATPLOTLIB",
    "frontier_series",
    "convergence_series",
    "plot_frontier",
    "plot_convergence",
    "plot_dse_summary",
    "SweepPointLike",
    "sweep_grid",
    "render_heatmap",
    "energy_mj",
    "latency_mcycles",
    "metrics_report",
    "trace_report",
    "table1_workloads",
    "table1_architectures",
    "table2_factors",
    "TABLE2_ROWS",
    "top_level_map",
    "strategy_comparison",
]
