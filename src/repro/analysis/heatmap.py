"""Text heatmaps for tile-size/mode sweeps (the paper's Fig. 12 view)."""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..core.results import ScheduleResult
from ..core.strategy import DFStrategy, OverlapMode


class SweepPointLike(Protocol):
    """Anything pairing a strategy with its schedule result: the
    optimizer's ``SweepPoint`` or the exploration runtime's
    ``EvalResult`` both qualify."""

    @property
    def strategy(self) -> DFStrategy: ...

    @property
    def result(self) -> ScheduleResult: ...


def sweep_grid(
    points: Sequence[SweepPointLike],
    mode: OverlapMode,
    xs: Sequence[int],
    ys: Sequence[int],
    value: Callable[[SweepPointLike], float],
) -> list[list[float]]:
    """Arrange sweep points into a ys-by-xs grid of values for ``mode``."""
    lookup = {
        (p.strategy.mode, p.strategy.tile_x, p.strategy.tile_y): p
        for p in points
    }
    grid: list[list[float]] = []
    for ty in ys:
        row = []
        for tx in xs:
            point = lookup.get((mode, tx, ty))
            row.append(value(point) if point is not None else float("nan"))
        grid.append(row)
    return grid


def render_heatmap(
    grid: Sequence[Sequence[float]],
    xs: Sequence[int],
    ys: Sequence[int],
    title: str,
    fmt: str = "{:8.1f}",
) -> str:
    """Render a grid as a fixed-width text table (Fig. 12 style)."""
    lines = [title]
    header = "Ty\\Tx".rjust(8) + "".join(str(x).rjust(9) for x in xs)
    lines.append(header)
    for ty, row in zip(ys, grid):
        cells = "".join(fmt.format(v).rjust(9) for v in row)
        lines.append(str(ty).rjust(8) + cells)
    return "\n".join(lines)


def energy_mj(point: SweepPointLike) -> float:
    """Energy in mJ of a sweep point."""
    return point.result.energy_pj / 1e9


def latency_mcycles(point: SweepPointLike) -> float:
    """Latency in millions of cycles of a sweep point."""
    return point.result.latency_cycles / 1e6
