"""Paper-style text reports: Table I, Table II, Fig. 9 top-level maps —
plus the telemetry run-summary renderers behind ``repro stats``."""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

from ..core.results import ScheduleResult, StackResult
from ..hardware.accelerator import Accelerator
from ..obs.trace import span_summary, trace_coverage
from ..workloads.stats import WorkloadStats


def table1_workloads(stats: Iterable[WorkloadStats]) -> str:
    """Render Table I(b): workload statistics."""
    lines = [
        f"{'Workload':16s} {'Layers':>6s} {'MACs':>9s} "
        f"{'Weights':>10s} {'Avg FM':>9s} {'Max FM':>9s} {'Dominance':>11s}"
    ]
    for s in stats:
        kind = "activation" if s.is_activation_dominant else "weight"
        lines.append(
            f"{s.name:16s} {s.layer_count:6d} "
            f"{s.total_mac_count / 1e9:8.2f}G "
            f"{s.total_weight_bytes / 1024:9.1f}K "
            f"{s.avg_feature_map_bytes / 2**20:8.2f}M "
            f"{s.max_feature_map_bytes / 2**20:8.2f}M "
            f"{kind:>11s}"
        )
    return "\n".join(lines)


def table1_architectures(accels: Iterable[Accelerator]) -> str:
    """Render Table I(a): architecture inventory."""
    lines = []
    for a in accels:
        lines.append(a.describe())
    return "\n".join(lines)


def top_level_map(accel: Accelerator, stack_result: StackResult) -> str:
    """Render Fig. 9: the top memory level of W/I/O per layer and tile
    type, using the global level ranks (Reg < LB < GB < DRAM)."""
    names = {i: lvl.name for i, lvl in enumerate(accel.levels)}
    lines = []
    for tr in stack_result.tile_results:
        tile = tr.tile
        lines.append(
            f"tile type {tile.index} (x{tile.count}"
            + (", first tile" if tile.is_first_tile else "")
            + ")"
        )
        for geom, tops in zip(tile.geometry, tr.plan.layer_tops):
            ranks = tops.ranks
            lines.append(
                f"  {geom.layer.name:24s} "
                f"W={names[ranks['W']]:8s} "
                f"I={names[ranks['I']]:8s} "
                f"O={names[ranks['O']]:8s}"
            )
    return "\n".join(lines)


def strategy_comparison(results: Sequence[ScheduleResult]) -> str:
    """Render a CS2-style strategy comparison for one workload."""
    base = results[0].total.energy_pj if results else 1.0
    lines = [
        f"{'Strategy':44s} {'Energy':>10s} {'Latency':>12s} {'vs first':>9s}"
    ]
    for r in results:
        gain = base / r.total.energy_pj if r.total.energy_pj else float("inf")
        lines.append(
            f"{r.strategy_label[:44]:44s} "
            f"{r.energy_mj:8.3f}mJ "
            f"{r.latency_cycles / 1e6:9.2f}Mcy "
            f"{gain:8.2f}x"
        )
    return "\n".join(lines)


#: Table II: the qualitative framework-factor matrix (rows reproduced
#: verbatim from the paper; DeFiNES is this repository).
TABLE2_ROWS = (
    ("DNNVM", (False, True, False), True, False, True, "La"),
    ("Efficient-S", (True, False, False), True, False, False, "La"),
    ("LBDF", (True, False, True), False, False, False, "DRAM"),
    ("ConvFusion", (True, False, True), False, False, True, "DRAM"),
    ("Optimus", (True, False, True), False, False, True, "DRAM"),
    ("DNNFuser", (True, False, False), True, False, True, "DRAM, Mem"),
    ("DeFiNES (ours)", (True, True, True), True, True, True, "En, La"),
)


# ----------------------------------------------------------------------
# Telemetry run summaries (repro stats / --trace / --metrics)
# ----------------------------------------------------------------------
def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def trace_report(records, top: int = 10) -> str:
    """Render a trace's "where did the time go" table: spans aggregated
    by name, sorted by self time (total minus direct children), plus the
    root-span wall-clock coverage line the smoke tests gate on."""
    rows = span_summary(records)
    if not rows:
        return "no spans recorded"
    lines = [
        f"{'span':24s} {'count':>6s} {'total':>10s} {'self':>10s} {'self%':>6s}"
    ]
    grand_self = sum(r["self"] for r in rows) or 1.0
    for row in rows[:top]:
        lines.append(
            f"{row['name'][:24]:24s} {row['count']:6d} "
            f"{_format_seconds(row['total']):>10s} "
            f"{_format_seconds(row['self']):>10s} "
            f"{100.0 * row['self'] / grand_self:5.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span name(s)")
    coverage = trace_coverage(records)
    total_spans = sum(r["count"] for r in rows)
    lines.append(
        f"{total_spans} span(s); root spans cover "
        f"{100.0 * coverage:.1f}% of the traced window"
    )
    return "\n".join(lines)


#: One Prometheus series: name plus an optional {label="value",...} body.
_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?$"
)
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def _split_series(series: str) -> "tuple[str, dict[str, str]]":
    match = _SERIES_RE.match(series)
    if match is None:
        return series, {}
    labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
    return match.group("name"), labels


def _hit_rate_line(label: str, hits: float, misses: float) -> "str | None":
    total = hits + misses
    if total <= 0:
        return None
    return (
        f"{label}: {int(hits)} hit(s) / {int(misses)} miss(es) "
        f"({100.0 * hits / total:.1f}% hit rate)"
    )


def metrics_report(values: "Mapping[str, float]", top: int = 12) -> str:
    """Render a metrics snapshot (the flat ``{series: value}`` form of
    :func:`repro.obs.parse_prometheus`): cache hit rates, per-shard
    service utilization, then the largest remaining counters."""
    named: "dict[str, list[tuple[dict, float]]]" = {}
    for series, value in values.items():
        name, labels = _split_series(series)
        named.setdefault(name, []).append((labels, value))

    def total(name: str, **match) -> float:
        return sum(
            value
            for labels, value in named.get(name, [])
            if all(labels.get(k) == v for k, v in match.items())
        )

    lines: list[str] = []

    # Cache effectiveness, every tier that saw traffic.
    for label, hits, misses in (
        (
            "mapping cache",
            total("mapping_cache_gets_total", result="hit"),
            total("mapping_cache_gets_total", result="miss"),
        ),
        (
            "cache client (incl. local)",
            total("cache_client_gets_total", result="hit")
            + total("cache_client_gets_total", result="local"),
            total("cache_client_gets_total", result="miss"),
        ),
        (
            "cache server",
            total("cache_server_hits_total"),
            total("cache_server_misses_total"),
        ),
    ):
        line = _hit_rate_line(label, hits, misses)
        if line is not None:
            lines.append(line)

    # Per-shard service utilization from the labeled histograms.
    shards = sorted(
        {
            labels["shard"]
            for labels, _ in named.get("service_exec_seconds_count", [])
            if "shard" in labels
        },
        key=lambda s: (len(s), s),
    )
    if shards:
        lines.append(
            f"{'shard':>5s} {'jobs':>6s} {'busy':>10s} {'avg wait':>10s}"
        )
        for shard in shards:
            jobs = total("service_exec_seconds_count", shard=shard)
            busy = total("service_exec_seconds_sum", shard=shard)
            wait = total("service_queue_wait_seconds_sum", shard=shard)
            lines.append(
                f"{shard:>5s} {int(jobs):6d} "
                f"{_format_seconds(busy):>10s} "
                f"{_format_seconds(wait / jobs if jobs else 0.0):>10s}"
            )

    # The biggest remaining counters (skip histogram components — they
    # were summarized above — and anything already reported).
    reported = {
        "mapping_cache_gets_total",
        "cache_client_gets_total",
        "cache_server_hits_total",
        "cache_server_misses_total",
    }
    counters = sorted(
        (
            (name, sum(v for _, v in series))
            for name, series in named.items()
            if not name.endswith(("_bucket", "_sum", "_count"))
            and name not in reported
        ),
        key=lambda item: (-item[1], item[0]),
    )
    if counters:
        lines.append("top metrics:")
        for name, value in counters[:top]:
            rendered = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:36s} {rendered}")
    return "\n".join(lines) if lines else "no metrics recorded"


def table2_factors() -> str:
    """Render Table II: related DF modeling framework comparison."""
    def mark(v: bool) -> str:
        return "yes" if v else "no"

    lines = [
        f"{'Framework':16s} {'modes(FR/HC/FC)':>16s} {'on-chip':>8s} "
        f"{'mem-skip':>9s} {'weights':>8s} {'target':>10s}"
    ]
    for name, modes, onchip, memskip, weights, target in TABLE2_ROWS:
        mode_str = "/".join(mark(m) for m in modes)
        lines.append(
            f"{name:16s} {mode_str:>16s} {mark(onchip):>8s} "
            f"{mark(memskip):>9s} {mark(weights):>8s} {target:>10s}"
        )
    return "\n".join(lines)
