"""Paper-style text reports: Table I, Table II, Fig. 9 top-level maps —
plus the telemetry run-summary renderers behind ``repro stats``."""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from ..core.results import ScheduleResult, StackResult
from ..hardware.accelerator import Accelerator
from ..obs.ledger import key_metrics
from ..obs.metrics import split_series
from ..obs.trace import span_summary, trace_coverage
from ..workloads.stats import WorkloadStats


def table1_workloads(stats: Iterable[WorkloadStats]) -> str:
    """Render Table I(b): workload statistics."""
    lines = [
        f"{'Workload':16s} {'Layers':>6s} {'MACs':>9s} "
        f"{'Weights':>10s} {'Avg FM':>9s} {'Max FM':>9s} {'Dominance':>11s}"
    ]
    for s in stats:
        kind = "activation" if s.is_activation_dominant else "weight"
        lines.append(
            f"{s.name:16s} {s.layer_count:6d} "
            f"{s.total_mac_count / 1e9:8.2f}G "
            f"{s.total_weight_bytes / 1024:9.1f}K "
            f"{s.avg_feature_map_bytes / 2**20:8.2f}M "
            f"{s.max_feature_map_bytes / 2**20:8.2f}M "
            f"{kind:>11s}"
        )
    return "\n".join(lines)


def table1_architectures(accels: Iterable[Accelerator]) -> str:
    """Render Table I(a): architecture inventory."""
    lines = []
    for a in accels:
        lines.append(a.describe())
    return "\n".join(lines)


def top_level_map(accel: Accelerator, stack_result: StackResult) -> str:
    """Render Fig. 9: the top memory level of W/I/O per layer and tile
    type, using the global level ranks (Reg < LB < GB < DRAM)."""
    names = {i: lvl.name for i, lvl in enumerate(accel.levels)}
    lines = []
    for tr in stack_result.tile_results:
        tile = tr.tile
        lines.append(
            f"tile type {tile.index} (x{tile.count}"
            + (", first tile" if tile.is_first_tile else "")
            + ")"
        )
        for geom, tops in zip(tile.geometry, tr.plan.layer_tops):
            ranks = tops.ranks
            lines.append(
                f"  {geom.layer.name:24s} "
                f"W={names[ranks['W']]:8s} "
                f"I={names[ranks['I']]:8s} "
                f"O={names[ranks['O']]:8s}"
            )
    return "\n".join(lines)


def strategy_comparison(results: Sequence[ScheduleResult]) -> str:
    """Render a CS2-style strategy comparison for one workload."""
    base = results[0].total.energy_pj if results else 1.0
    lines = [
        f"{'Strategy':44s} {'Energy':>10s} {'Latency':>12s} {'vs first':>9s}"
    ]
    for r in results:
        gain = base / r.total.energy_pj if r.total.energy_pj else float("inf")
        lines.append(
            f"{r.strategy_label[:44]:44s} "
            f"{r.energy_mj:8.3f}mJ "
            f"{r.latency_cycles / 1e6:9.2f}Mcy "
            f"{gain:8.2f}x"
        )
    return "\n".join(lines)


#: Table II: the qualitative framework-factor matrix (rows reproduced
#: verbatim from the paper; DeFiNES is this repository).
TABLE2_ROWS = (
    ("DNNVM", (False, True, False), True, False, True, "La"),
    ("Efficient-S", (True, False, False), True, False, False, "La"),
    ("LBDF", (True, False, True), False, False, False, "DRAM"),
    ("ConvFusion", (True, False, True), False, False, True, "DRAM"),
    ("Optimus", (True, False, True), False, False, True, "DRAM"),
    ("DNNFuser", (True, False, False), True, False, True, "DRAM, Mem"),
    ("DeFiNES (ours)", (True, True, True), True, True, True, "En, La"),
)


# ----------------------------------------------------------------------
# Telemetry run summaries (repro stats / --trace / --metrics)
# ----------------------------------------------------------------------
def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def trace_report(records, top: int = 10) -> str:
    """Render a trace's "where did the time go" table: spans aggregated
    by name, sorted by self time (total minus direct children), plus the
    root-span wall-clock coverage line the smoke tests gate on."""
    rows = span_summary(records)
    if not rows:
        return "no spans recorded"
    lines = [
        f"{'span':24s} {'count':>6s} {'total':>10s} {'self':>10s} {'self%':>6s}"
    ]
    grand_self = sum(r["self"] for r in rows) or 1.0
    for row in rows[:top]:
        lines.append(
            f"{row['name'][:24]:24s} {row['count']:6d} "
            f"{_format_seconds(row['total']):>10s} "
            f"{_format_seconds(row['self']):>10s} "
            f"{100.0 * row['self'] / grand_self:5.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span name(s)")
    coverage = trace_coverage(records)
    total_spans = sum(r["count"] for r in rows)
    lines.append(
        f"{total_spans} span(s); root spans cover "
        f"{100.0 * coverage:.1f}% of the traced window"
    )
    return "\n".join(lines)


def _split_series(series: str) -> "tuple[str, dict[str, str]]":
    """Escape-aware series split (shared with :mod:`repro.obs.metrics`);
    an unparseable series degrades to a label-less name."""
    try:
        return split_series(series)
    except ValueError:
        return series, {}


def _hit_rate_line(label: str, hits: float, misses: float) -> "str | None":
    total = hits + misses
    if total <= 0:
        return None
    return (
        f"{label}: {int(hits)} hit(s) / {int(misses)} miss(es) "
        f"({100.0 * hits / total:.1f}% hit rate)"
    )


def metrics_report(values: "Mapping[str, float]", top: int = 12) -> str:
    """Render a metrics snapshot (the flat ``{series: value}`` form of
    :func:`repro.obs.parse_prometheus`): cache hit rates, per-shard
    service utilization, then the largest remaining counters."""
    named: "dict[str, list[tuple[dict, float]]]" = {}
    for series, value in values.items():
        name, labels = _split_series(series)
        named.setdefault(name, []).append((labels, value))

    def total(name: str, **match) -> float:
        return sum(
            value
            for labels, value in named.get(name, [])
            if all(labels.get(k) == v for k, v in match.items())
        )

    lines: list[str] = []

    # Cache effectiveness, every tier that saw traffic.
    for label, hits, misses in (
        (
            "mapping cache",
            total("mapping_cache_gets_total", result="hit"),
            total("mapping_cache_gets_total", result="miss"),
        ),
        (
            "cache client (incl. local)",
            total("cache_client_gets_total", result="hit")
            + total("cache_client_gets_total", result="local"),
            total("cache_client_gets_total", result="miss"),
        ),
        (
            "cache server",
            total("cache_server_hits_total"),
            total("cache_server_misses_total"),
        ),
    ):
        line = _hit_rate_line(label, hits, misses)
        if line is not None:
            lines.append(line)

    # Per-shard service utilization from the labeled histograms.
    shards = sorted(
        {
            labels["shard"]
            for labels, _ in named.get("service_exec_seconds_count", [])
            if "shard" in labels
        },
        key=lambda s: (len(s), s),
    )
    if shards:
        lines.append(
            f"{'shard':>5s} {'jobs':>6s} {'busy':>10s} {'avg wait':>10s}"
        )
        for shard in shards:
            jobs = total("service_exec_seconds_count", shard=shard)
            busy = total("service_exec_seconds_sum", shard=shard)
            wait = total("service_queue_wait_seconds_sum", shard=shard)
            lines.append(
                f"{shard:>5s} {int(jobs):6d} "
                f"{_format_seconds(busy):>10s} "
                f"{_format_seconds(wait / jobs if jobs else 0.0):>10s}"
            )

    # The biggest remaining counters (skip histogram components — they
    # were summarized above — and anything already reported).
    reported = {
        "mapping_cache_gets_total",
        "cache_client_gets_total",
        "cache_server_hits_total",
        "cache_server_misses_total",
    }
    counters = sorted(
        (
            (name, sum(v for _, v in series))
            for name, series in named.items()
            if not name.endswith(("_bucket", "_sum", "_count"))
            and name not in reported
        ),
        key=lambda item: (-item[1], item[0]),
    )
    if counters:
        lines.append("top metrics:")
        for name, value in counters[:top]:
            rendered = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:36s} {rendered}")
    return "\n".join(lines) if lines else "no metrics recorded"


# ----------------------------------------------------------------------
# Run-ledger reports (repro runs list|show|diff|regress)
# ----------------------------------------------------------------------
#: Render order + formatting of the comparable per-run scalars.
_KEY_METRIC_FORMATS = (
    ("wall_seconds", "wall clock", "{:.2f}s"),
    ("orderings", "orderings", "{:.0f}"),
    ("orderings_per_s", "orderings/s", "{:.1f}"),
    ("cache_hit_rate", "cache hit rate", "{:.1%}"),
    ("evaluations", "evaluations", "{:.0f}"),
    ("hypervolume", "hypervolume", "{:.6g}"),
    ("epsilon", "epsilon", "{:.6g}"),
    ("frontier_size", "frontier size", "{:.0f}"),
)


def _fmt_key_metric(fmt: str, value) -> str:
    if value is None:
        return "-"
    return fmt.format(float(value))


def _fmt_stamp(epoch) -> str:
    if not epoch:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(epoch))


def runs_table(records: Sequence[Mapping], limit: int = 20) -> str:
    """Render ``repro runs list``: newest last, one line per record."""
    if not records:
        return "no runs recorded"
    lines = [
        f"{'id':42s} {'status':>9s} {'wall':>9s} {'evals':>7s} "
        f"{'hypervolume':>12s}"
    ]
    shown = records[-limit:]
    for record in shown:
        keys = key_metrics(record)
        wall = (
            f"{keys['wall_seconds']:.1f}s"
            if keys["wall_seconds"] is not None
            else "-"
        )
        evals = (
            f"{keys['evaluations']:.0f}"
            if keys["evaluations"] is not None
            else "-"
        )
        hv = (
            f"{keys['hypervolume']:.6g}"
            if keys["hypervolume"] is not None
            else "-"
        )
        lines.append(
            f"{record.get('id', '?')[:42]:42s} "
            f"{record.get('status', '?'):>9s} {wall:>9s} {evals:>7s} "
            f"{hv:>12s}"
        )
    if len(records) > limit:
        lines.append(f"... {len(records) - limit} older run(s)")
    return "\n".join(lines)


def run_report(record: Mapping, tail: int = 5) -> str:
    """Render ``repro runs show``: manifest, outcome, key metrics, and
    the tail of the convergence series."""
    lines = [f"run {record.get('id', '?')} [{record.get('status', '?')}]"]
    argv = record.get("argv")
    if argv:
        command = record.get("command")
        # `evaluate` is the implicit no-subcommand form; every other
        # command's token is not part of the recorded sub-argv.
        prefix = (
            f"repro {command}"
            if command and command != "evaluate" and argv[:1] != [command]
            else "repro"
        )
        lines.append(f"  argv:     {prefix} {' '.join(str(a) for a in argv)}")
    lines.append(f"  started:  {_fmt_stamp(record.get('started'))}")
    if record.get("host") or record.get("pid"):
        lines.append(
            f"  where:    {record.get('host', '?')} "
            f"(pid {record.get('pid', '?')})"
        )
    versions = record.get("versions") or {}
    if versions:
        lines.append(
            "  versions: "
            + "  ".join(f"{k} {v}" for k, v in sorted(versions.items()))
        )
    manifest = record.get("manifest") or {}
    fingerprints = manifest.get("accelerator_fingerprints") or {}
    for key in sorted(manifest):
        if key == "accelerator_fingerprints":
            continue
        value = manifest[key]
        if value is None:
            continue
        lines.append(f"  {key + ':':18s}{value}")
    for name, fingerprint in sorted(fingerprints.items()):
        lines.append(f"  accelerator:      {name} [{fingerprint}]")
    if record.get("error"):
        lines.append(f"  error:    {record['error']}")

    keys = key_metrics(record)
    metric_lines = [
        f"  {label + ':':18s}{_fmt_key_metric(fmt, keys[key])}"
        for key, label, fmt in _KEY_METRIC_FORMATS
        if keys[key] is not None
    ]
    if metric_lines:
        lines.append("key metrics:")
        lines.extend(metric_lines)

    convergence = record.get("convergence") or []
    if convergence:
        lines.append(
            f"convergence ({len(convergence)} generation(s), "
            f"last {min(tail, len(convergence))} shown):"
        )
        lines.append(
            f"  {'gen':>4s} {'evals':>7s} {'frontier':>9s} "
            f"{'hypervolume':>13s} {'epsilon':>10s}"
        )
        for point in convergence[-tail:]:
            hv = point.get("hypervolume")
            eps = point.get("epsilon")
            lines.append(
                f"  {point.get('index', '?'):>4} "
                f"{point.get('evaluations', point.get('evaluated', '?')):>7} "
                f"{point.get('frontier_size', '?'):>9} "
                f"{(f'{hv:.6g}' if hv is not None else '-'):>13s} "
                f"{(f'{eps:.6g}' if eps is not None else '-'):>10s}"
            )
    return "\n".join(lines)


def run_diff_report(baseline: Mapping, current: Mapping) -> str:
    """Render ``repro runs diff``: the key metrics side by side with
    relative deltas."""
    base = key_metrics(baseline)
    curr = key_metrics(current)
    lines = [
        f"baseline: {baseline.get('id', '?')} "
        f"[{baseline.get('status', '?')}]",
        f"current:  {current.get('id', '?')} "
        f"[{current.get('status', '?')}]",
        f"{'metric':18s} {'baseline':>14s} {'current':>14s} {'delta':>9s}",
    ]
    for key, label, fmt in _KEY_METRIC_FORMATS:
        b, c = base[key], curr[key]
        if b is None and c is None:
            continue
        if b not in (None, 0) and c is not None:
            delta = f"{(c - b) / abs(b):+.1%}"
        else:
            delta = "-"
        lines.append(
            f"{label:18s} {_fmt_key_metric(fmt, b):>14s} "
            f"{_fmt_key_metric(fmt, c):>14s} {delta:>9s}"
        )
    return "\n".join(lines)


def regress_report(checks: Sequence) -> str:
    """Render ``repro runs regress``: one verdict line per check and a
    PASS/FAIL summary (the exit code mirrors it)."""
    lines = [
        f"{'check':40s} {'baseline':>12s} {'current':>12s} "
        f"{'limit':>24s} {'verdict':>10s}"
    ]
    for check in checks:
        def fmt(value):
            if value is None:
                return "-"
            return f"{value:.6g}"

        verdict = check.status.upper()
        line = (
            f"{check.metric[:40]:40s} {fmt(check.baseline):>12s} "
            f"{fmt(check.current):>12s} {check.limit:>24s} {verdict:>10s}"
        )
        if check.note:
            line += f"  ({check.note})"
        lines.append(line)
    regressed = [c for c in checks if c.status == "regressed"]
    if regressed:
        names = ", ".join(c.metric for c in regressed)
        lines.append(f"FAIL: {len(regressed)} regression(s): {names}")
    else:
        lines.append(f"PASS: no regressions in {len(checks)} check(s)")
    return "\n".join(lines)


def table2_factors() -> str:
    """Render Table II: related DF modeling framework comparison."""
    def mark(v: bool) -> str:
        return "yes" if v else "no"

    lines = [
        f"{'Framework':16s} {'modes(FR/HC/FC)':>16s} {'on-chip':>8s} "
        f"{'mem-skip':>9s} {'weights':>8s} {'target':>10s}"
    ]
    for name, modes, onchip, memskip, weights, target in TABLE2_ROWS:
        mode_str = "/".join(mark(m) for m in modes)
        lines.append(
            f"{name:16s} {mode_str:>16s} {mark(onchip):>8s} "
            f"{mark(memskip):>9s} {mark(weights):>8s} {target:>10s}"
        )
    return "\n".join(lines)
