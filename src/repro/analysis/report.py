"""Paper-style text reports: Table I, Table II, Fig. 9 top-level maps."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.results import ScheduleResult, StackResult
from ..hardware.accelerator import Accelerator
from ..workloads.stats import WorkloadStats


def table1_workloads(stats: Iterable[WorkloadStats]) -> str:
    """Render Table I(b): workload statistics."""
    lines = [
        f"{'Workload':16s} {'Layers':>6s} {'MACs':>9s} "
        f"{'Weights':>10s} {'Avg FM':>9s} {'Max FM':>9s} {'Dominance':>11s}"
    ]
    for s in stats:
        kind = "activation" if s.is_activation_dominant else "weight"
        lines.append(
            f"{s.name:16s} {s.layer_count:6d} "
            f"{s.total_mac_count / 1e9:8.2f}G "
            f"{s.total_weight_bytes / 1024:9.1f}K "
            f"{s.avg_feature_map_bytes / 2**20:8.2f}M "
            f"{s.max_feature_map_bytes / 2**20:8.2f}M "
            f"{kind:>11s}"
        )
    return "\n".join(lines)


def table1_architectures(accels: Iterable[Accelerator]) -> str:
    """Render Table I(a): architecture inventory."""
    lines = []
    for a in accels:
        lines.append(a.describe())
    return "\n".join(lines)


def top_level_map(accel: Accelerator, stack_result: StackResult) -> str:
    """Render Fig. 9: the top memory level of W/I/O per layer and tile
    type, using the global level ranks (Reg < LB < GB < DRAM)."""
    names = {i: lvl.name for i, lvl in enumerate(accel.levels)}
    lines = []
    for tr in stack_result.tile_results:
        tile = tr.tile
        lines.append(
            f"tile type {tile.index} (x{tile.count}"
            + (", first tile" if tile.is_first_tile else "")
            + ")"
        )
        for geom, tops in zip(tile.geometry, tr.plan.layer_tops):
            ranks = tops.ranks
            lines.append(
                f"  {geom.layer.name:24s} "
                f"W={names[ranks['W']]:8s} "
                f"I={names[ranks['I']]:8s} "
                f"O={names[ranks['O']]:8s}"
            )
    return "\n".join(lines)


def strategy_comparison(results: Sequence[ScheduleResult]) -> str:
    """Render a CS2-style strategy comparison for one workload."""
    base = results[0].total.energy_pj if results else 1.0
    lines = [
        f"{'Strategy':44s} {'Energy':>10s} {'Latency':>12s} {'vs first':>9s}"
    ]
    for r in results:
        gain = base / r.total.energy_pj if r.total.energy_pj else float("inf")
        lines.append(
            f"{r.strategy_label[:44]:44s} "
            f"{r.energy_mj:8.3f}mJ "
            f"{r.latency_cycles / 1e6:9.2f}Mcy "
            f"{gain:8.2f}x"
        )
    return "\n".join(lines)


#: Table II: the qualitative framework-factor matrix (rows reproduced
#: verbatim from the paper; DeFiNES is this repository).
TABLE2_ROWS = (
    ("DNNVM", (False, True, False), True, False, True, "La"),
    ("Efficient-S", (True, False, False), True, False, False, "La"),
    ("LBDF", (True, False, True), False, False, False, "DRAM"),
    ("ConvFusion", (True, False, True), False, False, True, "DRAM"),
    ("Optimus", (True, False, True), False, False, True, "DRAM"),
    ("DNNFuser", (True, False, False), True, False, True, "DRAM, Mem"),
    ("DeFiNES (ours)", (True, True, True), True, True, True, "En, La"),
)


def table2_factors() -> str:
    """Render Table II: related DF modeling framework comparison."""
    def mark(v: bool) -> str:
        return "yes" if v else "no"

    lines = [
        f"{'Framework':16s} {'modes(FR/HC/FC)':>16s} {'on-chip':>8s} "
        f"{'mem-skip':>9s} {'weights':>8s} {'target':>10s}"
    ]
    for name, modes, onchip, memskip, weights, target in TABLE2_ROWS:
        mode_str = "/".join(mark(m) for m in modes)
        lines.append(
            f"{name:16s} {mode_str:>16s} {mark(onchip):>8s} "
            f"{mark(memskip):>9s} {mark(weights):>8s} {target:>10s}"
        )
    return "\n".join(lines)
