"""Pareto-frontier reports: fixed-width text tables and CSV.

The frontier of a DSE run is a set of non-dominated designs, one row
per surviving :class:`~repro.dse.pareto.FrontierEntry`.  Reading it:
every row is *optimal* for some trade-off between the frontier's
objectives — moving from one row to the next buys an improvement in one
column at the cost of another.  A single-objective frontier degenerates
to the classic argmin (usually one row; several on exact ties).
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..dse.pareto import ParetoFrontier

#: Human-scale units per named objective (value divisor, display unit).
_UNITS = {
    "energy": (1e9, "mJ"),
    "latency": (1e6, "Mcycles"),
    "edp": (1e15, "mJ*Mcy"),
    "dram_accesses": (1e6, "Melems"),
    "offchip_traffic": (1e6, "Melems"),
    "onchip_traffic": (1e6, "Melems"),
    "activation_energy": (1e9, "mJ"),
}


def _column_label(objective: str) -> str:
    scale = _UNITS.get(objective)
    return f"{objective} [{scale[1]}]" if scale else objective


def _display_value(objective: str, value: float) -> float:
    scale = _UNITS.get(objective)
    return value / scale[0] if scale else value


def frontier_table(frontier: "ParetoFrontier") -> str:
    """Fixed-width text rendering of a Pareto frontier, one design per
    row, sorted by the first objective."""
    labels = [_column_label(obj) for obj in frontier.objectives]
    width = max(
        [36]
        + [len(e.point.describe()) for e in frontier.entries]
    )
    header = f"{'Design':{width}s} " + " ".join(
        f"{label:>18s}" for label in labels
    )
    lines = [header]
    for entry in frontier.entries:
        cells = " ".join(
            f"{_display_value(obj, value):18.6g}"
            for obj, value in zip(frontier.objectives, entry.values)
        )
        lines.append(f"{entry.point.describe():{width}s} {cells}")
    if len(lines) == 1:
        lines.append("(empty frontier)")
    return "\n".join(lines)


def frontier_csv(frontier: "ParetoFrontier") -> str:
    """CSV rendering of a Pareto frontier (raw objective values, not
    display-scaled): design axes first, then one column per objective."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["accelerator", "tile_x", "tile_y", "mode", "fuse_depth"]
        + list(frontier.objectives)
    )
    for entry in frontier.entries:
        p = entry.point
        writer.writerow(
            [
                p.accelerator,
                p.tile_x,
                p.tile_y,
                p.mode.value,
                "" if p.fuse_depth is None else p.fuse_depth,
            ]
            + [repr(v) for v in entry.values]
        )
    return buffer.getvalue()
