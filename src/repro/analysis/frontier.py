"""Pareto-frontier reports: fixed-width text tables and CSV.

The frontier of a DSE run is a set of non-dominated designs, one row
per surviving :class:`~repro.dse.pareto.FrontierEntry`.  Reading it:
every row is *optimal* for some trade-off between the frontier's
objectives — moving from one row to the next buys an improvement in one
column at the cost of another.  A single-objective frontier degenerates
to the classic argmin (usually one row; several on exact ties).

Constraint-aware runs add two reports: :func:`infeasible_table` lists
the designs a feasibility filter rejected (with their violation
magnitudes), and :func:`convergence_table` renders the per-generation
progress — evaluations, frontier size and hypervolume — that the
:class:`~repro.dse.runner.DSERunner` tracks and checkpoints.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Sequence

from ..dse.partition import partition_label

if TYPE_CHECKING:
    from ..dse.pareto import FrontierEntry, ParetoFrontier
    from ..dse.runner import GenerationStats

#: Human-scale units per named objective (value divisor, display unit).
_UNITS = {
    "energy": (1e9, "mJ"),
    "latency": (1e6, "Mcycles"),
    "edp": (1e15, "mJ*Mcy"),
    "dram_accesses": (1e6, "Melems"),
    "offchip_traffic": (1e6, "Melems"),
    "onchip_traffic": (1e6, "Melems"),
    "activation_energy": (1e9, "mJ"),
}


def _column_label(objective: str) -> str:
    scale = _UNITS.get(objective)
    return f"{objective} [{scale[1]}]" if scale else objective


def _display_value(objective: str, value: float) -> float:
    scale = _UNITS.get(objective)
    return value / scale[0] if scale else value


def _entry_rows(
    entries: "Sequence[FrontierEntry]",
    objectives: Sequence[str],
    show_violation: bool,
) -> str:
    labels = [_column_label(obj) for obj in objectives]
    if show_violation:
        labels.append("violation")
    width = max([36] + [len(e.point.describe()) for e in entries])
    header = f"{'Design':{width}s} " + " ".join(
        f"{label:>18s}" for label in labels
    )
    lines = [header]
    for entry in entries:
        cells = [
            f"{_display_value(obj, value):18.6g}"
            for obj, value in zip(objectives, entry.values)
        ]
        if show_violation:
            cells.append(f"{entry.violation:18.4g}")
        lines.append(f"{entry.point.describe():{width}s} " + " ".join(cells))
    return "\n".join(lines)


def frontier_table(frontier: "ParetoFrontier") -> str:
    """Fixed-width text rendering of a Pareto frontier, one design per
    row, sorted by (violation, objectives).  A violation column appears
    only when the frontier holds infeasible entries (i.e. no feasible
    design was ever offered)."""
    entries = frontier.entries
    show_violation = any(not e.feasible for e in entries)
    lines = _entry_rows(entries, frontier.objectives, show_violation)
    if not entries:
        lines += "\n(empty frontier)"
    return lines


def infeasible_table(
    entries: "Sequence[FrontierEntry]", objectives: Sequence[str]
) -> str:
    """Fixed-width rendering of constraint-violating designs (as
    :attr:`~repro.dse.runner.DSEResult.infeasible` reports them), with
    their total violation in the last column."""
    if not entries:
        return "(no infeasible designs)"
    return _entry_rows(entries, objectives, show_violation=True)


def convergence_table(generations: "Sequence[GenerationStats]") -> str:
    """Per-generation convergence: evaluations, frontier size and the
    hypervolume against the run's fixed reference point (monotone
    non-decreasing within a run; '-' before any design was feasible).
    Runs tracking a reference frontier get an ``epsilon`` column too
    (additive epsilon vs. that frontier, monotone non-increasing)."""
    with_epsilon = any(s.epsilon is not None for s in generations)
    header = (
        f"{'gen':>4s} {'proposed':>9s} {'evaluated':>10s} "
        f"{'cached':>7s} {'frontier':>9s} {'hypervolume':>14s}"
    )
    if with_epsilon:
        header += f" {'epsilon':>12s}"
    lines = [header]
    for s in generations:
        hv = "-" if s.hypervolume is None else f"{s.hypervolume:.6g}"
        line = (
            f"{s.index:4d} {s.proposed:9d} {s.evaluated:10d} "
            f"{s.cached:7d} {s.frontier_size:9d} {hv:>14s}"
        )
        if with_epsilon:
            eps = "-" if s.epsilon is None else f"{s.epsilon:.6g}"
            line += f" {eps:>12s}"
        lines.append(line)
    if len(lines) == 1:
        lines.append("(no generations)")
    return "\n".join(lines)


def frontier_csv(frontier: "ParetoFrontier") -> str:
    """CSV rendering of a Pareto frontier (raw objective values, not
    display-scaled): design axes first — including the winning stack
    partition, as cut positions over the workload's branch-free
    segments — then one column per objective, then the total constraint
    violation."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["accelerator", "tile_x", "tile_y", "mode", "fuse_depth", "partition"]
        + list(frontier.objectives)
        + ["violation"]
    )
    for entry in frontier.entries:
        p = entry.point
        writer.writerow(
            [
                p.accelerator,
                p.tile_x,
                p.tile_y,
                p.mode.value,
                "" if p.fuse_depth is None else p.fuse_depth,
                partition_label(p.partition),
            ]
            + [repr(v) for v in entry.values]
            + [repr(entry.violation)]
        )
    return buffer.getvalue()
