"""Matplotlib renderings of DSE results: frontier scatter and
per-generation convergence curves.

matplotlib is an *optional* dependency: when it is absent every
``plot_*`` function warns and returns ``None`` instead of raising, so
callers (``repro dse --plot``) degrade to the text reports.  The data
extraction lives in pure helpers (:func:`frontier_series`,
:func:`convergence_series`) that need no plotting backend — they are
what the renderers consume and what the tests cover everywhere.
"""

from __future__ import annotations

import importlib.util
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..dse.pareto import ParetoFrontier
    from ..dse.runner import GenerationStats

#: Whether the plotting backend is importable on this interpreter.
#: Checked without importing it: matplotlib only loads inside
#: :func:`_render`, and rendering goes straight to an Agg canvas — the
#: process-global pyplot backend is never touched, so importing this
#: package can't break an interactive session's plots.
HAVE_MATPLOTLIB = importlib.util.find_spec("matplotlib") is not None


def _skip(what: str) -> None:
    warnings.warn(
        f"matplotlib is not installed; skipping {what}", stacklevel=3
    )


# ----------------------------------------------------------------------
# Pure series extraction (no matplotlib required)
# ----------------------------------------------------------------------
def frontier_series(frontier: "ParetoFrontier") -> dict:
    """Plot-ready arrays for a frontier scatter.

    Uses the first two objectives as (x, y); a single-objective frontier
    plots value against frontier rank.  Feasible and infeasible entries
    are split so the renderer can mark them differently.
    """
    objectives = frontier.objectives
    two_d = len(objectives) >= 2
    series: dict = {
        "x_label": objectives[0],
        "y_label": objectives[1] if two_d else objectives[0],
        "feasible": {"x": [], "y": [], "labels": []},
        "infeasible": {"x": [], "y": [], "labels": []},
    }
    if not two_d:
        series["x_label"] = "frontier rank"
    for rank, entry in enumerate(frontier.entries):
        bucket = series["feasible" if entry.feasible else "infeasible"]
        if two_d:
            bucket["x"].append(entry.values[0])
            bucket["y"].append(entry.values[1])
        else:
            bucket["x"].append(rank)
            bucket["y"].append(entry.values[0])
        bucket["labels"].append(entry.point.describe())
    return series


def convergence_series(generations: "Sequence[GenerationStats]") -> dict:
    """Plot-ready per-generation arrays: evaluations, frontier size,
    hypervolume, and epsilon-vs-reference where tracked (None gaps are
    preserved so the renderer can mask them)."""
    return {
        "index": [s.index for s in generations],
        "evaluated": [s.evaluated for s in generations],
        "cached": [s.cached for s in generations],
        "frontier_size": [s.frontier_size for s in generations],
        "hypervolume": [s.hypervolume for s in generations],
        "epsilon": [s.epsilon for s in generations],
        "has_hypervolume": any(s.hypervolume is not None for s in generations),
        "has_epsilon": any(s.epsilon is not None for s in generations),
    }


def _masked(xs: list, ys: list) -> tuple[list, list]:
    """Drop positions where the y value is None (untracked gaps)."""
    pairs = [(x, y) for x, y in zip(xs, ys) if y is not None]
    return [p[0] for p in pairs], [p[1] for p in pairs]


# ----------------------------------------------------------------------
# Renderers (matplotlib-gated)
# ----------------------------------------------------------------------
def plot_frontier(
    frontier: "ParetoFrontier", path: "str | Path"
) -> "Path | None":
    """Scatter the frontier (first two objectives) to an image file;
    returns the path written, or ``None`` without matplotlib."""
    if not HAVE_MATPLOTLIB:
        _skip("the frontier plot")
        return None
    return _render(path, [(_draw_frontier, frontier_series(frontier))])


def plot_convergence(
    generations: "Sequence[GenerationStats]", path: "str | Path"
) -> "Path | None":
    """Plot hypervolume (and epsilon, when tracked) per generation;
    returns the path written, or ``None`` without matplotlib."""
    if not HAVE_MATPLOTLIB:
        _skip("the convergence plot")
        return None
    return _render(path, [(_draw_convergence, convergence_series(generations))])


def plot_dse_summary(
    frontier: "ParetoFrontier",
    generations: "Sequence[GenerationStats]",
    path: "str | Path",
) -> "Path | None":
    """One figure: frontier scatter beside the convergence curves (the
    ``repro dse --plot`` backend); ``None`` without matplotlib."""
    if not HAVE_MATPLOTLIB:
        _skip("the DSE summary plot")
        return None
    return _render(
        path,
        [
            (_draw_frontier, frontier_series(frontier)),
            (_draw_convergence, convergence_series(generations)),
        ],
    )


def _render(path: "str | Path", panels: list) -> Path:  # pragma: no cover
    """Draw one axes per (drawer, series) panel and save the figure
    through a private Agg canvas (no pyplot, no global backend)."""
    from matplotlib.backends.backend_agg import FigureCanvasAgg
    from matplotlib.figure import Figure

    fig = Figure(figsize=(5.5 * len(panels), 4.4))
    FigureCanvasAgg(fig)
    axes = fig.subplots(1, len(panels), squeeze=False)
    for ax, (drawer, series) in zip(axes[0], panels):
        drawer(ax, series)
    fig.tight_layout()
    target = Path(path)
    fig.savefig(target, dpi=150)
    return target


def _draw_frontier(ax, series: dict) -> None:  # pragma: no cover
    feasible, infeasible = series["feasible"], series["infeasible"]
    if feasible["x"]:
        order = sorted(range(len(feasible["x"])), key=lambda i: feasible["x"][i])
        ax.plot(
            [feasible["x"][i] for i in order],
            [feasible["y"][i] for i in order],
            marker="o",
            linestyle="-",
            label="feasible frontier",
        )
    if infeasible["x"]:
        ax.scatter(
            infeasible["x"],
            infeasible["y"],
            marker="x",
            color="tab:red",
            label="infeasible",
        )
    ax.set_xlabel(series["x_label"])
    ax.set_ylabel(series["y_label"])
    ax.set_title("Pareto frontier")
    if feasible["x"] or infeasible["x"]:
        ax.legend()


def _draw_convergence(ax, series: dict) -> None:  # pragma: no cover
    drew = False
    if series["has_hypervolume"]:
        xs, ys = _masked(series["index"], series["hypervolume"])
        ax.plot(xs, ys, marker="o", color="tab:blue", label="hypervolume")
        ax.set_ylabel("hypervolume")
        drew = True
    if series["has_epsilon"]:
        other = ax.twinx() if drew else ax
        xs, ys = _masked(series["index"], series["epsilon"])
        other.plot(
            xs, ys, marker="s", color="tab:orange", label="epsilon vs reference"
        )
        other.set_ylabel("additive epsilon")
        drew = True
    if not drew:
        xs, ys = series["index"], series["frontier_size"]
        ax.plot(xs, ys, marker="o", label="frontier size")
        ax.set_ylabel("frontier size")
    ax.set_xlabel("generation")
    ax.set_title("Convergence")
