"""Table I(a): the ten accelerator architectures (5 baselines + 5
DF-friendly variants), normalized to 1024 MACs and <= 2 MB global buffer.
"""

from repro.analysis import table1_architectures
from repro.hardware.zoo import ACCELERATOR_FACTORIES

from .conftest import write_output

MB = 1024 * 1024


def test_table1_architecture_inventory(benchmark):
    accels = benchmark.pedantic(
        lambda: {name: f() for name, f in ACCELERATOR_FACTORIES.items()},
        rounds=1,
        iterations=1,
    )
    write_output(
        "table1_architectures.txt", table1_architectures(accels.values())
    )

    assert len(accels) == 10
    for name, accel in accels.items():
        assert accel.pe_count == 1024, name
        gb_bytes = sum(
            i.size_bytes for i in accel.instances() if i.tier == "GB"
        )
        assert gb_bytes <= 2 * MB, name
    # DF guideline 2: total on-chip capacity within 13% of the baseline
    # (Table I itself moves a few KB between levels).
    for base in ("meta_proto_like", "edge_tpu_like", "ascend_like"):
        ratio = (
            accels[base + "_df"].on_chip_capacity_bytes()
            / accels[base].on_chip_capacity_bytes()
        )
        assert 0.87 < ratio < 1.31, base
