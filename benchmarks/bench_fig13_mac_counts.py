"""Fig. 13: MAC operation count along the diagonal tile sizes for the
three overlap modes.

Shapes: recompute overhead explodes at small tiles (the paper's (1,1)
fully-recompute point sits an order of magnitude above the floor), the
cached modes stay near the nominal MAC count, and all modes converge at
the LBL corner.
"""

from repro.core.backcalc import backcalculate
from repro.core.optimizer import PAPER_DIAGONAL
from repro.core.stacks import partition_stacks
from repro.core.strategy import OverlapMode

from .conftest import write_output


def test_fig13_mac_counts(benchmark, fsrcnn, meta_df_engine):
    stack = partition_stacks(fsrcnn, meta_df_engine.accel)[0]

    def run():
        out = {}
        for mode in OverlapMode:
            for tile in PAPER_DIAGONAL:
                out[(mode, tile)] = backcalculate(stack, mode, *tile).total_mac_count
        return out

    macs = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'tile':12s}" + "".join(f"{m.value:>24s}" for m in OverlapMode)]
    for tile in PAPER_DIAGONAL:
        row = f"{tile!s:12s}" + "".join(
            f"{macs[(m, tile)] / 1e9:23.2f}G" for m in OverlapMode
        )
        lines.append(row)
    write_output("fig13_mac_counts.txt", "\n".join(lines))

    nominal = fsrcnn.total_mac_count
    for tile in PAPER_DIAGONAL:
        assert macs[(OverlapMode.FULLY_CACHED, tile)] == nominal
        assert macs[(OverlapMode.FULLY_RECOMPUTE, tile)] >= (
            macs[(OverlapMode.H_CACHED_V_RECOMPUTE, tile)]
        )
        assert macs[(OverlapMode.H_CACHED_V_RECOMPUTE, tile)] >= nominal
    # Recompute at (1,1) is an order of magnitude above the floor.
    assert macs[(OverlapMode.FULLY_RECOMPUTE, (1, 1))] > 5 * nominal
    # Convergence at the LBL corner.
    corner = {macs[(m, (960, 540))] for m in OverlapMode}
    assert corner == {nominal}
