"""Model runtime: the paper quotes 23 / 34 / 84 seconds per (60,72)
design point (fully-recompute / H-cached / fully-cached) on one Xeon
thread at lpf_limit=8, and 18 hours for the 108-point artifact.

This reimplementation evaluates a cold-cache (60,72) point in well under
a minute per mode at lpf_limit=6, and warm-cache points in milliseconds
thanks to tile-type and mapping memoization.
"""

import time

from repro import DepthFirstEngine, DFStrategy, get_accelerator, get_workload
from repro.core.strategy import OverlapMode
from repro.mapping import SearchConfig

from .conftest import write_output


def test_runtime_per_design_point(benchmark):
    wl = get_workload("fsrcnn")

    def run():
        timings = {}
        for mode in OverlapMode:
            engine = DepthFirstEngine(
                get_accelerator("meta_proto_like_df"),
                SearchConfig(lpf_limit=6, budget=200),
            )
            t0 = time.perf_counter()
            engine.evaluate(wl, DFStrategy(tile_x=60, tile_y=72, mode=mode))
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            engine.evaluate(wl, DFStrategy(tile_x=60, tile_y=72, mode=mode))
            warm = time.perf_counter() - t0
            timings[mode] = (cold, warm)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {
        OverlapMode.FULLY_RECOMPUTE: 23.0,
        OverlapMode.H_CACHED_V_RECOMPUTE: 34.0,
        OverlapMode.FULLY_CACHED: 84.0,
    }
    lines = ["(60,72) design point runtime, cold/warm cache (s):"]
    for mode, (cold, warm) in timings.items():
        lines.append(
            f"  {mode.value:22s} cold={cold:6.2f}s warm={warm:6.3f}s "
            f"(paper, lpf=8: {paper[mode]:.0f}s)"
        )
    write_output("runtime.txt", "\n".join(lines))

    for mode, (cold, _warm) in timings.items():
        assert cold < 60.0, f"{mode}: too slow"
