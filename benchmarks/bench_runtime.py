"""Model runtime: the paper quotes 23 / 34 / 84 seconds per (60,72)
design point (fully-recompute / H-cached / fully-cached) on one Xeon
thread at lpf_limit=8, and 18 hours for the 108-point artifact.

This reimplementation evaluates a cold-cache (60,72) point in well under
a minute per mode at lpf_limit=6, and warm-cache points in milliseconds
thanks to tile-type and mapping memoization.
"""

import os
import time

from repro import DepthFirstEngine, DFStrategy, get_accelerator, get_workload
from repro.core.strategy import OverlapMode
from repro.explore import Executor, MappingCache, SweepSpec
from repro.mapping import SearchConfig

from .conftest import OUTPUT_DIR, write_output


def test_runtime_per_design_point(benchmark):
    wl = get_workload("fsrcnn")

    def run():
        timings = {}
        for mode in OverlapMode:
            engine = DepthFirstEngine(
                get_accelerator("meta_proto_like_df"),
                SearchConfig(lpf_limit=6, budget=200),
            )
            t0 = time.perf_counter()
            engine.evaluate(wl, DFStrategy(tile_x=60, tile_y=72, mode=mode))
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            engine.evaluate(wl, DFStrategy(tile_x=60, tile_y=72, mode=mode))
            warm = time.perf_counter() - t0
            timings[mode] = (cold, warm)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {
        OverlapMode.FULLY_RECOMPUTE: 23.0,
        OverlapMode.H_CACHED_V_RECOMPUTE: 34.0,
        OverlapMode.FULLY_CACHED: 84.0,
    }
    lines = ["(60,72) design point runtime, cold/warm cache (s):"]
    for mode, (cold, warm) in timings.items():
        lines.append(
            f"  {mode.value:22s} cold={cold:6.2f}s warm={warm:6.3f}s "
            f"(paper, lpf=8: {paper[mode]:.0f}s)"
        )
    write_output("runtime.txt", "\n".join(lines))

    for mode, (cold, _warm) in timings.items():
        assert cold < 60.0, f"{mode}: too slow"


def test_parallel_sweep_and_persistent_cache(benchmark):
    """The exploration runtime on (a slice of) the Fig. 12 grid.

    Three runs of the same sweep spec:

    1. serial, cold cache — the baseline;
    2. parallel (2 workers), cold cache — must be bit-identical to the
       serial run, and faster whenever more than one CPU is available
       (on a single-core machine process parallelism cannot win, so the
       speedup assert is skipped there — the identity assert is not);
    3. serial, warm from the *persisted* cache of run 1 — must be
       faster than run 1, produce identical totals, and run zero new
       LOMA searches.
    """
    tiles = ((1, 1), (4, 4), (4, 72), (16, 18), (60, 72), (240, 270))
    spec = SweepSpec.tile_grid(
        "meta_proto_like_df", "fsrcnn", tiles,
        (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
    )
    config = SearchConfig(lpf_limit=6, budget=150)

    def run():
        timings = {}

        serial = Executor(jobs=1, search_config=config, cache=MappingCache())
        t0 = time.perf_counter()
        serial_results = serial.run(spec)
        timings["serial_cold"] = time.perf_counter() - t0

        parallel = Executor(jobs=2, search_config=config, cache=MappingCache())
        t0 = time.perf_counter()
        parallel_results = parallel.run(spec)
        timings["parallel_cold"] = time.perf_counter() - t0

        cache_path = OUTPUT_DIR / "runtime_mapping_cache.json"
        serial.cache.save(cache_path)
        warm_cache = MappingCache(cache_path)
        warm = Executor(jobs=1, search_config=config, cache=warm_cache)
        t0 = time.perf_counter()
        warm_results = warm.run(spec)
        timings["serial_warm"] = time.perf_counter() - t0

        return timings, serial_results, parallel_results, warm_results, warm_cache

    timings, serial_results, parallel_results, warm_results, warm_cache = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    # CPUs actually usable by this process (cgroup/affinity aware), not
    # the host count: in a 1-CPU container two workers only time-slice.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        cpus = os.cpu_count() or 1
    lines = [
        f"{len(spec)}-point Fig. 12 sweep slice ({cpus} CPU(s)):",
        f"  serial cold:    {timings['serial_cold']:7.2f}s",
        f"  parallel cold:  {timings['parallel_cold']:7.2f}s (2 workers)",
        f"  serial warm:    {timings['serial_warm']:7.2f}s (disk cache, "
        f"{warm_cache.stats['hits']} hits / {warm_cache.stats['misses']} misses)",
    ]
    write_output("runtime_parallel.txt", "\n".join(lines))

    # Parallel output is bit-identical to serial, in the same order.
    for s, p in zip(serial_results, parallel_results):
        assert s.job.strategy == p.job.strategy
        assert s.result.total == p.result.total

    # With real parallel hardware, 2 workers beat the serial sweep.
    if cpus > 1:
        assert timings["parallel_cold"] < timings["serial_cold"], timings

    # The warm re-run is faster, identical, and searches nothing anew.
    assert timings["serial_warm"] < timings["serial_cold"], timings
    for s, w in zip(serial_results, warm_results):
        assert s.result.total == w.result.total
    assert warm_cache.misses == 0, warm_cache.stats
