"""Fig. 12 (case study 1): energy & latency heatmaps over 3 overlap modes
and a tile-size grid, for FSRCNN on Meta-proto-like DF.

The paper sweeps 3 x 6 x 6 = 108 points (18 h of artifact runtime);
the default here sweeps the grid's corners, edges and diagonal (3 x 9
points) and REPRO_FULL=1 runs the complete 108-point grid.

Shape checks (the paper's four observations):
1. per mode, both the smallest and the largest tiles are sub-optimal;
2. per tile size, fully-cached <= H-cached <= fully-recompute energy;
3. large energy/latency spreads across the space;
4. all modes coincide at the LBL corner (960, 540).
"""

from repro.analysis import energy_mj, latency_mcycles, render_heatmap, sweep_grid
from repro.core.optimizer import ALL_MODES, PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y
from repro.core.strategy import OverlapMode
from repro.explore import Executor, SweepSpec

from .conftest import FULL, JOBS, write_output

if FULL:
    TILE_SIZES = [
        (tx, ty) for tx in PAPER_TILE_GRID_X for ty in PAPER_TILE_GRID_Y
    ]
else:
    TILE_SIZES = [
        (1, 1), (4, 4), (16, 18), (60, 72), (240, 270), (960, 540),
        (4, 72), (60, 4), (960, 1), (1, 540),
    ]


def test_fig12_heatmaps(benchmark, fsrcnn, meta_df_engine):
    # The CS1 grid as a declarative spec on the exploration runtime;
    # REPRO_JOBS>1 spreads it over worker processes.
    spec = SweepSpec.tile_grid(meta_df_engine.accel, fsrcnn, TILE_SIZES, ALL_MODES)
    executor = Executor(
        jobs=JOBS,
        search_config=meta_df_engine.mapper.config,
        cache=meta_df_engine.cache,
    )
    points = benchmark.pedantic(lambda: executor.run(spec), rounds=1, iterations=1)

    xs, ys = PAPER_TILE_GRID_X, PAPER_TILE_GRID_Y
    sections = []
    for mode in ALL_MODES:
        grid_e = sweep_grid(points, mode, xs, ys, energy_mj)
        grid_l = sweep_grid(points, mode, xs, ys, latency_mcycles)
        sections.append(render_heatmap(grid_e, xs, ys, f"{mode.value}: energy (mJ)", "{:8.2f}"))
        sections.append(render_heatmap(grid_l, xs, ys, f"{mode.value}: latency (Mcycles)", "{:8.1f}"))
    write_output("fig12_heatmaps.txt", "\n\n".join(sections))

    by_key = {
        (p.strategy.mode, p.strategy.tile_x, p.strategy.tile_y): p.result
        for p in points
    }

    # Observation 1: U-shape along the diagonal for every mode.
    for mode in ALL_MODES:
        tiny = by_key[(mode, 1, 1)].energy_pj
        mid = by_key[(mode, 16, 18)].energy_pj
        lbl = by_key[(mode, 960, 540)].energy_pj
        assert mid < tiny and mid < lbl, mode

    # Observation 2: mode ordering at small/medium tiles.
    for tile in ((1, 1), (4, 4), (16, 18), (60, 72)):
        e_rec = by_key[(OverlapMode.FULLY_RECOMPUTE, *tile)].energy_pj
        e_h = by_key[(OverlapMode.H_CACHED_V_RECOMPUTE, *tile)].energy_pj
        e_fc = by_key[(OverlapMode.FULLY_CACHED, *tile)].energy_pj
        assert e_fc <= e_h * 1.001 <= e_rec * 1.002, tile

    # Observation 3: the spread across the space is large (paper: up to
    # 26x energy / 57x latency over the full grid).
    energies = [p.result.energy_pj for p in points]
    latencies = [p.result.latency_cycles for p in points]
    assert max(energies) / min(energies) > 3.0
    assert max(latencies) / min(latencies) > 3.0

    # Observation 4: the LBL corner is mode-independent.
    corner = [by_key[(m, 960, 540)].energy_pj for m in ALL_MODES]
    assert max(corner) / min(corner) < 1.001
