"""LOMA hot-path throughput: batch vs. scalar mapping engine.

Measures candidate orderings scored per second by the vectorized batch
engine (``SearchConfig(engine="batch")``) and the pure-python scalar
reference on cold-cache single-layer searches, and writes the blessed
numbers to ``BENCH_loma.json`` at the repo root.  Regenerate with::

    python -m benchmarks.bench_loma            # quick workload set
    REPRO_FULL=1 python -m benchmarks.bench_loma

The run is deterministic: candidate enumeration is a fixed-seed
(deterministic ``islice``) sample of the permutation space, and both
engines score the *same* candidate list — the speedup column compares
identical work.  Under pytest, the smoke tests assert the batch engine's
advantage (>= 3x) and bit-identical results on one workload.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_loma.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import get_accelerator, get_workload
from repro.mapping import MappingSearchEngine, SearchConfig
from repro.mapping.cache import encode_search_result

#: Where the blessed numbers live (checked in; CI's bench-smoke job
#: expects a regeneration whenever src/repro/mapping/ changes).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_loma.json"

#: (workload, accelerator) measurement points; the first row is the CI
#: smoke point.
QUICK_POINTS = (
    ("fsrcnn", "meta_proto_like_df"),
    ("mobilenet_v1", "edge_tpu_like"),
    ("resnet18", "tpu_like"),
)
FULL_POINTS = QUICK_POINTS + (
    ("dmcnn_vd", "ascend_like"),
    ("mccnn", "tesla_npu_like"),
)

#: Search knobs of the measurement (the fast-mode artifact settings).
LPF_LIMIT = 6
BUDGET = 400


def measure_point(
    workload_name: str, accel_name: str, engine: str
) -> dict[str, float]:
    """Cold-cache search over every layer; returns orderings/s."""
    accel = get_accelerator(accel_name)
    layers = get_workload(workload_name).layers()
    config = SearchConfig(lpf_limit=LPF_LIMIT, budget=BUDGET, engine=engine)
    orderings = 0
    start = time.perf_counter()
    for layer in layers:
        searcher = MappingSearchEngine(config)  # fresh cache: cold path
        orderings += searcher.search(layer, accel).evaluated
    elapsed = time.perf_counter() - start
    return {
        "orderings": orderings,
        "seconds": elapsed,
        "orderings_per_s": orderings / elapsed if elapsed else float("inf"),
    }


def run(points=QUICK_POINTS) -> dict:
    rows = []
    for workload_name, accel_name in points:
        row: dict = {"workload": workload_name, "accelerator": accel_name}
        for engine in ("scalar", "batch"):
            row[engine] = measure_point(workload_name, accel_name, engine)
        row["speedup"] = (
            row["batch"]["orderings_per_s"] / row["scalar"]["orderings_per_s"]
        )
        rows.append(row)
    return {
        "benchmark": "loma-ordering-throughput",
        "config": {"lpf_limit": LPF_LIMIT, "budget": BUDGET, "cache": "cold"},
        "note": "deterministic candidate sample; both engines score the "
        "same orderings, so speedup compares identical work",
        "points": rows,
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# CI smoke tests
# ----------------------------------------------------------------------
def test_batch_speedup_smoke():
    """The batch engine must score orderings >= 3x faster than scalar on
    the CI smoke point (locally it is typically 20-40x)."""
    workload_name, accel_name = QUICK_POINTS[0]
    scalar = measure_point(workload_name, accel_name, "scalar")
    batch = measure_point(workload_name, accel_name, "batch")
    speedup = batch["orderings_per_s"] / scalar["orderings_per_s"]
    assert batch["orderings"] == scalar["orderings"]
    assert speedup >= 3.0, (
        f"batch engine only {speedup:.1f}x scalar "
        f"({batch['orderings_per_s']:.0f} vs "
        f"{scalar['orderings_per_s']:.0f} orderings/s)"
    )


def test_engines_bit_identical_smoke():
    """Spot parity check on the smoke point (the exhaustive suite lives
    in tests/mapping/test_batch.py)."""
    workload_name, accel_name = QUICK_POINTS[0]
    accel = get_accelerator(accel_name)
    config = dict(lpf_limit=LPF_LIMIT, budget=BUDGET)
    for layer in get_workload(workload_name).layers():
        batch = MappingSearchEngine(
            SearchConfig(engine="batch", **config)
        ).search(layer, accel)
        scalar = MappingSearchEngine(
            SearchConfig(engine="scalar", **config)
        ).search(layer, accel)
        assert encode_search_result(batch) == encode_search_result(scalar)
        assert batch.evaluated == scalar.evaluated


def main() -> int:
    import os

    points = FULL_POINTS if os.environ.get("REPRO_FULL") == "1" else QUICK_POINTS
    results = run(points)
    path = write_results(results)
    for row in results["points"]:
        print(
            f"{row['workload']:>14s} on {row['accelerator']:<18s} "
            f"scalar {row['scalar']['orderings_per_s']:8.0f}/s   "
            f"batch {row['batch']['orderings_per_s']:10.0f}/s   "
            f"speedup {row['speedup']:6.1f}x"
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
