"""Fig. 10: per-layer activation data sizes (I, O, I+O) of the tile
types, against the LB (64KB) and GB (1MB) capacities.

Reproduces the figure's two mechanisms: when I+O fit the LB, both top out
there; when only one fits, I is prioritized and O is pushed to the GB.
"""

from repro import DFStrategy, OverlapMode

from .conftest import write_output

LB = 64 * 1024
GB = 1024 * 1024


def test_fig10_activation_sizes(benchmark, fsrcnn, meta_df_engine):
    strategy = DFStrategy(
        tile_x=60, tile_y=72, mode=OverlapMode.FULLY_RECOMPUTE
    )
    result = benchmark.pedantic(
        lambda: meta_df_engine.evaluate(fsrcnn, strategy), rounds=1, iterations=1
    )
    accel = meta_df_engine.accel
    i_hier = accel.hierarchy("I")
    o_hier = accel.hierarchy("O")

    lines = [f"{'tile type/layer':32s} {'I (B)':>9s} {'O (B)':>9s} "
             f"{'I+O (B)':>9s} {'top I':>7s} {'top O':>7s}"]
    checked_priority = False
    for tr in result.stacks[0].tile_results:
        for geom, tops in zip(tr.tile.geometry, tr.plan.layer_tops):
            i_level = i_hier[tops.tops["I"]]
            o_level = o_hier[tops.tops["O"]]
            lines.append(
                f"t{tr.tile.index}/{geom.layer.name:28s} "
                f"{geom.input_bytes:9d} {geom.output_bytes:9d} "
                f"{geom.input_bytes + geom.output_bytes:9d} "
                f"{i_level.name:>7s} {o_level.name:>7s}"
            )
            is_sink = geom.layer.name == result.stacks[0].layer_names[-1]
            is_source = geom.is_source
            if is_sink or is_source:
                continue  # their tops are pinned to stack boundaries
            if geom.input_bytes + geom.output_bytes <= LB:
                # Mechanism 1: both fit -> both in LB.
                assert i_level.name == "LB_IO"
                assert o_level.name == "LB_IO"
            elif geom.input_bytes <= LB:
                # Mechanism 2: I keeps LB, O pushed to GB.
                assert i_level.name == "LB_IO"
                assert o_level.name == "GB_IO"
                checked_priority = True
    write_output("fig10_activation_sizes.txt", "\n".join(lines))
    assert checked_priority, "expected at least one I+O>LB layer at 60x72"
