"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and writes
its rows to ``benchmarks/output/``.  Set ``REPRO_FULL=1`` to run the full
paper-sized grids (the defaults use reduced grids so the whole harness
finishes in minutes; the original artifact takes 18 hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import DepthFirstEngine, MappingCache, get_accelerator, get_workload
from repro.mapping import SearchConfig
from repro.obs import ledger as run_ledger

#: Full paper grids vs. quick reduced grids.
FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Worker processes for the grid-shaped benchmarks (1 = serial).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(autouse=True)
def _ledger_sandbox(tmp_path, monkeypatch):
    """Benchmarks drive the CLI too — sandbox their run ledger unless
    the harness explicitly pointed REPRO_RUNS_DIR somewhere."""
    if not os.environ.get(run_ledger.RUNS_DIR_ENV):
        monkeypatch.setenv(run_ledger.RUNS_DIR_ENV, str(tmp_path / "runs"))
    run_ledger.reset()
    yield
    run_ledger.reset()


def write_output(name: str, text: str) -> Path:
    """Persist a benchmark's reproduced rows."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def search_config():
    # The artifact's loma_lpf_limit=6 fast mode; budget caps orderings.
    return SearchConfig(lpf_limit=6, budget=200 if FULL else 150)


@pytest.fixture(scope="session")
def fsrcnn():
    return get_workload("fsrcnn")


@pytest.fixture(scope="session")
def mapping_cache():
    """One mapping cache shared by the case-study benchmarks; point
    ``REPRO_CACHE`` at a JSON file to persist it across harness runs."""
    path = os.environ.get("REPRO_CACHE")
    cache = MappingCache(path) if path else MappingCache()
    yield cache
    if path:
        cache.save()


@pytest.fixture(scope="session")
def meta_df_engine(search_config, mapping_cache):
    """One shared engine for the FSRCNN case-study benchmarks: the
    mapping cache carries across figures exactly as DeFiNES' tile-type
    deduplication intends."""
    return DepthFirstEngine(
        get_accelerator("meta_proto_like_df"), search_config, cache=mapping_cache
    )
