"""Regression-gate smoke benchmark: the `repro runs regress` CI gate.

The same small genetic DSE as :mod:`bench_obs` runs through the real CLI
with telemetry on, leaving a ledger record.  That record is gated
against the committed baseline (``benchmarks/baselines/
regress_baseline.json``, generated from an actual run of this exact
config):

* the fresh run must PASS (exit 0) against the baseline — hypervolume is
  deterministic per seed across machines, throughput gets a generous
  cross-machine tolerance;
* a doctored copy of the run, its orderings counter scaled down 100x,
  must FAIL (exit 1) — proof the gate actually fires on a throughput
  collapse.

Run directly (``python -m pytest benchmarks/bench_regress.py -q``) or
let CI's ``regress-smoke`` job do it on every push.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_regress.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main
from repro.obs import ledger

from .bench_obs import dse_args
from .conftest import write_output

BASELINE = Path(__file__).parent / "baselines" / "regress_baseline.json"

#: Throughput tolerance for the smoke gate.  CI machines differ wildly
#: from the one that produced the baseline, so only a near-collapse
#: (>95% slowdown) fails; hypervolume keeps the tight default.
MAX_SLOWDOWN = "0.95"


def test_regress_gate(tmp_path, capsys):
    runs = tmp_path / "runs"
    out = tmp_path / "dse.json"
    prom = tmp_path / "run.prom"

    assert (
        main(
            dse_args(
                out,
                ["--metrics", str(prom), "--runs-dir", str(runs)],
            )
        )
        == 0
    )
    (record,) = ledger.list_runs(runs)
    assert record["status"] == "ok"

    # 1. The fresh run passes against the committed baseline.
    code = main(
        ["runs", "regress",
         "--baseline", str(BASELINE),
         "--runs-dir", str(runs),
         "--max-slowdown", MAX_SLOWDOWN]
    )
    pass_report = capsys.readouterr().out
    assert code == 0, f"gate failed against baseline:\n{pass_report}"
    assert "PASS" in pass_report
    # Hypervolume must be gated for real, not skipped: same seed, same
    # budget, deterministic engine.
    hv_lines = [
        l for l in pass_report.splitlines() if l.startswith("hypervolume")
    ]
    assert hv_lines and "OK" in hv_lines[0], pass_report

    # 2. An injected throughput regression fails the gate.  The doctored
    # record is written as a NEWER run so `latest` resolves to it.
    doctored = json.loads(Path(record["_path"]).read_text())
    doctored["id"] = record["id"] + "-doctored"
    doctored["started"] = record["started"] + 1000.0
    for metric in doctored["metrics"]["metrics"]:
        if metric["name"] == "loma_orderings_evaluated_total":
            metric["data"] = metric["data"] / 100.0
    (runs / f"{doctored['id']}.json").write_text(json.dumps(doctored))

    code = main(
        ["runs", "regress",
         "--baseline", str(BASELINE),
         "--runs-dir", str(runs),
         "--max-slowdown", MAX_SLOWDOWN]
    )
    fail_report = capsys.readouterr().out
    assert code == 1, f"gate missed an injected regression:\n{fail_report}"
    assert "FAIL" in fail_report
    assert "orderings_per_s" in fail_report

    write_output(
        "bench_regress.txt",
        "PASS gate:\n" + pass_report + "\nFAIL gate (injected):\n"
        + fail_report,
    )
