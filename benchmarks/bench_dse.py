"""Multi-objective DSE benchmarks.

Three checks tie the new subsystem back to the paper:

* a degenerate single-objective **exhaustive** DSE reproduces case study
  2's ``best_single_strategy`` point for ResNet-18 on the DepFiN-like
  architecture — the frontier of a one-objective search *is* the classic
  argmin;
* the same degenerate run over several architectures reproduces case
  study 3's best-architecture choice;
* a **genetic** frontier search over ResNet-18 across the hardware zoo
  demonstrates the new capability (energy/latency trade-off curve) and
  must be bit-identical between serial and parallel execution — the
  determinism contract CI checks on every push.

Set ``REPRO_FULL=1`` for paper-sized grids; the defaults are a smoke
configuration sized for CI.
"""

from repro import DepthFirstEngine, get_accelerator, get_workload
from repro.analysis import frontier_csv, frontier_table
from repro.core.optimizer import best_point, best_single_strategy, sweep
from repro.core.strategy import OverlapMode
from repro.dse import DesignSpace, DSERunner, ExhaustiveSearch, GeneticSearch
from repro.explore import Executor, MappingCache
from repro.mapping import SearchConfig

from .conftest import FULL, JOBS, write_output

#: Candidate tiles: the paper grid, or a reduced smoke slice.
TILE_X = (1, 4, 16, 60, 240, 960) if FULL else (4, 16, 60)
TILE_Y = (1, 4, 18, 72, 270, 540) if FULL else (4, 18, 72)
MODES = (
    tuple(OverlapMode)
    if FULL
    else (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE)
)

#: The CS3-style architecture menu for the frontier demonstration.
ZOO = (
    (
        "meta_proto_like_df",
        "tpu_like_df",
        "edge_tpu_like_df",
        "ascend_like_df",
        "tesla_npu_like_df",
        "depfin_like",
    )
    if FULL
    else ("meta_proto_like_df", "edge_tpu_like_df", "depfin_like")
)


def _config() -> SearchConfig:
    return SearchConfig(lpf_limit=6, budget=150) if FULL else SearchConfig(
        lpf_limit=5, budget=60
    )


def test_dse_exhaustive_reproduces_cs2_best(benchmark):
    """Single-objective exhaustive DSE == ``best_single_strategy`` for
    ResNet-18 on DepFiN (the acceptance criterion)."""
    config = _config()
    cache = MappingCache()
    workload = get_workload("resnet18")
    tiles = tuple((tx, ty) for tx in TILE_X for ty in TILE_Y)

    def run():
        engine = DepthFirstEngine(
            get_accelerator("depfin_like"), config, cache=cache
        )
        expected = best_single_strategy(
            engine, workload, tiles, MODES, "energy", jobs=JOBS
        )

        space = DesignSpace(
            accelerators=("depfin_like",),
            tile_x=TILE_X,
            tile_y=TILE_Y,
            modes=MODES,
        )
        runner = DSERunner(
            space,
            "resnet18",
            objectives=("energy",),
            executor=Executor(jobs=JOBS, search_config=config, cache=cache),
            seed=0,
        )
        return expected, runner.run(ExhaustiveSearch())

    expected, result = benchmark.pedantic(run, rounds=1, iterations=1)

    best = result.frontier.best("energy")
    assert best.values[0] == expected.result.total.energy_pj
    assert best.point.strategy() == expected.strategy
    write_output(
        "dse_cs2_degenerate.txt",
        f"resnet18 on depfin_like, {result.evaluations} designs:\n"
        f"  classic best_single_strategy: {expected.strategy.describe()} "
        f"E={expected.result.energy_mj:.3f} mJ\n"
        f"  exhaustive 1-objective DSE:   {best.point.describe()} "
        f"E={best.values[0] / 1e9:.3f} mJ",
    )


def test_dse_exhaustive_reproduces_cs3_architecture_choice(benchmark):
    """Adding the hardware axis and keeping one objective reproduces the
    CS3-style best (architecture, DF point) choice."""
    config = _config()
    cache = MappingCache()
    workload = get_workload("fsrcnn")
    accelerators = ZOO[:2]
    tiles = tuple((tx, ty) for tx in TILE_X for ty in TILE_Y)

    def run():
        classic = []
        for name in accelerators:
            engine = DepthFirstEngine(
                get_accelerator(name), config, cache=cache
            )
            point = best_point(
                sweep(engine, workload, tiles, MODES, jobs=JOBS), "energy"
            )
            classic.append((name, point))
        expected_name, expected = min(
            classic, key=lambda np: np[1].result.total.energy_pj
        )

        space = DesignSpace(
            accelerators=accelerators,
            tile_x=TILE_X,
            tile_y=TILE_Y,
            modes=MODES,
        )
        runner = DSERunner(
            space,
            "fsrcnn",
            objectives=("energy",),
            executor=Executor(jobs=JOBS, search_config=config, cache=cache),
            seed=0,
        )
        return expected_name, expected, runner.run(ExhaustiveSearch())

    expected_name, expected, result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    best = result.frontier.best("energy")
    assert best.point.accelerator == expected_name
    assert best.values[0] == expected.result.total.energy_pj
    write_output(
        "dse_cs3_degenerate.txt",
        f"fsrcnn across {', '.join(accelerators)}:\n"
        f"  classic per-arch best: {expected_name} "
        f"{expected.strategy.describe()}\n"
        f"  joint-space DSE best:  {best.point.describe()}",
    )


def test_dse_genetic_frontier_across_zoo(benchmark):
    """The new capability: an energy/latency Pareto frontier for
    ResNet-18 across the hardware zoo, bit-identical serial vs parallel."""
    config = _config()
    cache = MappingCache()
    space = DesignSpace(
        accelerators=ZOO,
        tile_x=TILE_X,
        tile_y=TILE_Y,
        modes=MODES,
        fuse_depths=(None, 2) if FULL else (None,),
    )
    population, generations = (16, 6) if FULL else (6, 2)

    def run(jobs):
        runner = DSERunner(
            space,
            "resnet18",
            objectives=("energy", "latency"),
            executor=Executor(jobs=jobs, search_config=config, cache=cache),
            seed=0,
        )
        return runner.run(
            GeneticSearch(population=population, generations=generations)
        )

    serial = benchmark.pedantic(run, args=(1,), rounds=1, iterations=1)
    parallel = run(2)

    # The determinism contract: parallel evaluation never changes the
    # frontier, only the wall-clock.
    assert [(e.point, e.values) for e in serial.frontier.entries] == [
        (e.point, e.values) for e in parallel.frontier.entries
    ]
    assert serial.evaluations == parallel.evaluations
    assert len(serial.frontier) >= 1

    write_output("dse_frontier_resnet18.txt", frontier_table(serial.frontier))
    write_output("dse_frontier_resnet18.csv", frontier_csv(serial.frontier))


def test_dse_partition_genes_smoke(benchmark):
    """The PR-5 acceptance smoke: explicit stack-partition genes.

    Three checks:

    * a **degenerate** run whose partition axis is constrained to the
      weights-fit rule reproduces the fuse-depth-only frontier
      bit-identically;
    * the **full cut-subset space** yields bit-identical frontiers on
      the serial, process and service backends;
    * the searched partition frontier **covers** (dominates or ties)
      the fuse-depth-only frontier — whether the domination is strict
      (the fuse-only frontier cannot cover it back) is reported in the
      benchmark output.  Under the fully-recompute mode, splitting
      mccnn's tail off the fused stack buys latency the fuse-depth cap
      cannot reach, so the set-level domination is strict.
    """
    from repro.dse import PartitionAxis, workload_segments
    from repro.dse.metrics import additive_epsilon

    config = _config()
    cache = MappingCache()
    segments = len(workload_segments("mccnn"))
    grid = dict(
        accelerators=("meta_proto_like_df",),
        tile_x=TILE_X[:2],
        tile_y=TILE_Y[:2],
        modes=(OverlapMode.FULLY_RECOMPUTE,),
    )
    fuse_space = DesignSpace(**grid)
    partition_space = DesignSpace(
        **grid, partitions=PartitionAxis(segments=segments)
    )

    def run(space, jobs=1, backend=None):
        with Executor(
            jobs=jobs, search_config=config, cache=cache, backend=backend
        ) as executor:
            runner = DSERunner(
                space,
                "mccnn",
                objectives=("energy", "latency"),
                executor=executor,
                seed=0,
            )
            return runner.run(ExhaustiveSearch())

    fuse = benchmark.pedantic(
        lambda: run(fuse_space), rounds=1, iterations=1
    )

    # Degenerate equivalence: constrained to the weights-fit rule, the
    # partition-gened DSE *is* today's fuse-depth DSE.
    degenerate = run(
        DesignSpace(
            **grid,
            partitions=PartitionAxis(segments=segments, candidates=(None,)),
        )
    )
    assert [(e.point, e.values) for e in degenerate.frontier.entries] == [
        (e.point, e.values) for e in fuse.frontier.entries
    ]

    # Backend identity: serial == process == service, bit for bit.
    serial = run(partition_space)
    parallel = run(partition_space, jobs=2)
    service = run(partition_space, jobs=2, backend="service")
    for other in (parallel, service):
        assert [(e.point, e.values) for e in serial.frontier.entries] == [
            (e.point, e.values) for e in other.frontier.entries
        ]
        assert serial.evaluations == other.evaluations

    # Coverage: the partition space contains every auto point, so its
    # exhaustive frontier can never be worse than the fuse-depth one.
    # Strictness is set-level: the partition frontier covers the
    # fuse-only one (epsilon <= 0) *and* holds points the fuse-only
    # frontier cannot cover back (reverse epsilon > 0).
    partition_values = [e.values for e in serial.frontier.entries]
    fuse_values = [e.values for e in fuse.frontier.entries]
    epsilon = additive_epsilon(partition_values, fuse_values)
    reverse = additive_epsilon(fuse_values, partition_values)
    assert epsilon <= 0.0
    strict = reverse > 0.0
    write_output(
        "dse_partition_frontier.txt",
        f"mccnn partition-genes DSE ({segments} branch-free segments, "
        f"{partition_space.size} designs vs {fuse_space.size} fuse-only):\n"
        f"  searched partition frontier "
        f"{'STRICTLY DOMINATES' if strict else 'ties'} the fuse-depth-only "
        f"frontier (epsilon {epsilon:.6g}, reverse epsilon "
        f"{reverse:.6g})\n\n"
        + frontier_table(serial.frontier)
        + "\n\nfuse-depth-only frontier:\n"
        + frontier_table(fuse.frontier),
    )


def test_dse_constrained_scenario_smoke(benchmark):
    """The PR-3 acceptance smoke: a 3-workload scenario under an
    on-chip memory-budget constraint produces an all-feasible frontier
    whose per-generation hypervolume is bit-identical between serial
    and parallel execution."""
    from repro.dse import MemoryBudgetConstraint, Scenario
    from repro.dse import GeneticSearch as GS

    config = _config()
    cache = MappingCache()
    space = DesignSpace(
        accelerators=ZOO[:2],
        tile_x=TILE_X,
        tile_y=TILE_Y,
        modes=MODES,
    )
    scenario = Scenario.parse("resnet18,fsrcnn,mccnn")
    population, generations = (8, 4) if FULL else (4, 2)

    def run(jobs):
        runner = DSERunner(
            space,
            scenario,
            objectives=("energy", "latency"),
            executor=Executor(jobs=jobs, search_config=config, cache=cache),
            constraints=(MemoryBudgetConstraint(),),
            seed=0,
        )
        return runner.run(GS(population=population, generations=generations))

    serial = benchmark.pedantic(run, args=(1,), rounds=1, iterations=1)
    parallel = run(4)

    assert all(e.feasible for e in serial.frontier.entries) or not any(
        v == 0.0 for _, _, v in serial.evaluated.values()
    )
    assert [
        (e.point, e.values, e.violation) for e in serial.frontier.entries
    ] == [(e.point, e.values, e.violation) for e in parallel.frontier.entries]
    hv_serial = [g.hypervolume for g in serial.generations]
    hv_parallel = [g.hypervolume for g in parallel.generations]
    assert hv_serial == hv_parallel
    assert hv_serial == sorted(hv_serial)  # monotone convergence

    from repro.analysis import convergence_table

    write_output(
        "dse_scenario_frontier.txt",
        f"scenario {scenario.describe()} on {', '.join(space.accelerators)}, "
        f"{serial.evaluations} designs "
        f"({len(serial.infeasible)} infeasible):\n"
        + frontier_table(serial.frontier)
        + "\n\n"
        + convergence_table(serial.generations),
    )
