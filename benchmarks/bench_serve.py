"""Evaluation-service smoke: a sweep through the live shared-cache
service is bit-identical to serial, in-process and against a real
standalone ``repro serve`` server in another OS process.

This is the CI gate for the serve subsystem: if the service backend,
the cache wire protocol, or the standalone server drift from the serial
evaluator in any way, these assertions catch it.
"""

import subprocess
import sys
import time

from repro.core.strategy import OverlapMode
from repro.explore import Executor, MappingCache, SweepSpec
from repro.mapping import SearchConfig
from repro.serve import CacheClient

from .conftest import write_output

TILES = ((8, 8), (32, 36), (60, 72))
MODES = (OverlapMode.FULLY_CACHED, OverlapMode.FULLY_RECOMPUTE)
CONFIG = SearchConfig(lpf_limit=5, budget=100)


def fsrcnn_spec() -> SweepSpec:
    return SweepSpec.tile_grid("meta_proto_like_df", "fsrcnn", TILES, MODES)


def totals(results) -> list:
    return [(r.result.energy_pj, r.result.latency_cycles) for r in results]


def test_service_backend_identical_to_serial(benchmark):
    """In-process smoke: Executor(backend='service') == serial, with
    the embedded cache server filling the executor's cache live."""
    spec = fsrcnn_spec()
    serial = Executor(jobs=1, search_config=CONFIG).run(spec)

    def run():
        cache = MappingCache()
        with Executor(
            jobs=2, backend="service", search_config=CONFIG, cache=cache
        ) as executor:
            served = executor.run(spec)
            stats = executor.service.stats()
        return served, stats, len(cache)

    served, stats, harvested = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals(served) == totals(serial)
    assert harvested > 0  # live harvest: no explicit merge step ran
    write_output(
        "serve_smoke.txt",
        "service == serial on "
        f"{len(spec)} jobs; service stats: {stats}",
    )


def test_standalone_server_round_trip():
    """Spawn `repro serve` as a real subprocess, run the sweep against
    it with --cache-server semantics (a CacheClient-backed executor),
    and compare with serial."""
    spec = fsrcnn_spec()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--timeout", "600"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        # Startup contract: the first line announces the picked port.
        line = proc.stdout.readline()
        assert "cache server listening on " in line
        address = line.rsplit(" ", 1)[-1].strip()

        client = CacheClient(address)
        served = Executor(jobs=2, search_config=CONFIG, cache=client).run(spec)
        assert len(client) > 0  # the server's table filled

        # A second, cold executor against the same server: every
        # mapping is now a remote hit, and results stay identical.
        warm_client = CacheClient(address)
        t0 = time.perf_counter()
        warm = Executor(jobs=1, search_config=CONFIG, cache=warm_client).run(spec)
        warm_seconds = time.perf_counter() - t0
        assert warm_client.misses == 0

        client.shutdown_server()
        proc.wait(timeout=30)  # graceful exit after the remote shutdown
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)

    serial = Executor(jobs=1, search_config=CONFIG).run(spec)
    assert totals(served) == totals(serial)
    assert totals(warm) == totals(serial)
    assert proc.returncode == 0
    write_output(
        "serve_standalone.txt",
        f"standalone server: {len(spec)} jobs identical to serial; "
        f"warm re-run in {warm_seconds:.2f}s with 0 remote misses",
    )
