"""Fig. 18: the impact of each modeling factor Table II compares.

(a) on-chip data traffic: optimizing DRAM access only vs. the overall
    energy (paper: 5.64x worse on Meta-proto-like DF with FSRCNN);
(b) multi-level memory skipping vs. DRAM-only skipping (paper: 17-18%);
(c) modeling weight traffic: activation-only optimization vs. full
    (paper: 2.34x / 10.2x on ResNet18);
(d) optimizing target: latency- vs. energy-optimized schedules trade off
    (ResNet18).
"""

import pytest

from repro import (
    DepthFirstEngine,
    DFStrategy,
    MemLevelPolicy,
    OverlapMode,
    best_point,
    evaluate_single_layer,
    get_accelerator,
    get_workload,
    sweep,
)
from repro.analysis import energy_components, weight_vs_activation_energy
from repro.explore import MappingCache
from repro.mapping import SearchConfig

from .conftest import JOBS, write_output

CONFIG = SearchConfig(lpf_limit=6, budget=120)
TILES = ((2, 2), (4, 18), (4, 72), (16, 18), (60, 72), (120, 4))
MODES = (OverlapMode.FULLY_CACHED,)

#: One cache for every engine in this figure: the (a)/(c)/(d) sweeps and
#: the (b) policy comparison revisit the same layer-tile shapes.
CACHE = MappingCache()


@pytest.fixture(scope="module")
def fsrcnn_points():
    engine = DepthFirstEngine(
        get_accelerator("meta_proto_like_df"), CONFIG, cache=CACHE
    )
    wl = get_workload("fsrcnn")
    return engine, wl, sweep(engine, wl, TILES, MODES, jobs=JOBS)


def test_fig18a_onchip_traffic(benchmark, fsrcnn_points):
    """Optimizing only DRAM access leaves on-chip traffic on the table."""
    engine, wl, points = fsrcnn_points

    def run():
        sl = evaluate_single_layer(engine, wl)
        dram_opt = best_point(points, "dram_accesses")
        energy_opt = best_point(points, "energy")
        return sl, dram_opt, energy_opt

    sl, dram_opt, energy_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    accel = engine.accel

    lines = ["scenario, energy(mJ), {mac, on_chip, dram} (mJ)"]
    for label, result in (
        ("SL", sl),
        ("DF opt DRAM-only", dram_opt.result),
        ("DF opt energy (ours)", energy_opt.result),
    ):
        parts = energy_components(accel, result.total)
        parts_mj = {k: v / 1e9 for k, v in parts.items()}
        lines.append(f"{label:22s} {result.energy_mj:8.3f}  {parts_mj}")
    write_output("fig18a_onchip_traffic.txt", "\n".join(lines))

    # DRAM dominates SL (the hatched bars of Fig. 18a).
    sl_parts = energy_components(accel, sl.total)
    assert sl_parts["dram"] > sl_parts["on_chip"]
    # DRAM-only optimization minimizes DRAM but not total energy.
    assert dram_opt.result.dram_accesses() <= energy_opt.result.dram_accesses() * 1.01
    assert energy_opt.result.energy_pj <= dram_opt.result.energy_pj
    assert energy_opt.result.energy_pj < sl.energy_pj / 3


def test_fig18b_memory_skipping(benchmark):
    """Multi-level on-chip memory skipping vs. DRAM-only skipping."""
    wl = get_workload("fsrcnn")
    strategy = DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)

    def run():
        multi = DepthFirstEngine(
            get_accelerator("meta_proto_like_df"), CONFIG,
            policy=MemLevelPolicy(multi_level_skip=True), cache=CACHE,
        ).evaluate(wl, strategy)
        dram_only = DepthFirstEngine(
            get_accelerator("meta_proto_like_df"), CONFIG,
            policy=MemLevelPolicy(multi_level_skip=False), cache=CACHE,
        ).evaluate(wl, strategy)
        return multi, dram_only

    multi, dram_only = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = 1 - multi.energy_pj / dram_only.energy_pj
    write_output(
        "fig18b_memory_skipping.txt",
        f"multi-level skip: {multi.energy_mj:.3f} mJ\n"
        f"DRAM-only skip:   {dram_only.energy_mj:.3f} mJ\n"
        f"gain: {gain * 100:.1f}% (paper: 17-18%)",
    )
    assert multi.energy_pj < dram_only.energy_pj
    assert gain > 0.05


def test_fig18c_weight_traffic(benchmark):
    """Ignoring weights while optimizing activations backfires on
    weight-dominant ResNet18."""
    engine = DepthFirstEngine(
        get_accelerator("meta_proto_like_df"), CONFIG, cache=CACHE
    )
    wl = get_workload("resnet18")
    tiles = ((2, 2), (4, 7), (14, 28), (28, 28), (56, 56))

    def run():
        points = sweep(engine, wl, tiles, MODES, jobs=JOBS)
        act_opt = best_point(points, "activation_energy")
        full_opt = best_point(points, "energy")
        return act_opt, full_opt

    act_opt, full_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    penalty = act_opt.result.energy_pj / full_opt.result.energy_pj

    lines = []
    for label, point in (("activation-only", act_opt), ("full (ours)", full_opt)):
        split = weight_vs_activation_energy(point.result.total)
        lines.append(
            f"{label:16s} {point.strategy.describe():28s} "
            f"E={point.result.energy_mj:7.3f} mJ  "
            f"weight-caused={split['weight'] / 1e9:6.3f} mJ "
            f"activation-caused={split['activation'] / 1e9:6.3f} mJ"
        )
    lines.append(f"penalty of ignoring weights: {penalty:.2f}x (paper: 2.34x)")
    write_output("fig18c_weight_traffic.txt", "\n".join(lines))

    assert full_opt.result.energy_pj <= act_opt.result.energy_pj
    # Activation-optimized schedules pick smaller tiles.
    act_area = act_opt.strategy.tile_x * act_opt.strategy.tile_y
    full_area = full_opt.strategy.tile_x * full_opt.strategy.tile_y
    assert act_area <= full_area


def test_fig18d_optimizing_target(benchmark):
    """Latency- vs energy-optimized DF schedules trade off (ResNet18)."""
    engine = DepthFirstEngine(
        get_accelerator("meta_proto_like_df"), CONFIG, cache=CACHE
    )
    wl = get_workload("resnet18")
    tiles = ((2, 2), (4, 7), (14, 28), (28, 28), (56, 56))

    def run():
        points = sweep(engine, wl, tiles, MODES, jobs=JOBS)
        return best_point(points, "energy"), best_point(points, "latency")

    energy_opt, latency_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    write_output(
        "fig18d_optimizing_target.txt",
        f"energy-opt  {energy_opt.strategy.describe():28s} "
        f"E={energy_opt.result.energy_mj:.3f} mJ "
        f"L={energy_opt.result.latency_cycles / 1e6:.2f} Mcy\n"
        f"latency-opt {latency_opt.strategy.describe():28s} "
        f"E={latency_opt.result.energy_mj:.3f} mJ "
        f"L={latency_opt.result.latency_cycles / 1e6:.2f} Mcy",
    )
    assert energy_opt.result.energy_pj <= latency_opt.result.energy_pj
    assert latency_opt.result.latency_cycles <= energy_opt.result.latency_cycles
