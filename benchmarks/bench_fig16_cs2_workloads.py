"""Fig. 16 (case study 2): five inference strategies across the five
workloads on Meta-proto-like DF hardware.

Strategies: SL, LBL, fully-cached 4x72 (CS1's best), best single DF
strategy, best per-stack combination.

Shape checks:
* activation-dominant workloads (FSRCNN, DMCNN-VD, MCCNN): the fixed
  4x72 point is close to their individual best, with a large gain over
  SL (paper: ~10x for FSRCNN);
* weight-dominant workloads (MobileNetV1, ResNet18): the 4x72 point is
  clearly worse than the best combination, which mixes DF early stacks
  with LBL-like late stacks and still beats SL (paper: 5.7x on
  MobileNetV1).
"""


from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    best_combination,
    best_single_strategy,
    evaluate_layer_by_layer,
    evaluate_single_layer,
    get_accelerator,
    get_workload,
)
from repro.analysis import strategy_comparison
from repro.explore import MappingCache
from repro.mapping import SearchConfig

from .conftest import FULL, JOBS, write_output

WORKLOADS = (
    ("fsrcnn", True),
    ("dmcnn_vd", True),
    ("mccnn", True),
    ("mobilenet_v1", False),
    ("resnet18", False),
)

SWEEP_TILES = (
    ((1, 1), (4, 4), (4, 72), (16, 18), (60, 72), (240, 270))
    if FULL
    else ((4, 4), (4, 72), (16, 18), (60, 72))
)
SWEEP_MODES = (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE)


def test_fig16_strategies_across_workloads(benchmark):
    accel = get_accelerator("meta_proto_like_df")
    config = SearchConfig(lpf_limit=6, budget=150)
    # One cache handle shared by every per-workload engine: identical
    # layer-tile shapes recur across workloads and strategy searches.
    cache = MappingCache()

    def run():
        out = {}
        for name, _act in WORKLOADS:
            wl = get_workload(name)
            engine = DepthFirstEngine(accel, config, cache=cache)
            fixed = engine.evaluate(
                wl, DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED)
            )
            out[name] = {
                "sl": evaluate_single_layer(engine, wl),
                "lbl": evaluate_layer_by_layer(engine, wl),
                "df_4x72": fixed,
                "best_single": best_single_strategy(
                    engine, wl, tile_sizes=SWEEP_TILES, modes=SWEEP_MODES,
                    jobs=JOBS,
                ).result,
                "best_combo": best_combination(
                    engine, wl, tile_sizes=SWEEP_TILES, modes=SWEEP_MODES,
                    jobs=JOBS,
                ),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for name, _act in WORKLOADS:
        r = results[name]
        sections.append(f"=== {name} ===")
        sections.append(
            strategy_comparison(
                [r["sl"], r["lbl"], r["df_4x72"], r["best_single"], r["best_combo"]]
            )
        )
        sections.append("")
    write_output("fig16_cs2_workloads.txt", "\n".join(sections))

    for name, activation_dominant in WORKLOADS:
        r = results[name]
        # The combination is never worse than any single strategy.
        assert r["best_combo"].energy_pj <= r["best_single"].energy_pj * 1.001
        assert r["best_combo"].energy_pj <= r["lbl"].energy_pj * 1.001
        if activation_dominant:
            # The fixed CS1 point is near-optimal for similar workloads.
            assert r["df_4x72"].energy_pj <= r["best_single"].energy_pj * 1.35
            gain = r["sl"].energy_pj / r["best_combo"].energy_pj
            assert gain > 2.0, name

    # FSRCNN's SL-to-best gain approaches the paper's 10x.
    fs = results["fsrcnn"]
    assert fs["sl"].energy_pj / fs["best_combo"].energy_pj > 5.0

    # On the weight-dominant ResNet18 the fixed 4x72 point is clearly
    # worse than the best combination (the paper reports the same effect
    # as 2.0x on MobileNetV1); on MobileNetV1 our auto-partition already
    # absorbs most of the damage, so we only require no win there.
    rn = results["resnet18"]
    assert rn["df_4x72"].energy_pj > rn["best_combo"].energy_pj * 1.2
    mb = results["mobilenet_v1"]
    assert mb["df_4x72"].energy_pj >= mb["best_combo"].energy_pj * 0.999
    # ... and the combination still beats SL clearly (paper: 5.7x).
    assert mb["sl"].energy_pj / mb["best_combo"].energy_pj > 1.5
