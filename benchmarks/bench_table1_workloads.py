"""Table I(b): workload statistics (avg/max feature map, total weights).

Paper values (8-bit data):
  FSRCNN      15.6 KB weights, 10.9 / 28.5 MB feature maps
  DMCNN-VD   651.3 KB,         24.1 / 26.7 MB
  MCCNN      108.6 KB,         21.8 / 29.1 MB
  MobileNetV1  4 MB,           0.76 / 3.8 MB
  ResNet18    11 MB,           0.9 / 5.9 MB
"""

from repro.analysis import table1_workloads
from repro.workloads.stats import workload_stats
from repro.workloads.zoo import WORKLOAD_FACTORIES

from .conftest import write_output

PAPER_WEIGHTS_KB = {
    "fsrcnn": 15.6,
    "dmcnn_vd": 651.3,
    "mccnn": 108.6,
    "mobilenet_v1": 4096.0,
    "resnet18": 11264.0,
}


def test_table1_workload_stats(benchmark):
    def run():
        return {
            name: workload_stats(f())
            for name, f in WORKLOAD_FACTORIES.items()
            if name != "reference"
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table1_workloads(stats.values())
    lines = [text, "", "paper-vs-measured weights (KB):"]
    for name, paper_kb in PAPER_WEIGHTS_KB.items():
        ours = stats[name].total_weight_bytes / 1024
        lines.append(f"  {name:14s} paper={paper_kb:9.1f}  ours={ours:9.1f}")
    write_output("table1_workloads.txt", "\n".join(lines))

    # Weight totals pin the reconstructed network structures.
    assert stats["dmcnn_vd"].total_weight_bytes / 1024 == (
        __import__("pytest").approx(651.3, abs=1.0)
    )
    assert stats["mccnn"].total_weight_bytes / 1024 == (
        __import__("pytest").approx(108.6, abs=0.5)
    )
    for name in ("fsrcnn", "dmcnn_vd", "mccnn"):
        assert stats[name].is_activation_dominant
    for name in ("mobilenet_v1", "resnet18"):
        assert not stats[name].is_activation_dominant
