"""Fig. 14: memory-access breakdown (activation / weight / data copy /
total) per memory tier along the diagonal tile sizes.

Shape checks (Section V-B's explanations):
(a) activations: DRAM+GB access roughly mode-independent; LB access at
    small tiles ordered fully-recompute > H-cached > fully-cached;
(b) weights: DRAM access mode- and tile-independent (all weights fit the
    LB); the tiny (1,1) tile inflates weight LB reads through spatial
    under-utilization;
(c) data copies: fully-recompute dominates at small tiles (first-layer
    window re-fetching);
(d) totals grow toward both extremes of the diagonal.
"""

from repro import DFStrategy
from repro.analysis import access_breakdown
from repro.core.strategy import OverlapMode

from .conftest import write_output

DIAGONAL = ((1, 1), (4, 4), (16, 18), (60, 72), (240, 270), (960, 540))


def test_fig14_memory_access_breakdown(benchmark, fsrcnn, meta_df_engine):
    accel = meta_df_engine.accel

    def run():
        out = {}
        for mode in OverlapMode:
            for tile in DIAGONAL:
                r = meta_df_engine.evaluate(
                    fsrcnn, DFStrategy(tile_x=tile[0], tile_y=tile[1], mode=mode)
                )
                out[(mode, tile)] = access_breakdown(accel, r.total)
        return out

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for category in ("activation", "weight", "copy", None):
        label = category or "total"
        lines.append(f"== {label} accesses (millions of elements) ==")
        header = f"{'mode/tile':24s}" + "".join(
            f"{t!s:>14s}" for t in DIAGONAL
        )
        for tier in ("LB", "GB", "DRAM"):
            lines.append(f"-- {tier} --")
            lines.append(header)
            for mode in OverlapMode:
                cells = []
                for tile in DIAGONAL:
                    bd = breakdowns[(mode, tile)]
                    cells.append(f"{bd.by_tier(category)[tier] / 1e6:14.1f}")
                lines.append(f"{mode.value:24s}" + "".join(cells))
        lines.append("")
    write_output("fig14_memory_access.txt", "\n".join(lines))

    def acc(mode, tile, category, tier):
        return breakdowns[(mode, tile)].by_tier(category)[tier]

    # (a) LB activation access ordering at small tiles.
    for tile in ((1, 1), (4, 4)):
        rec = acc(OverlapMode.FULLY_RECOMPUTE, tile, "activation", "LB")
        hc = acc(OverlapMode.H_CACHED_V_RECOMPUTE, tile, "activation", "LB")
        fc = acc(OverlapMode.FULLY_CACHED, tile, "activation", "LB")
        assert rec >= hc >= fc * 0.999, tile

    # (a) activation DRAM access rises sharply only at the LBL corner.
    fc_dram = [
        acc(OverlapMode.FULLY_CACHED, t, "activation", "DRAM") for t in DIAGONAL
    ]
    assert fc_dram[-1] > 10 * fc_dram[2]

    # (b) weight DRAM accesses are tile-size independent (weights fit LB).
    w_dram = [
        acc(OverlapMode.FULLY_CACHED, t, "weight", "DRAM") for t in DIAGONAL
    ]
    assert max(w_dram) / min(w_dram) < 1.01

    # (b) spatial under-utilization inflates weight LB reads at (1,1).
    w_lb_tiny = acc(OverlapMode.FULLY_CACHED, (1, 1), "weight", "LB")
    w_lb_mid = acc(OverlapMode.FULLY_CACHED, (60, 72), "weight", "LB")
    assert w_lb_tiny > 4 * w_lb_mid

    # (c) fully-recompute's copy traffic dominates at small tiles.
    copy_rec = acc(OverlapMode.FULLY_RECOMPUTE, (1, 1), "copy", "DRAM")
    copy_fc = acc(OverlapMode.FULLY_CACHED, (1, 1), "copy", "DRAM")
    assert copy_rec > copy_fc
