"""Telemetry smoke benchmark: the observability acceptance gate.

One small DSE runs twice through the real CLI — once bare, once with
``--trace`` and ``--metrics`` — and the traced run must

* produce a parseable JSON-lines trace whose root spans cover >= 95% of
  the traced window,
* report non-zero LOMA-orderings and mapping-cache counters,
* write a **bit-identical frontier** to the telemetry-off run (the
  identity-neutral contract), and
* stay within 10% (+ a small absolute slack for CI jitter) of the bare
  run's wall-clock — the zero-ish-overhead contract.

Run directly (``python -m pytest benchmarks/bench_obs.py -q``) or let
CI's ``obs-smoke`` job do it on every push.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_obs.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main
from repro.obs import load_trace, parse_prometheus, trace_coverage, trace_spans

from .conftest import write_output

#: Overhead gate: traced <= bare * (1 + RELATIVE) + ABSOLUTE seconds.
#: The absolute slack damps scheduler jitter on a sub-10s CI run.
RELATIVE_OVERHEAD = 0.10
ABSOLUTE_SLACK = 0.25


def dse_args(out: Path, extra: "list[str]") -> "list[str]":
    return [
        "dse",
        "--workload", "fsrcnn",
        "--strategy", "genetic",
        "--population", "6",
        "--generations", "2",
        "--tilex", "4,16,60",
        "--tiley", "4,18",
        "--modes", "fully_cached,h_cached_v_recompute",
        "--budget", "100",
        "--lpf-limit", "5",
        "--seed", "7",
        "--output", str(out),
    ] + extra


def timed_run(args: "list[str]") -> float:
    t0 = time.perf_counter()
    assert main(args) == 0
    return time.perf_counter() - t0


def test_obs_smoke(tmp_path, capsys):
    bare_out = tmp_path / "bare.json"
    traced_out = tmp_path / "traced.json"
    trace = tmp_path / "run.jsonl"
    prom = tmp_path / "run.prom"

    # Both runs start cold: no --cache, fresh in-memory mapping cache.
    bare_seconds = timed_run(dse_args(bare_out, []))
    traced_seconds = timed_run(
        dse_args(traced_out, ["--trace", str(trace), "--metrics", str(prom)])
    )
    capsys.readouterr()  # keep the benchmark log quiet

    # 1. The trace parses and its spans account for the run.
    records = load_trace(trace)
    assert records[0]["type"] == "run"
    spans = trace_spans(records)
    names = {s["name"] for s in spans}
    assert {"repro.dse", "dse.run", "dse.generation", "executor.run"} <= names
    coverage = trace_coverage(records)
    assert coverage is not None and coverage >= 0.95, (
        f"root spans cover only {coverage:.1%} of the traced window"
    )

    # 2. The key counters moved.
    values = parse_prometheus(prom.read_text())
    assert values["loma_orderings_evaluated_total"] > 0
    cache_gets = sum(
        v
        for series, v in values.items()
        if series.startswith("mapping_cache_gets_total")
    )
    assert cache_gets > 0
    assert values['mapping_cache_gets_total{result="hit"}'] > 0

    # 3. Bit-identical frontier: telemetry never touches the math.
    bare = json.loads(bare_out.read_text())
    traced = json.loads(traced_out.read_text())
    assert traced["frontier"] == bare["frontier"]
    assert traced["generations"] == bare["generations"]

    # 4. Overhead stays inside the gate.
    ceiling = bare_seconds * (1.0 + RELATIVE_OVERHEAD) + ABSOLUTE_SLACK
    assert traced_seconds <= ceiling, (
        f"telemetry overhead too high: traced {traced_seconds:.2f}s vs "
        f"bare {bare_seconds:.2f}s (ceiling {ceiling:.2f}s)"
    )

    write_output(
        "bench_obs.txt",
        "\n".join(
            [
                f"bare_seconds    {bare_seconds:.3f}",
                f"traced_seconds  {traced_seconds:.3f}",
                f"overhead        {traced_seconds / bare_seconds - 1.0:+.1%}",
                f"spans           {len(spans)}",
                f"coverage        {coverage:.1%}",
                f"orderings       {int(values['loma_orderings_evaluated_total'])}",
                f"cache_gets      {int(cache_gets)}",
            ]
        ),
    )
