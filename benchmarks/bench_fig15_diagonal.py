"""Fig. 15: total energy and latency of the diagonal design points of
Fig. 14, per overlap mode.

Paper anchor points at (60,72): energy ~2.2-2.3 mJ and latency ~20-23
Mcycles; the small-tile ends are an order of magnitude worse for
fully-recompute.
"""

from repro import DFStrategy
from repro.core.strategy import OverlapMode

from .conftest import write_output

DIAGONAL = ((1, 1), (4, 4), (16, 18), (60, 72), (240, 270), (960, 540))


def test_fig15_diagonal_energy_latency(benchmark, fsrcnn, meta_df_engine):
    def run():
        out = {}
        for mode in OverlapMode:
            for tile in DIAGONAL:
                out[(mode, tile)] = meta_df_engine.evaluate(
                    fsrcnn, DFStrategy(tile_x=tile[0], tile_y=tile[1], mode=mode)
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'mode/tile':24s}" + "".join(f"{t!s:>16s}" for t in DIAGONAL)]
    for metric, fmt in (("energy (mJ)", "{:15.2f}"), ("latency (Mcy)", "{:15.1f}")):
        lines.append(f"-- {metric} --")
        for mode in OverlapMode:
            cells = []
            for tile in DIAGONAL:
                r = results[(mode, tile)]
                v = r.energy_mj if "energy" in metric else r.latency_cycles / 1e6
                cells.append(fmt.format(v) + " ")
            lines.append(f"{mode.value:24s}" + "".join(cells))
    write_output("fig15_diagonal.txt", "\n".join(lines))

    # Mid-diagonal beats both ends for every mode (U-shape).
    for mode in OverlapMode:
        e = [results[(mode, t)].energy_pj for t in DIAGONAL]
        assert min(e[1:4]) < e[0]
        assert min(e[1:4]) < e[-1]
    # Fully-recompute at (1,1) is the worst point on the diagonal.
    worst = max(results.values(), key=lambda r: r.energy_pj)
    assert worst is results[(OverlapMode.FULLY_RECOMPUTE, (1, 1))]
    # Energy at (60,72) is within the paper's order of magnitude.
    mid = results[(OverlapMode.FULLY_CACHED, (60, 72))]
    assert 0.5 < mid.energy_mj < 10.0
