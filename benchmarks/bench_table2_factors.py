"""Table II: the related-framework factor matrix, plus a quantitative
check that DeFiNES models every factor the table claims (the per-factor
impact experiments themselves are in bench_fig18_factors.py)."""

from repro.analysis import TABLE2_ROWS, table2_factors
from repro.mapping.cost import resolve_objective

from .conftest import write_output


def test_table2_framework_matrix(benchmark):
    text = benchmark.pedantic(table2_factors, rounds=1, iterations=1)
    write_output("table2_factors.txt", text)

    ours = dict((row[0], row) for row in TABLE2_ROWS)["DeFiNES (ours)"]
    name, modes, on_chip, mem_skip, weights, target = ours
    assert all(modes), "all three overlap modes supported"
    assert on_chip and mem_skip and weights

    # The optimizing targets Table II lists for DeFiNES must resolve.
    for objective in ("energy", "latency", "edp", "dram_accesses"):
        assert callable(resolve_objective(objective))
