"""Fig. 17 (case study 3): LBL vs best-DF energy per architecture,
geometric mean over the workloads.

Shape checks:
* DF beats LBL on every architecture except the TPU-like baseline
  (paper: up to 4.1x on unadjusted architectures);
* adding an on-chip weight buffer (TPU-like DF) flips that decisively
  (paper: 6x);
* the DF-friendly variants are at least as good as their baselines under
  DF scheduling.

Default runs FSRCNN + MobileNetV1 (one activation-, one weight-dominant
workload); REPRO_FULL=1 runs all five Table I(b) workloads.
"""

import math

from repro import DFStrategy, OverlapMode
from repro.explore import Executor, SweepSpec
from repro.hardware.zoo import ACCELERATOR_FACTORIES
from repro.mapping import SearchConfig

from .conftest import FULL, JOBS, write_output

WORKLOADS = (
    ("fsrcnn", "dmcnn_vd", "mccnn", "mobilenet_v1", "resnet18")
    if FULL
    else ("fsrcnn", "mobilenet_v1")
)
SWEEP_TILES = ((4, 18), (4, 72), (16, 18), (60, 72))


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fig17_architectures(benchmark):
    config = SearchConfig(lpf_limit=6, budget=120)

    # The whole case study as one declarative batch: every architecture
    # evaluates the LBL baseline plus a fully-cached DF grid on every
    # workload.  Zoo-name references keep the jobs cheap to ship to
    # worker processes when REPRO_JOBS > 1.
    df_grid = tuple(
        DFStrategy(tile_x=tx, tile_y=ty, mode=OverlapMode.FULLY_CACHED)
        for tx, ty in SWEEP_TILES
    )
    spec = SweepSpec.multi_architecture(
        tuple(ACCELERATOR_FACTORIES),
        WORKLOADS,
        (DFStrategy.layer_by_layer(),) + df_grid,
    )
    executor = Executor(jobs=JOBS, search_config=config)

    def run():
        out = {}
        by_cell: dict[tuple[str, str], dict[str, float]] = {}
        for r in executor.run(spec):
            cell = by_cell.setdefault(
                (r.job.accelerator_name, r.job.workload_name), {}
            )
            energy = r.result.energy_pj
            if r.job.strategy.one_layer_per_stack:
                cell["lbl"] = energy
            else:
                cell["df"] = min(cell.get("df", energy), energy)
        for arch_name in ACCELERATOR_FACTORIES:
            lbl_e = [by_cell[(arch_name, wl)]["lbl"] for wl in WORKLOADS]
            df_e = [by_cell[(arch_name, wl)]["df"] for wl in WORKLOADS]
            out[arch_name] = (geomean(lbl_e), geomean(df_e))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'architecture':22s} {'LBL (mJ)':>10s} {'best DF (mJ)':>13s} {'gain':>7s}"]
    for name, (lbl, df) in results.items():
        lines.append(f"{name:22s} {lbl / 1e9:10.3f} {df / 1e9:13.3f} {lbl / df:6.2f}x")
    write_output("fig17_cs3_architectures.txt", "\n".join(lines))

    for name, (lbl, df) in results.items():
        if name == "tpu_like":
            # The one architecture that cannot profit from DF.
            assert df > lbl * 0.9, name
        else:
            assert df < lbl, name

    # Weight-buffer fix: TPU-like DF crushes its baseline's best DF.
    assert results["tpu_like"][1] / results["tpu_like_df"][1] > 3.0

    # DF-friendly variants at least as good as baselines under DF.
    for base in ("meta_proto_like", "tpu_like", "edge_tpu_like",
                 "ascend_like", "tesla_npu_like"):
        assert results[base + "_df"][1] <= results[base][1] * 1.05, base

    # Biggest LBL-on-default vs DF-on-DF-variant gap is large (paper:
    # 4.9x for Edge-TPU-like).
    gaps = {
        base: results[base][0] / results[base + "_df"][1]
        for base in ("meta_proto_like", "tpu_like", "edge_tpu_like",
                     "ascend_like", "tesla_npu_like")
    }
    assert max(gaps.values()) > 3.0
