"""Fig. 6: tile-type counts for different tile sizes and overlap modes.

The paper's example: FSRCNN's 960x540 output with 60x72 tiles gives
960 = 60*16 exact columns and 540 = 72*7 + 36 rows, a 128-tile grid, and
single-digit tile-type counts (9 / 6 / 3 depending on the mode, with the
3-type fully-recompute split being 1 + 15 + 112 tiles).
"""


from repro.core.backcalc import backcalculate
from repro.core.stacks import partition_stacks
from repro.core.strategy import OverlapMode

from .conftest import write_output


def test_fig06_tile_type_counts(benchmark, fsrcnn, meta_df_engine):
    accel = meta_df_engine.accel
    stack = partition_stacks(fsrcnn, accel)[0]

    def run():
        out = {}
        for mode in OverlapMode:
            for tile in ((60, 72), (240, 270), (960, 540)):
                out[(mode, tile)] = backcalculate(stack, mode, *tile)
        return out

    tilings = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["mode, tile size -> grid, tile count, tile types (x count)"]
    for (mode, tile), tiling in tilings.items():
        types = ", ".join(
            f"t{t.index}x{t.count}" for t in tiling.tile_types
        )
        lines.append(
            f"{mode.value:22s} {tile!s:12s} "
            f"{tiling.grid_cols}x{tiling.grid_rows} grid, "
            f"{tiling.tile_count:4d} tiles, "
            f"{len(tiling.tile_types)} types [{types}]"
        )
    write_output("fig06_tile_types.txt", "\n".join(lines))

    t6072 = tilings[(OverlapMode.FULLY_RECOMPUTE, (60, 72))]
    assert (t6072.grid_cols, t6072.grid_rows) == (16, 8)
    assert t6072.tile_count == 128
    for (mode, tile), tiling in tilings.items():
        assert len(tiling.tile_types) <= 9  # paper: single digits
        assert sum(t.count for t in tiling.tile_types) == tiling.tile_count
    # The LBL corner has exactly one tile (type).
    assert tilings[(OverlapMode.FULLY_CACHED, (960, 540))].tile_count == 1
    # Fully-recompute has the fewest tile types; fully-cached the most
    # (first rows/columns differ once caching enters the picture).
    n_rec = len(tilings[(OverlapMode.FULLY_RECOMPUTE, (60, 72))].tile_types)
    n_cac = len(tilings[(OverlapMode.FULLY_CACHED, (60, 72))].tile_types)
    assert n_rec <= n_cac
