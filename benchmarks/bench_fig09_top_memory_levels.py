"""Fig. 9: the determined top memory level per (operand, layer, tile
type) for FSRCNN at 60x72 in fully-recompute mode on Meta-proto-like DF.

Paper observations to reproduce:
1. weights: the first tile takes weights from DRAM, all other tiles from
   the weight LB;
2. activations: every tile's first layer reads the stack input from the
   network-input location (DRAM) and the last layer writes to DRAM; in
   between, LB or GB serve as the top levels.
"""

from repro import DFStrategy, OverlapMode
from repro.analysis import top_level_map

from .conftest import write_output


def test_fig09_top_memory_levels(benchmark, fsrcnn, meta_df_engine):
    strategy = DFStrategy(
        tile_x=60, tile_y=72, mode=OverlapMode.FULLY_RECOMPUTE
    )
    result = benchmark.pedantic(
        lambda: meta_df_engine.evaluate(fsrcnn, strategy), rounds=1, iterations=1
    )
    stack_result = result.stacks[0]
    accel = meta_df_engine.accel
    write_output("fig09_top_levels.txt", top_level_map(accel, stack_result))

    w_hier = accel.hierarchy("W")
    o_hier = accel.hierarchy("O")
    for tr in stack_result.tile_results:
        tops = tr.plan.layer_tops
        # Observation 1: weights from DRAM on the first tile only.
        for lt in tops:
            w_level = w_hier[lt.tops["W"]]
            if tr.tile.is_first_tile:
                assert w_level.instance.is_dram
            else:
                assert w_level.name == "LB_W"
        # Observation 2: the last layer's output goes to DRAM (the
        # 27.7 MB output map cannot stay on chip).
        assert o_hier[tops[-1].tops["O"]].instance.is_dram
        # Intermediate layers' activations stay on-chip at this tile size.
        for lt in tops[1:-1]:
            i_level = accel.hierarchy("I")[lt.tops["I"]]
            assert not i_level.instance.is_dram
