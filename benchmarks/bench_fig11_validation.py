"""Fig. 11: validation against the DepFiN chip.

The paper compares DeFiNES' predictions with silicon measurements:
latency predictions land at 90% / 97% / 98% of measured for FSRCNN,
MC-CNN and the reference network, and *relative* energy (normalized to
the reference network) within 6%.

We cannot re-measure a taped-out chip; following DESIGN.md §4 we
reproduce the prediction side on the DepFiN-like architecture model and
record our predictions next to the paper's prediction-vs-measurement
ratios.  Asserted here: the orderings the chip exhibits (MC-CNN is the
heaviest network, FSRCNN the lightest) and that per-network relative
energy tracks relative MAC count within a factor of two — the level at
which the paper argues relative accuracy matters for scheduling.
"""

import pytest

from repro import DepthFirstEngine, OverlapMode, best_single_strategy, get_accelerator, get_workload
from repro.mapping import SearchConfig

from .conftest import write_output

#: (network, paper predicted/measured latency ratio, energy ratio).
PAPER_RATIOS = (
    ("fsrcnn", 0.90, 1.06),
    ("mccnn", 0.97, 1.03),
    ("reference", 0.98, 1.00),
)

TILES = ((4, 72), (16, 18), (60, 72))


def test_fig11_depfin_validation(benchmark):
    engine = DepthFirstEngine(
        get_accelerator("depfin_like"), SearchConfig(lpf_limit=6, budget=150)
    )

    def run():
        out = {}
        for name, _lr, _er in PAPER_RATIOS:
            wl = get_workload(name)
            out[name] = best_single_strategy(
                engine, wl, tile_sizes=TILES, modes=(OverlapMode.FULLY_CACHED,)
            ).result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    ref_e = results["reference"].energy_pj
    lines = [
        f"{'network':10s} {'pred E (mJ)':>12s} {'E rel ref':>10s} "
        f"{'pred L (Mcy)':>13s} {'paper L ratio':>14s} {'paper E ratio':>14s}"
    ]
    for name, l_ratio, e_ratio in PAPER_RATIOS:
        r = results[name]
        lines.append(
            f"{name:10s} {r.energy_mj:12.3f} {r.energy_pj / ref_e:10.3f} "
            f"{r.latency_cycles / 1e6:13.2f} {l_ratio:14.2f} {e_ratio:14.2f}"
        )
    write_output("fig11_validation.txt", "\n".join(lines))

    # Workload-ordering sanity: MC-CNN (51.8 GMAC) > reference (77.7 GMAC)
    # ... both dwarf FSRCNN (6.5 GMAC) in energy and latency.
    assert results["fsrcnn"].energy_pj < results["mccnn"].energy_pj
    assert results["fsrcnn"].latency_cycles < results["mccnn"].latency_cycles
    # Relative energy tracks relative MACs within 2x (relative-accuracy
    # argument of Section IV).
    for name, _lr, _er in PAPER_RATIOS:
        r = results[name]
        rel_e = r.energy_pj / ref_e
        rel_mac = r.mac_count / results["reference"].mac_count
        assert rel_e / rel_mac == pytest.approx(1.0, abs=1.0)
