#!/usr/bin/env python3
"""Quickstart: evaluate one depth-first schedule analytically.

Maps FSRCNN onto the Meta-prototype-like DF accelerator (the paper's
case-study pairing) with a fully-cached 60x72 tile strategy, and prints
the predicted energy, latency and memory-access breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    get_accelerator,
    get_workload,
)
from repro.analysis import access_breakdown
from repro.mapping import SearchConfig


def main() -> None:
    accel = get_accelerator("meta_proto_like_df")
    workload = get_workload("fsrcnn")
    print(f"Accelerator: {accel.describe()}")
    print(f"Workload:    {workload.name}, {len(workload)} layers, "
          f"{workload.total_mac_count / 1e9:.2f} GMACs\n")

    engine = DepthFirstEngine(accel, SearchConfig(lpf_limit=6, budget=200))
    strategy = DFStrategy(tile_x=60, tile_y=72, mode=OverlapMode.FULLY_CACHED)
    result = engine.evaluate(workload, strategy)

    print(result.describe())
    stack = result.stacks[0]
    print(f"Tile grid: {stack.tiling.grid_cols}x{stack.tiling.grid_rows} "
          f"tiles, {stack.tile_type_count} tile types\n")

    print("Memory accesses by tier (elements):")
    breakdown = access_breakdown(accel, result.total)
    for tier, count in breakdown.by_tier().items():
        print(f"  {tier:5s} {count / 1e6:12.1f} M")
    print("\nBy data category:")
    for cat, count in breakdown.by_category().items():
        print(f"  {cat:10s} {count / 1e6:12.1f} M")


if __name__ == "__main__":
    main()
