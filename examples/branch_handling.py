#!/usr/bin/env python3
"""Fig. 8: depth-first scheduling across branches.

Builds a residual block (the paper's branching example shape), shows how
the back-calculation combines the two branches' requirements by taking
the outermost edges, and compares fusing the block as one stack against
running it layer-by-layer.

Run:  python examples/branch_handling.py
"""

from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    WorkloadBuilder,
    evaluate_layer_by_layer,
    get_accelerator,
    partition_stacks,
)
from repro.core.backcalc import backcalculate
from repro.mapping import SearchConfig


def build_residual_net():
    b = WorkloadBuilder("residual", channels=16, x=128, y=96)
    t = b.input()
    t = b.conv("entry", t, k=16, f=3, pad=1)
    skip = t
    t = b.conv("main1", t, k=16, f=3, pad=1)
    t = b.conv("main2", t, k=16, f=3, pad=1)
    t = b.add("join", t, skip)
    b.conv("exit", t, k=16, f=3, pad=1)
    return b.build()


def main() -> None:
    accel = get_accelerator("meta_proto_like_df")
    workload = build_residual_net()
    engine = DepthFirstEngine(accel, SearchConfig(lpf_limit=5, budget=100))

    stacks = partition_stacks(workload, accel)
    print(f"Auto-partition: {[s.layer_names for s in stacks]}")
    print("(the residual region is atomic: fused whole or not at all)\n")

    tiling = backcalculate(stacks[0], OverlapMode.FULLY_CACHED, 32, 24)
    regime = max(tiling.tile_types, key=lambda t: t.count)
    print(f"Regime tile (of {tiling.tile_count} tiles) per-layer geometry:")
    print(f"  {'layer':8s} {'required':>10s} {'fresh':>10s} {'input':>10s}")
    for g in regime.geometry:
        print(
            f"  {g.layer.name:8s} "
            f"{g.x.required.width:4d}x{g.y.required.width:<4d} "
            f"{g.compute_w:4d}x{g.compute_h:<4d} "
            f"{g.x.in_need.width:4d}x{g.y.in_need.width:<4d}"
        )
    print("\nThe 'entry' layer's requirement is the hull of the main branch")
    print("(two 3x3 halos) and the skip branch (no halo) — Fig. 8's rule.\n")

    fused = engine.evaluate(
        workload, DFStrategy(tile_x=32, tile_y=24, mode=OverlapMode.FULLY_CACHED)
    )
    lbl = evaluate_layer_by_layer(engine, workload)
    print(f"Fused DF 32x24: {fused.energy_mj:.3f} mJ")
    print(f"LBL:            {lbl.energy_mj:.3f} mJ")
    print(f"DF gain:        {lbl.energy_pj / fused.energy_pj:.2f}x")


if __name__ == "__main__":
    main()
