#!/usr/bin/env python3
"""Case study 1 (mini): sweep tile sizes and overlap modes for FSRCNN on
the Meta-prototype-like DF accelerator and print Fig. 12-style heatmaps.

The full paper grid is 3 modes x 6x6 tile sizes; this example sweeps the
diagonal plus a few off-diagonal points so it finishes in about a minute.
Use benchmarks/bench_fig12_heatmaps.py (REPRO_FULL=1) for the full grid.

Run:  python examples/explore_scheduling_space.py
"""

from repro import DepthFirstEngine, get_accelerator, get_workload
from repro.analysis import energy_mj, latency_mcycles, render_heatmap, sweep_grid
from repro.core.optimizer import ALL_MODES, best_point, sweep
from repro.mapping import SearchConfig

TILES_X = (4, 60, 960)
TILES_Y = (4, 72, 540)


def main() -> None:
    accel = get_accelerator("meta_proto_like_df")
    workload = get_workload("fsrcnn")
    engine = DepthFirstEngine(accel, SearchConfig(lpf_limit=6, budget=150))

    tile_sizes = [(tx, ty) for tx in TILES_X for ty in TILES_Y]
    points = sweep(engine, workload, tile_sizes, ALL_MODES)

    for mode in ALL_MODES:
        grid_e = sweep_grid(points, mode, TILES_X, TILES_Y, energy_mj)
        grid_l = sweep_grid(points, mode, TILES_X, TILES_Y, latency_mcycles)
        print(render_heatmap(grid_e, TILES_X, TILES_Y, f"{mode.value}: energy (mJ)", "{:8.2f}"))
        print()
        print(render_heatmap(grid_l, TILES_X, TILES_Y, f"{mode.value}: latency (Mcycles)", "{:8.1f}"))
        print()

    for objective in ("energy", "latency", "edp"):
        best = best_point(points, objective)
        print(f"best for {objective:8s}: {best.strategy.describe():32s} "
              f"E={best.result.energy_mj:.3f} mJ "
              f"L={best.result.latency_cycles / 1e6:.1f} Mcycles")


if __name__ == "__main__":
    main()
