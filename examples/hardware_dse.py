#!/usr/bin/env python3
"""Case study 3 (mini): joint accelerator/schedule design-space
exploration (Fig. 17).

For each Table I architecture (baseline and DF-friendly variant), compare
layer-by-layer scheduling against the best depth-first strategy found in
a small sweep, on FSRCNN.  The headline finding reproduces: the TPU-like
baseline — the one without an on-chip weight buffer — is the only
architecture that cannot profit from depth-first scheduling, and its
DF-friendly variant fixes that.

Run:  python examples/hardware_dse.py
"""

from repro import (
    DepthFirstEngine,
    OverlapMode,
    best_single_strategy,
    evaluate_layer_by_layer,
    get_accelerator,
    get_workload,
)
from repro.hardware.zoo import ACCELERATOR_FACTORIES
from repro.mapping import SearchConfig

SWEEP_TILES = ((4, 18), (4, 72), (16, 18), (60, 72))


def main() -> None:
    workload = get_workload("fsrcnn")
    print(f"{'Architecture':22s} {'LBL (mJ)':>10s} {'best DF (mJ)':>13s} "
          f"{'DF gain':>8s}  best DF strategy")
    for name in ACCELERATOR_FACTORIES:
        engine = DepthFirstEngine(
            get_accelerator(name), SearchConfig(lpf_limit=6, budget=120)
        )
        lbl = evaluate_layer_by_layer(engine, workload)
        best = best_single_strategy(
            engine, workload, tile_sizes=SWEEP_TILES,
            modes=(OverlapMode.FULLY_CACHED,),
        )
        gain = lbl.energy_pj / best.result.energy_pj
        print(f"{name:22s} {lbl.energy_mj:10.3f} {best.result.energy_mj:13.3f} "
              f"{gain:7.2f}x  {best.strategy.describe()}")


if __name__ == "__main__":
    main()
