#!/usr/bin/env python3
"""Case study 2 (mini): how the best inference strategy changes across
workloads on the same hardware (Fig. 16).

Compares five strategies on an activation-dominant workload (FSRCNN) and
a weight-dominant one (MobileNetV1):

* single-layer (SL): feature maps through DRAM;
* layer-by-layer (LBL): feature maps in the lowest level they fit;
* the fixed fully-cached 4x72 depth-first point (CS1's best);
* the best single DF strategy (small sweep);
* the best per-stack combination.

Run:  python examples/multi_workload_strategies.py
"""

from repro import (
    DepthFirstEngine,
    DFStrategy,
    OverlapMode,
    best_combination,
    best_single_strategy,
    evaluate_layer_by_layer,
    evaluate_single_layer,
    get_accelerator,
    get_workload,
)
from repro.analysis import strategy_comparison
from repro.mapping import SearchConfig

SWEEP_TILES = ((4, 4), (4, 72), (16, 18), (60, 72))
MODES = (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE)


def main() -> None:
    accel = get_accelerator("meta_proto_like_df")
    for name in ("fsrcnn", "mobilenet_v1"):
        workload = get_workload(name)
        engine = DepthFirstEngine(accel, SearchConfig(lpf_limit=6, budget=120))
        results = [
            evaluate_single_layer(engine, workload),
            evaluate_layer_by_layer(engine, workload),
            engine.evaluate(
                workload,
                DFStrategy(tile_x=4, tile_y=72, mode=OverlapMode.FULLY_CACHED),
            ),
            best_single_strategy(
                engine, workload, tile_sizes=SWEEP_TILES, modes=MODES
            ).result,
            best_combination(engine, workload, tile_sizes=SWEEP_TILES, modes=MODES),
        ]
        print(f"=== {name} on {accel.name} ===")
        print(strategy_comparison(results))
        print()


if __name__ == "__main__":
    main()
