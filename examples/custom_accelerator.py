#!/usr/bin/env python3
"""Define your own accelerator and workload and explore DF schedules.

This is the 'Experiment Customization' flow of the paper's artifact
appendix: users plug in their own HW architecture and workload files.
Here we build a small edge accelerator (256 MACs, 16KB LB, 256KB GB) and
a custom 6-layer denoising network, then find its best DF strategy.

Run:  python examples/custom_accelerator.py
"""

from repro import (
    DepthFirstEngine,
    MemoryInstance,
    OverlapMode,
    WorkloadBuilder,
    best_single_strategy,
    build_accelerator,
    evaluate_layer_by_layer,
    level,
)
from repro.mapping import SearchConfig


def build_edge_accelerator():
    """A 256-MAC edge accelerator with a shared I&O local buffer."""
    w_reg = MemoryInstance.register("W_reg", 1)
    o_reg = MemoryInstance.register("O_reg", 2)
    lb_w = MemoryInstance.sram("LB_W", 8 * 1024)
    lb_io = MemoryInstance.sram("LB_IO", 16 * 1024)
    gb = MemoryInstance.sram("GB_WIO", 256 * 1024)
    dram = MemoryInstance.dram()
    return build_accelerator(
        "edge256",
        {"K": 16, "OX": 4, "OY": 4},
        [
            level(w_reg, "W"),
            level(o_reg, "O"),
            level(lb_w, "W"),
            level(lb_io, "IO"),
            level(gb, "WIO"),
            level(dram, "WIO"),
        ],
    )


def build_denoiser():
    """A 6-layer 640x480 denoising CNN (activation-dominant)."""
    b = WorkloadBuilder("denoiser", channels=1, x=640, y=480)
    t = b.input()
    t = b.conv("head", t, k=24, f=3, pad=1)
    for i in range(4):
        t = b.conv(f"body{i + 1}", t, k=24, f=3, pad=1)
    b.conv("tail", t, k=1, f=3, pad=1)
    return b.build()


def main() -> None:
    accel = build_edge_accelerator()
    workload = build_denoiser()
    print(f"Accelerator: {accel.describe()}")
    print(f"Workload:    {workload.name}, "
          f"{workload.total_mac_count / 1e9:.2f} GMACs, "
          f"{workload.total_weight_bytes / 1024:.1f} KB weights\n")

    engine = DepthFirstEngine(accel, SearchConfig(lpf_limit=6, budget=120))
    lbl = evaluate_layer_by_layer(engine, workload)
    print(f"LBL baseline: {lbl.energy_mj:.3f} mJ, "
          f"{lbl.latency_cycles / 1e6:.1f} Mcycles")

    tiles = ((4, 8), (8, 16), (16, 32), (40, 48), (80, 96))
    best = best_single_strategy(
        engine, workload, tile_sizes=tiles,
        modes=(OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE),
    )
    gain = lbl.energy_pj / best.result.energy_pj
    print(f"Best DF:      {best.result.energy_mj:.3f} mJ "
          f"({best.strategy.describe()}), {gain:.2f}x over LBL")


if __name__ == "__main__":
    main()
