"""Unit tests for the workload builder."""

import pytest

from repro.workloads.builder import WorkloadBuilder, conv_out_size
from repro.workloads.layer import OpType


class TestConvOutSize:
    def test_same_padding(self):
        assert conv_out_size(32, 3, 1, 1) == 32

    def test_stride_two(self):
        assert conv_out_size(32, 3, 2, 1) == 16

    def test_no_padding(self):
        assert conv_out_size(32, 3, 1, 0) == 30

    def test_collapse_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 7, 1, 0)


class TestBuilder:
    def test_conv_shapes(self):
        b = WorkloadBuilder("t", channels=3, x=32, y=24)
        t = b.conv("c1", b.input(), k=8, f=3)
        assert (t.channels, t.x, t.y) == (8, 32, 24)
        wl = b.build()
        layer = wl.layer("c1")
        assert layer.c == 3 and layer.k == 8

    def test_depthwise_keeps_channels(self):
        b = WorkloadBuilder("t", channels=8, x=16, y=16)
        t = b.depthwise("dw", b.input(), f=3, stride=2)
        assert t.channels == 8
        assert t.x == 8
        assert b.build().layer("dw").op_type is OpType.DEPTHWISE

    def test_pool_defaults_stride_to_kernel(self):
        b = WorkloadBuilder("t", channels=4, x=16, y=16)
        t = b.pool("p", b.input(), f=2)
        assert (t.x, t.y) == (8, 8)

    def test_add_requires_matching_shapes(self):
        b = WorkloadBuilder("t", channels=4, x=16, y=16)
        a = b.conv("a", b.input(), k=4, f=3)
        c = b.conv("c", b.input(), k=8, f=3)
        with pytest.raises(ValueError):
            b.add("bad", a, c)

    def test_add_joins_branches(self):
        b = WorkloadBuilder("t", channels=4, x=16, y=16)
        t = b.conv("entry", b.input(), k=4, f=3)
        s = t
        t = b.conv("main", t, k=4, f=3)
        j = b.add("join", t, s)
        wl = b.build()
        assert {p.name for p in wl.predecessors("join")} == {"entry", "main"}
        assert j.channels == 4

    def test_fc_flattens(self):
        b = WorkloadBuilder("t", channels=8, x=4, y=4)
        b.fc("fc", b.input(), k=10)
        layer = b.build().layer("fc")
        assert layer.c == 8 * 4 * 4
        assert (layer.ox, layer.oy) == (1, 1)

    def test_empty_build_raises(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("t", channels=1, x=8, y=8).build()
