"""The workload zoo must match Table I(b)'s statistics.

Paper values: FSRCNN 15.6KB / 10.9MB avg / 28.5MB max; DMCNN-VD 651.3KB /
24.1 / 26.7; MCCNN 108.6KB / 21.8 / 29.1; MobileNetV1 4MB; ResNet18 11MB.
We assert the weight totals tightly (they pin the network structure) and
the feature-map statistics loosely (they pin the resolution choice).
"""

import pytest

from repro.workloads.stats import workload_stats
from repro.workloads.zoo import WORKLOAD_FACTORIES, get_workload

MB = 2**20
KB = 1024


@pytest.fixture(scope="module")
def stats():
    return {name: workload_stats(f()) for name, f in WORKLOAD_FACTORIES.items()}


class TestTable1b:
    def test_dmcnn_weights_match_exactly(self, stats):
        assert stats["dmcnn_vd"].total_weight_bytes / KB == pytest.approx(651.3, abs=1.0)

    def test_mccnn_weights_match_exactly(self, stats):
        assert stats["mccnn"].total_weight_bytes / KB == pytest.approx(108.6, abs=0.5)

    def test_fsrcnn_weights_small(self, stats):
        # Paper: 15.6 KB; our 8-bit d=56/s=12/m=4 build gives ~12 KB.
        assert 8 * KB < stats["fsrcnn"].total_weight_bytes < 20 * KB

    def test_mobilenet_weights(self, stats):
        assert stats["mobilenet_v1"].total_weight_bytes / MB == pytest.approx(4.0, rel=0.1)

    def test_resnet18_weights(self, stats):
        assert stats["resnet18"].total_weight_bytes / MB == pytest.approx(11.0, rel=0.1)

    @pytest.mark.parametrize(
        "name,max_fm_mb",
        [("fsrcnn", 28.5), ("dmcnn_vd", 26.7), ("mccnn", 29.1)],
    )
    def test_activation_dominant_max_fm(self, stats, name, max_fm_mb):
        assert stats[name].max_feature_map_bytes / MB == pytest.approx(
            max_fm_mb, rel=0.1
        )

    @pytest.mark.parametrize("name", ["fsrcnn", "dmcnn_vd", "mccnn"])
    def test_activation_dominant_flag(self, stats, name):
        assert stats[name].is_activation_dominant

    @pytest.mark.parametrize("name", ["mobilenet_v1", "resnet18"])
    def test_weight_dominant_flag(self, stats, name):
        assert not stats[name].is_activation_dominant


class TestStructure:
    def test_fsrcnn_has_8_layers(self):
        assert len(get_workload("fsrcnn")) == 8

    def test_fsrcnn_output_is_960x540(self):
        sink = get_workload("fsrcnn").sinks()[0]
        assert (sink.ox, sink.oy) == (960, 540)

    def test_fsrcnn_mac_count_matches_fig13(self):
        # Fig. 13's large-tile floor is ~6.5e9 MACs.
        wl = get_workload("fsrcnn")
        assert wl.total_mac_count == pytest.approx(6.46e9, rel=0.05)

    def test_dmcnn_has_20_layers(self):
        assert len(get_workload("dmcnn_vd")) == 20

    def test_resnet18_has_branches(self):
        assert get_workload("resnet18").has_branches()

    def test_resnet18_classifier_depth(self):
        wl = get_workload("resnet18")
        # stem + pool + 8 blocks * (2 conv [+proj]) + 3 projections +
        # 8 adds + avgpool + fc = 31
        assert len(wl) == 31

    def test_reference_net_shape(self):
        wl = get_workload("reference")
        layers = wl.topological_layers()
        assert len(layers) == 11
        assert all(l.k == 32 for l in layers[:10])
        assert layers[-1].k == 16 and layers[-1].fx == 1

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("vgg99")
