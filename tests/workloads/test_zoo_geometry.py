"""Geometry-consistency invariants over every zoo network.

Each edge producer->consumer must agree on the feature map's shape:
the consumer's implied input geometry equals the producer's output
geometry.  This pins the zoo definitions against silent builder bugs.
"""

import pytest

from repro.workloads.zoo import WORKLOAD_FACTORIES


@pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
def test_edges_shape_consistent(name):
    wl = WORKLOAD_FACTORIES[name]()
    for layer in wl.topological_layers():
        for producer in wl.predecessors(layer.name):
            assert layer.in_channels == producer.k, (
                f"{name}: {producer.name}->{layer.name} channel mismatch"
            )
            # Strided windows may leave up to stride-1 dead border pixels
            # in the producer's map; otherwise spans must agree exactly.
            slack_x = producer.ox - layer.ix
            slack_y = producer.oy - layer.iy
            assert 0 <= slack_x < layer.sx, (
                f"{name}: {producer.name}->{layer.name} width mismatch "
                f"({layer.ix} vs {producer.ox})"
            )
            assert 0 <= slack_y < layer.sy, (
                f"{name}: {producer.name}->{layer.name} height mismatch "
                f"({layer.iy} vs {producer.oy})"
            )


@pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
def test_positive_volumes(name):
    wl = WORKLOAD_FACTORIES[name]()
    for layer in wl.topological_layers():
        assert layer.mac_count > 0
        assert layer.output_count > 0
        assert layer.weight_bytes >= 0


@pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
def test_single_network_output(name):
    # All zoo networks end in exactly one sink (tiling target).
    wl = WORKLOAD_FACTORIES[name]()
    assert len(wl.sinks()) == 1
