"""Unit tests for the workload DAG."""

import pytest

from repro.workloads.graph import WorkloadGraph
from repro.workloads.layer import LayerSpec


def layer(name, **kw):
    return LayerSpec(name=name, k=4, c=4, ox=8, oy=8, fx=3, fy=3, px=1, py=1, **kw)


@pytest.fixture
def chain():
    g = WorkloadGraph("chain")
    g.add_layer(layer("a"))
    g.add_layer(layer("b"), ["a"])
    g.add_layer(layer("c"), ["b"])
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self, chain):
        with pytest.raises(ValueError):
            chain.add_layer(layer("a"))

    def test_unknown_input_rejected(self, chain):
        with pytest.raises(KeyError):
            chain.add_layer(layer("d"), ["nope"])

    def test_lookup(self, chain):
        assert chain.layer("b").name == "b"
        with pytest.raises(KeyError):
            chain.layer("zzz")

    def test_len_and_iter(self, chain):
        assert len(chain) == 3
        assert [l.name for l in chain] == ["a", "b", "c"]


class TestTopology:
    def test_topological_order_is_insertion_order(self, chain):
        assert [l.name for l in chain.topological_layers()] == ["a", "b", "c"]

    def test_sources_and_sinks(self, chain):
        assert [l.name for l in chain.sources()] == ["a"]
        assert [l.name for l in chain.sinks()] == ["c"]

    def test_predecessors_successors(self, chain):
        assert [l.name for l in chain.predecessors("b")] == ["a"]
        assert [l.name for l in chain.successors("b")] == ["c"]

    def test_no_branches_in_chain(self, chain):
        assert not chain.has_branches()

    def test_branch_detection(self):
        g = WorkloadGraph("branchy")
        g.add_layer(layer("a"))
        g.add_layer(layer("b"), ["a"])
        g.add_layer(layer("c"), ["a"])
        assert g.has_branches()


class TestSubgraph:
    def test_subgraph_keeps_internal_edges(self, chain):
        sub = chain.subgraph(["a", "b"])
        assert len(sub) == 2
        assert [l.name for l in sub.predecessors("b")] == ["a"]

    def test_subgraph_drops_external_edges(self, chain):
        sub = chain.subgraph(["b", "c"])
        assert sub.is_source("b")


class TestAggregates:
    def test_total_macs(self, chain):
        assert chain.total_mac_count == sum(l.mac_count for l in chain)

    def test_total_weight_bytes(self, chain):
        assert chain.total_weight_bytes == sum(l.weight_bytes for l in chain)
