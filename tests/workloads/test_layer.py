"""Unit tests for LayerSpec: geometry, volumes, operand relevance."""

import pytest

from repro.workloads.layer import LayerSpec, OpType


def conv(name="c", **kw):
    base = dict(k=8, c=4, ox=16, oy=12, fx=3, fy=3, px=1, py=1)
    base.update(kw)
    return LayerSpec(name=name, **base)


class TestValidation:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            LayerSpec(name="bad", k=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            LayerSpec(name="bad", px=-1)

    def test_depthwise_requires_c1(self):
        with pytest.raises(ValueError):
            LayerSpec(name="bad", op_type=OpType.DEPTHWISE, c=2, k=8)

    def test_depthwise_with_c1_ok(self):
        layer = LayerSpec(name="dw", op_type=OpType.DEPTHWISE, c=1, k=8)
        assert layer.in_channels == 8


class TestGeometry:
    def test_same_padding_keeps_size(self):
        layer = conv()
        assert layer.ix == 16
        assert layer.iy == 12

    def test_no_padding_grows_input(self):
        layer = conv(px=0, py=0)
        assert layer.ix == 18
        assert layer.iy == 14

    def test_stride_two(self):
        layer = conv(sx=2, sy=2, px=0, py=0)
        assert layer.ix == (16 - 1) * 2 + 3
        assert layer.iy == (12 - 1) * 2 + 3

    def test_dilation(self):
        layer = conv(dx=2, dy=2, px=0, py=0)
        assert layer.ix == 15 + 2 * 2 + 1

    def test_clip_overrides_derived_span(self):
        layer = conv(px=0, py=0, ix_clip=17, iy_clip=13)
        assert layer.ix == 17
        assert layer.iy == 13


class TestVolumes:
    def test_mac_count(self):
        layer = conv()
        assert layer.mac_count == 8 * 4 * 16 * 12 * 9

    def test_weight_count_conv(self):
        assert conv().weight_count == 8 * 4 * 9

    def test_weight_count_pool_is_zero(self):
        layer = LayerSpec(name="p", op_type=OpType.POOL, k=8, c=1, ox=8, oy=8, fx=2, fy=2, sx=2, sy=2)
        assert layer.weight_count == 0
        assert layer.weight_bytes == 0

    def test_output_bytes_uses_act_bits(self):
        layer = conv(act_bits=16)
        assert layer.output_bytes == 8 * 16 * 12 * 2

    def test_input_count_uses_in_channels(self):
        layer = LayerSpec(
            name="dw", op_type=OpType.DEPTHWISE, c=1, k=8, ox=8, oy=8, fx=3, fy=3, px=1, py=1
        )
        assert layer.input_count == 8 * 8 * 8


class TestRelevance:
    def test_weight_relevance_conv(self):
        assert conv().relevant_dims("W") == frozenset({"K", "C", "FX", "FY"})

    def test_weight_relevance_pool_empty(self):
        layer = LayerSpec(name="p", op_type=OpType.POOL, k=8, c=1, ox=8, oy=8)
        assert layer.relevant_dims("W") == frozenset()

    def test_input_relevance_conv_excludes_k(self):
        assert "K" not in conv().relevant_dims("I")

    def test_input_relevance_depthwise_includes_k(self):
        layer = LayerSpec(name="dw", op_type=OpType.DEPTHWISE, c=1, k=8, ox=8, oy=8)
        assert "K" in layer.relevant_dims("I")

    def test_output_relevance(self):
        assert conv().relevant_dims("O") == frozenset({"K", "OX", "OY"})

    def test_unknown_operand_raises(self):
        with pytest.raises(ValueError):
            conv().relevant_dims("X")


class TestScaledToTile:
    def test_tile_dims(self):
        tile = conv().scaled_to_tile(4, 6)
        assert (tile.ox, tile.oy) == (4, 6)
        assert (tile.px, tile.py) == (0, 0)

    def test_tile_input_clip(self):
        tile = conv().scaled_to_tile(4, 6, ix=5, iy=7)
        assert tile.ix == 5
        assert tile.iy == 7

    def test_rejects_empty_tile(self):
        with pytest.raises(ValueError):
            conv().scaled_to_tile(0, 4)

    def test_preserves_precision(self):
        tile = conv(act_bits=16, w_bits=4).scaled_to_tile(4, 4)
        assert tile.act_bits == 16
        assert tile.w_bits == 4
