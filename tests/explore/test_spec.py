"""Unit tests for the declarative sweep specifications."""

import pytest

from repro.core.strategy import DFStrategy, OverlapMode
from repro.explore import DEFAULT_MODES, EvalJob, SweepSpec

TILES = ((4, 4), (16, 18))
MODES = (OverlapMode.FULLY_CACHED, OverlapMode.H_CACHED_V_RECOMPUTE)


class TestEvalJob:
    def test_names_from_refs(self):
        job = EvalJob(
            accelerator="meta_proto_like_df",
            workload="fsrcnn",
            strategy=DFStrategy(tile_x=4, tile_y=4),
        )
        assert job.accelerator_name == "meta_proto_like_df"
        assert job.workload_name == "fsrcnn"
        assert "fsrcnn on meta_proto_like_df" in job.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EvalJob(
                accelerator="a",
                workload="w",
                strategy=DFStrategy(tile_x=1, tile_y=1),
                kind="mystery",
            )

    def test_stack_jobs_need_layers(self):
        with pytest.raises(ValueError):
            EvalJob(
                accelerator="a",
                workload="w",
                strategy=DFStrategy(tile_x=1, tile_y=1),
                kind="stack",
            )


class TestSweepSpec:
    def test_tile_grid_order_is_mode_major(self):
        spec = SweepSpec.tile_grid("acc", "wl", TILES, MODES)
        assert len(spec) == len(TILES) * len(MODES)
        keys = [(j.strategy.mode, j.strategy.tile_x, j.strategy.tile_y) for j in spec]
        expected = [(m, tx, ty) for m in MODES for tx, ty in TILES]
        assert keys == expected

    def test_default_modes_cover_all(self):
        spec = SweepSpec.tile_grid("acc", "wl", TILES)
        assert {j.strategy.mode for j in spec} == set(DEFAULT_MODES)
        assert set(DEFAULT_MODES) == set(OverlapMode)

    def test_multi_workload_is_workload_major(self):
        strategies = (DFStrategy.single_layer(), DFStrategy.layer_by_layer())
        spec = SweepSpec.multi_workload("acc", ("w1", "w2"), strategies)
        assert [j.workload for j in spec] == ["w1", "w1", "w2", "w2"]

    def test_multi_architecture_is_architecture_major(self):
        spec = SweepSpec.multi_architecture(
            ("a1", "a2"), ("w1",), (DFStrategy(tile_x=4, tile_y=4),)
        )
        assert [j.accelerator for j in spec] == ["a1", "a2"]

    def test_per_stack_enumerates_stack_major(self):
        stacks = (("L1", "L2"), ("L3",))
        spec = SweepSpec.per_stack(
            "acc", "wl", stacks, TILES, MODES, input_locations=(("", 3),)
        )
        assert len(spec) == len(stacks) * len(TILES) * len(MODES)
        assert all(j.kind == "stack" for j in spec)
        assert [j.stack_index for j in spec][: len(TILES) * len(MODES)] == [0] * (
            len(TILES) * len(MODES)
        )
        assert spec.jobs[-1].stack_layers == ("L3",)
        assert dict(spec.jobs[0].input_locations) == {"": 3}

    def test_concatenation_preserves_order(self):
        a = SweepSpec.tile_grid("acc", "w1", TILES, MODES)
        b = SweepSpec.strategies("acc", "w2", (DFStrategy.layer_by_layer(),))
        combined = a + b
        assert len(combined) == len(a) + len(b)
        assert combined.jobs[: len(a)] == a.jobs
        assert combined.jobs[-1].workload == "w2"
