"""Unit tests for the shareable, persistent mapping cache."""

import json

import pytest

from repro import DepthFirstEngine, DFStrategy
from repro.mapping import MappingCache, SearchConfig
from repro.mapping.cache import (
    decode_search_result,
    encode_search_result,
    normalize_key,
)

from ..conftest import make_tiny_workload


@pytest.fixture
def searched_cache(meta_df, fast_config):
    """A cache filled by one real evaluation, plus the schedule result."""
    cache = MappingCache()
    engine = DepthFirstEngine(meta_df, fast_config, cache=cache)
    result = engine.evaluate(
        make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8)
    )
    return cache, result


class TestNormalizeKey:
    def test_tuples_canonicalize(self):
        key = (("conv", 8, 3), "meta:abc", (("I", 2), ("O", 1)), (5, 60, "energy"))
        text = normalize_key(key)
        assert isinstance(text, str)
        assert normalize_key(key) == text
        assert normalize_key(text) == text

    def test_distinct_keys_stay_distinct(self):
        assert normalize_key((1, 2)) != normalize_key((1, 3))


class TestRoundTrip:
    def test_encode_decode_identity(self, searched_cache):
        cache, _ = searched_cache
        assert len(cache) > 0
        for entry in cache.snapshot().values():
            clone = decode_search_result(
                json.loads(json.dumps(encode_search_result(entry)))
            )
            assert clone == entry

    def test_save_load_file(self, searched_cache, tmp_path):
        cache, _ = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)
        loaded = MappingCache(path)
        assert len(loaded) == len(cache)
        assert loaded.snapshot() == cache.snapshot()

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 999, "entries": {}}))
        with pytest.raises(ValueError):
            MappingCache(path)

    def test_non_json_rejected_as_value_error(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("not json{")
        with pytest.raises(ValueError, match="not a mapping-cache file"):
            MappingCache(path)

    def test_malformed_entry_rejected_as_value_error(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text(json.dumps({"format": 1, "entries": {"k": {}}}))
        with pytest.raises(ValueError, match="malformed mapping-cache entry"):
            MappingCache(path)

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            MappingCache().save()


class TestSharing:
    def test_merge_and_delta(self, searched_cache):
        cache, _ = searched_cache
        other = MappingCache()
        assert other.merge(cache.snapshot()) == len(cache)
        assert other.merge(cache.snapshot()) == 0  # idempotent
        assert other.delta(cache.keys()) == {}
        assert set(other.delta(())) == other.keys()

    def test_stats_count_hits_and_misses(self, searched_cache):
        cache, _ = searched_cache
        stats = cache.stats
        assert stats["size"] == len(cache)
        assert stats["misses"] == len(cache)  # every entry was searched once
        assert stats["hits"] > 0  # tile types repeat layer shapes

    def test_clear_resets(self, searched_cache):
        cache, _ = searched_cache
        cache.clear()
        assert len(cache) == 0 and cache.stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
        }


class TestWarmEngine:
    def test_disk_warm_engine_is_identical_with_zero_searches(
        self, meta_df, fast_config, searched_cache, tmp_path
    ):
        cache, cold_result = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)

        warm_cache = MappingCache(path)
        engine = DepthFirstEngine(meta_df, fast_config, cache=warm_cache)
        warm_result = engine.evaluate(
            make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8)
        )
        assert warm_result.total == cold_result.total
        assert warm_result.strategy_label == cold_result.strategy_label
        assert warm_cache.misses == 0  # no new LOMA searches ran

    def test_engines_share_a_cache_handle(self, meta_df, fast_config):
        shared = MappingCache()
        first = DepthFirstEngine(meta_df, fast_config, cache=shared)
        first.evaluate(make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8))
        searched = shared.misses

        second = DepthFirstEngine(meta_df, fast_config, cache=shared)
        assert second.cache is shared
        second.evaluate(make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8))
        assert shared.misses == searched  # second engine searched nothing
