"""Unit tests for the shareable, persistent mapping cache."""

import json

import pytest

from repro import DepthFirstEngine, DFStrategy
from repro.mapping import MappingCache
from repro.mapping.cache import (
    decode_search_result,
    encode_search_result,
    normalize_key,
)

from ..conftest import make_tiny_workload


@pytest.fixture
def searched_cache(meta_df, fast_config):
    """A cache filled by one real evaluation, plus the schedule result."""
    cache = MappingCache()
    engine = DepthFirstEngine(meta_df, fast_config, cache=cache)
    result = engine.evaluate(
        make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8)
    )
    return cache, result


class TestNormalizeKey:
    def test_tuples_canonicalize(self):
        key = (("conv", 8, 3), "meta:abc", (("I", 2), ("O", 1)), (5, 60, "energy"))
        text = normalize_key(key)
        assert isinstance(text, str)
        assert normalize_key(key) == text
        assert normalize_key(text) == text

    def test_distinct_keys_stay_distinct(self):
        assert normalize_key((1, 2)) != normalize_key((1, 3))


class TestRoundTrip:
    def test_encode_decode_identity(self, searched_cache):
        cache, _ = searched_cache
        assert len(cache) > 0
        for entry in cache.snapshot().values():
            clone = decode_search_result(
                json.loads(json.dumps(encode_search_result(entry)))
            )
            assert clone == entry

    def test_save_load_file(self, searched_cache, tmp_path):
        cache, _ = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)
        loaded = MappingCache(path)
        assert len(loaded) == len(cache)
        assert loaded.snapshot() == cache.snapshot()

    def test_stale_format_discarded_not_fatal(self, tmp_path):
        path = tmp_path / "stale.json"
        path.write_text(json.dumps({"format": 999, "entries": {}}))
        with pytest.warns(UserWarning, match="unsupported mapping-cache format"):
            cache = MappingCache(path)
        assert len(cache) == 0  # usable, just empty
        cache.save()  # rewrites the stale file in the current format
        assert json.loads(path.read_text())["format"] == 1

    def test_corrupt_file_discarded_not_fatal(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("not json{")
        with pytest.warns(UserWarning, match="not a mapping-cache file"):
            cache = MappingCache(path)
        assert len(cache) == 0

    def test_malformed_entry_discarded_not_fatal(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text(json.dumps({"format": 1, "entries": {"k": {}}}))
        with pytest.warns(UserWarning, match="malformed mapping-cache entry"):
            cache = MappingCache(path)
        assert len(cache) == 0

    def test_undecodable_entry_value_discarded_not_fatal(self, tmp_path):
        """Entry *values* that fail decoding (e.g. a non-int loop
        factor raising ValueError) are discarded like structural
        damage, never a traceback."""
        path = tmp_path / "bad_value.json"
        path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "entries": {
                        "k": {"loops": [["K", "abc"]], "bounds": {}, "cost": {}}
                    },
                }
            )
        )
        with pytest.warns(UserWarning, match="malformed mapping-cache entry"):
            cache = MappingCache(path)
        assert len(cache) == 0

    def test_unreadable_path_discarded_not_fatal(self, tmp_path):
        """A cache path that is a directory (OSError on read) is
        discarded like any other unusable file."""
        with pytest.warns(UserWarning, match="not a mapping-cache file"):
            assert MappingCache().load(tmp_path) == 0

    def test_strict_load_raises(self, tmp_path):
        path = tmp_path / "stale.json"
        path.write_text(json.dumps({"format": 999, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported mapping-cache format"):
            MappingCache().load(path, strict=True)
        path.write_text("not json{")
        with pytest.raises(ValueError, match="not a mapping-cache file"):
            MappingCache().load(path, strict=True)

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            MappingCache().save()

    def test_save_records_session_stats(self, searched_cache, tmp_path):
        cache, _ = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)
        payload = json.loads(path.read_text())
        assert payload["stats"] == {"hits": cache.hits, "misses": cache.misses}


class TestSharing:
    def test_merge_and_delta(self, searched_cache):
        cache, _ = searched_cache
        other = MappingCache()
        assert other.merge(cache.snapshot()) == len(cache)
        assert other.merge(cache.snapshot()) == 0  # idempotent
        assert other.delta(cache.keys()) == {}
        assert set(other.delta(())) == other.keys()

    def test_stats_count_hits_and_misses(self, searched_cache):
        cache, _ = searched_cache
        stats = cache.stats
        assert stats["size"] == len(cache)
        assert stats["misses"] == len(cache)  # every entry was searched once
        assert stats["hits"] > 0  # tile types repeat layer shapes

    def test_clear_resets(self, searched_cache):
        cache, _ = searched_cache
        cache.clear()
        assert len(cache) == 0 and cache.stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
        }


class TestEviction:
    """LRU-ish ``max_entries`` pruning (ROADMAP cache-eviction item)."""

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            MappingCache(max_entries=0)

    def test_prune_keeps_most_recently_used(self):
        cache = MappingCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, object())
        assert cache.prune() == 1
        assert cache.keys() == {"b", "c"}

    def test_get_refreshes_recency(self):
        cache = MappingCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, object())
        cache.get("a")  # touch the oldest entry
        cache.prune()
        assert cache.keys() == {"c", "a"}

    def test_merge_refreshes_recency(self):
        """A harvested/loaded key counts as a use, like get/put — else
        save-time pruning would evict exactly what workers just hit."""
        cache = MappingCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, object())
        cache.merge({"a": object()})  # harvest refreshes 'a'
        cache.prune()
        assert cache.keys() == {"c", "a"}

    def test_prune_noop_under_bound(self):
        cache = MappingCache(max_entries=10)
        cache.put("a", object())
        assert cache.prune() == 0

    def test_save_prunes_to_bound(self, searched_cache, tmp_path):
        cache, _ = searched_cache
        assert len(cache) > 2
        bounded = MappingCache(max_entries=2)
        bounded.merge(cache.snapshot())
        path = tmp_path / "bounded.json"
        bounded.save(path)
        assert len(bounded) == 2
        assert len(json.loads(path.read_text())["entries"]) == 2


class TestFileInfo:
    """The ``repro cache-info`` backend."""

    def test_ok_file(self, searched_cache, tmp_path):
        from repro.mapping.cache import cache_file_info

        cache, _ = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)
        info = cache_file_info(path)
        assert info["status"] == "ok"
        assert info["format"] == 1
        assert info["entries"] == len(cache)
        assert info["size_bytes"] > 0
        assert info["stats"]["misses"] == cache.misses

    def test_missing_file(self, tmp_path):
        from repro.mapping.cache import cache_file_info

        assert cache_file_info(tmp_path / "nope.json")["status"] == "missing"

    def test_stale_version(self, tmp_path):
        from repro.mapping.cache import cache_file_info

        path = tmp_path / "stale.json"
        path.write_text(json.dumps({"format": 999, "entries": {"k": {}}}))
        info = cache_file_info(path)
        assert info["status"] == "stale-version"
        assert info["entries"] == 1

    def test_corrupt(self, tmp_path):
        from repro.mapping.cache import cache_file_info

        path = tmp_path / "corrupt.json"
        path.write_text("not json{")
        assert cache_file_info(path)["status"] == "corrupt"

    def test_malformed_entries_not_ok(self, tmp_path):
        """'ok' must mean load() would actually load every entry."""
        from repro.mapping.cache import cache_file_info

        path = tmp_path / "torn_entries.json"
        path.write_text(json.dumps({"format": 1, "entries": {"k": {}}}))
        assert cache_file_info(path)["status"] == "malformed-entries"


class TestWarmEngine:
    def test_disk_warm_engine_is_identical_with_zero_searches(
        self, meta_df, fast_config, searched_cache, tmp_path
    ):
        cache, cold_result = searched_cache
        path = tmp_path / "loma.json"
        cache.save(path)

        warm_cache = MappingCache(path)
        engine = DepthFirstEngine(meta_df, fast_config, cache=warm_cache)
        warm_result = engine.evaluate(
            make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8)
        )
        assert warm_result.total == cold_result.total
        assert warm_result.strategy_label == cold_result.strategy_label
        assert warm_cache.misses == 0  # no new LOMA searches ran

    def test_engines_share_a_cache_handle(self, meta_df, fast_config):
        shared = MappingCache()
        first = DepthFirstEngine(meta_df, fast_config, cache=shared)
        first.evaluate(make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8))
        searched = shared.misses

        second = DepthFirstEngine(meta_df, fast_config, cache=shared)
        assert second.cache is shared
        second.evaluate(make_tiny_workload(), DFStrategy(tile_x=8, tile_y=8))
        assert shared.misses == searched  # second engine searched nothing


class TestPrunedMerge:
    """Merging two caches that were both LRU-pruned via ``max_entries``
    (e.g. two long-lived cache files harvested into one)."""

    def test_merge_of_two_pruned_caches(self):
        a = MappingCache(max_entries=2)
        for key in ("a1", "a2", "a3"):
            a.put(key, object())
        assert a.prune() == 1  # keeps a2, a3

        b = MappingCache(max_entries=2)
        for key in ("b1", "b2", "b3"):
            b.put(key, object())
        assert b.prune() == 1  # keeps b2, b3

        assert a.merge(b.snapshot()) == 2
        assert a.keys() == {"a2", "a3", "b2", "b3"}
        # a's own bound still applies on the next prune/save, and the
        # merged keys count as the most recent uses.
        assert a.prune() == 2
        assert a.keys() == {"b2", "b3"}

    def test_pruned_merge_survives_save_load(
        self, searched_cache, tmp_path
    ):
        """Disk round trip of the merge of two pruned caches: every
        surviving entry must still decode."""
        cache, _ = searched_cache
        keys = sorted(cache.keys())
        assert len(keys) >= 2
        half = len(keys) // 2
        a = MappingCache(max_entries=max(1, half - 1))
        a.merge({k: v for k, v in cache.snapshot().items() if k in keys[:half]})
        a.prune()
        b = MappingCache(max_entries=max(1, half - 1))
        b.merge({k: v for k, v in cache.snapshot().items() if k in keys[half:]})
        b.prune()

        merged = MappingCache(max_entries=len(cache))
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        path = tmp_path / "merged.json"
        merged.save(path)
        loaded = MappingCache(path)
        assert loaded.snapshot() == merged.snapshot()

    def test_overlapping_keys_take_the_incoming_entry(self):
        a = MappingCache(max_entries=2)
        old, new = object(), object()
        a.put("shared", old)
        assert a.merge({"shared": new}) == 0  # refreshed, not new
        assert a.snapshot()["shared"] is new


class TestFreshFileInfo:
    """`cache_file_info` / `repro cache-info` on empty or fresh files."""

    def test_fresh_save_of_empty_cache_is_ok(self, tmp_path):
        from repro.mapping.cache import cache_file_info

        path = tmp_path / "fresh.json"
        MappingCache(path).save()
        info = cache_file_info(path)
        assert info["status"] == "ok"
        assert info["entries"] == 0
        assert info["stats"] == {"hits": 0, "misses": 0}

    def test_zero_byte_file_is_corrupt_not_crash(self, tmp_path):
        from repro.mapping.cache import cache_file_info

        path = tmp_path / "empty.json"
        path.write_text("")
        assert cache_file_info(path)["status"] == "corrupt"
        # Loading it is non-fatal too (discard-with-warning contract).
        with pytest.warns(UserWarning, match="discarding stale"):
            assert MappingCache().load(path) == 0

    def test_cli_cache_info_on_fresh_file(self, tmp_path, capsys):
        from repro.cli import run_cache_info

        path = tmp_path / "fresh.json"
        MappingCache(path).save()
        assert run_cache_info([str(path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out and "status:  ok" in out

    def test_cli_cache_info_on_zero_byte_file(self, tmp_path, capsys):
        from repro.cli import run_cache_info

        path = tmp_path / "empty.json"
        path.write_text("")
        assert run_cache_info([str(path)]) == 1
        assert "corrupt" in capsys.readouterr().out


def _saver_main(path, me: int, per_proc: int, barrier) -> None:
    """Child-process body of the concurrent-save stress (module level:
    must be picklable)."""
    from ..serve.test_cache_server import make_result

    cache = MappingCache()
    for i in range(per_proc):
        cache.put(f"p{me}/k{i}", make_result(me * 100 + i))
    barrier.wait(timeout=30)
    cache.save(path)


class TestConcurrentSave:
    """Crash-safe persistence: atomic replace + merge-on-save, so two
    processes saving to one path never lose each other's entries."""

    @staticmethod
    def filled(entries: dict) -> MappingCache:
        cache = MappingCache()
        cache.merge(entries)
        return cache

    @staticmethod
    def result(seed: int):
        from ..serve.test_cache_server import make_result

        return make_result(seed)

    def test_two_savers_union(self, searched_cache, tmp_path):
        full, _ = searched_cache
        keys = sorted(full.keys())
        assert len(keys) >= 4
        snapshot = full.snapshot()
        half_a = {k: snapshot[k] for k in keys[: len(keys) // 2]}
        half_b = {k: snapshot[k] for k in keys[len(keys) // 2 :]}
        path = tmp_path / "shared.json"
        self.filled(half_a).save(path)
        self.filled(half_b).save(path)  # must not clobber half_a
        assert MappingCache(path).keys() == set(keys)

    def test_own_entry_wins_on_conflict(self, tmp_path):
        path = tmp_path / "conflict.json"
        old, new = self.result(1), self.result(2)
        self.filled({"k": old, "only_disk": old}).save(path)
        mine = self.filled({"k": new})
        mine.save(path)
        assert mine.snapshot()["k"] == new  # not overwritten by disk
        assert mine.keys() == {"k", "only_disk"}  # but disk-only adopted
        assert MappingCache(path).snapshot()["k"] == new

    def test_merge_opt_out(self, searched_cache, tmp_path):
        full, _ = searched_cache
        path = tmp_path / "plain.json"
        full.save(path)
        fresh = MappingCache()
        fresh.save(path, merge=False)
        assert json.loads(path.read_text())["entries"] == {}

    def test_adopted_entries_are_oldest_for_pruning(self, tmp_path):
        path = tmp_path / "lru.json"
        self.filled({"disk1": self.result(1), "disk2": self.result(2)}).save(path)
        mine = MappingCache(max_entries=2)
        mine.put("mine1", self.result(3))
        mine.put("mine2", self.result(4))
        mine.save(path)
        # The bound keeps this cache's own (recently used) entries and
        # evicts the adopted disk ones first.
        assert mine.keys() == {"mine1", "mine2"}

    def test_unusable_existing_file_is_ignored(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json{")
        cache = self.filled({"k": self.result(1)})
        cache.save(path)  # no warning channel needed: merge reads best-effort
        assert MappingCache(path).keys() == {"k"}

    def test_no_temp_litter(self, searched_cache, tmp_path):
        full, _ = searched_cache
        path = tmp_path / "clean.json"
        full.save(path)
        full.save(path)
        # Only the cache file and its persistent inter-process lock
        # remain — never a *.tmp.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "clean.json",
            "clean.json.lock",
        ]

    def test_parallel_process_savers_lose_nothing(self, tmp_path):
        """The acceptance property, for real: several processes saving
        disjoint entries to one path at the same time — the final file
        holds the union (flock serializes the read-merge-write)."""
        import multiprocessing as mp

        path = tmp_path / "contended.json"
        n_procs, per_proc = 4, 6
        barrier = mp.Barrier(n_procs)
        procs = [
            mp.Process(target=_saver_main, args=(path, me, per_proc, barrier))
            for me in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert MappingCache(path).keys() == {
            f"p{me}/k{i}" for me in range(n_procs) for i in range(per_proc)
        }
