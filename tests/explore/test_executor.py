"""Executor tests: serial/parallel equivalence and cache flow.

The headline guarantee: the process-pool backend returns results in the
same order and with bit-identical totals as the serial backend.
"""

import pytest

from repro import DepthFirstEngine, DFStrategy
from repro.core.optimizer import best_combination, sweep
from repro.core.scheduler import evaluate_strategy
from repro.core.strategy import OverlapMode
from repro.explore import Executor, MappingCache, SweepSpec

from ..conftest import make_tiny_workload

TILES = ((4, 4), (16, 16), (48, 32))
MODES = (OverlapMode.FULLY_CACHED,)


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_workload()


@pytest.fixture(scope="module")
def grid_spec(tiny):
    # Accelerator by zoo name, workload by object: both ref styles in one
    # spec so the parallel path exercises name resolution and pickling.
    return SweepSpec.tile_grid("meta_proto_like_df", tiny, TILES, MODES)


class TestSerialExecutor:
    def test_results_in_job_order(self, grid_spec, fast_config):
        results = Executor(jobs=1, search_config=fast_config).run(grid_spec)
        assert [r.index for r in results] == list(range(len(grid_spec)))
        assert [r.job for r in results] == list(grid_spec.jobs)

    def test_matches_direct_engine(self, grid_spec, fast_config, meta_df, tiny):
        results = Executor(jobs=1, search_config=fast_config).run(grid_spec)
        engine = DepthFirstEngine(meta_df, fast_config)
        for r in results:
            direct = engine.evaluate(tiny, r.job.strategy)
            assert r.result.total == direct.total

    def test_empty_spec(self, fast_config):
        assert Executor(jobs=1, search_config=fast_config).run(SweepSpec()) == []

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            Executor(jobs=-2)


class TestParallelExecutor:
    def test_parallel_identical_to_serial(self, grid_spec, fast_config):
        serial = Executor(jobs=1, search_config=fast_config).run(grid_spec)
        parallel = Executor(jobs=2, search_config=fast_config).run(grid_spec)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.job == p.job
            assert s.result.total == p.result.total
            assert s.result.strategy_label == p.result.strategy_label

    def test_parallel_harvests_worker_cache_entries(self, grid_spec, fast_config):
        executor = Executor(jobs=2, search_config=fast_config)
        assert len(executor.cache) == 0
        executor.run(grid_spec)
        assert len(executor.cache) > 0
        # Worker hit/miss counters are aggregated into the parent cache:
        # every stored entry was missed at least once, in some worker
        # (workers may independently miss the same key).
        assert executor.cache.misses >= len(executor.cache)
        assert executor.cache.hits > 0

    def test_lbl_and_sl_strategies_survive_pickling(self, tiny, fast_config):
        # Regression: one_layer_per_stack used a sentinel *identity*
        # check, which broke once strategies were pickled to workers.
        import pickle

        for strategy in (DFStrategy.layer_by_layer(), DFStrategy.single_layer()):
            clone = pickle.loads(pickle.dumps(strategy))
            assert clone.one_layer_per_stack

        spec = SweepSpec.strategies(
            "meta_proto_like_df", tiny,
            (DFStrategy.layer_by_layer(), DFStrategy.single_layer()),
        )
        serial = Executor(jobs=1, search_config=fast_config).run(spec)
        parallel = Executor(jobs=2, search_config=fast_config).run(spec)
        for s, p in zip(serial, parallel):
            assert s.result.total == p.result.total
            assert p.result.strategy_label in ("LBL", "SL")

    def test_prewarmed_workers_redo_nothing(self, grid_spec, fast_config):
        executor = Executor(jobs=2, search_config=fast_config)
        executor.run(grid_spec)
        warm = executor.cache
        before = len(warm)
        # Re-running with the now-warm cache must add no new entries.
        executor.run(grid_spec)
        assert len(warm) == before


class TestStackJobs:
    def test_best_combination_parallel_matches_serial(self, meta_df, fast_config, tiny):
        serial_engine = DepthFirstEngine(meta_df, fast_config)
        serial = best_combination(serial_engine, tiny, tile_sizes=TILES, modes=MODES)
        parallel_engine = DepthFirstEngine(meta_df, fast_config)
        parallel = best_combination(
            parallel_engine, tiny, tile_sizes=TILES, modes=MODES, jobs=2
        )
        assert parallel.total == serial.total
        assert parallel.strategy_label == serial.strategy_label

    def test_sweep_jobs_param_matches_serial(self, meta_df, fast_config, tiny):
        serial = sweep(DepthFirstEngine(meta_df, fast_config), tiny, TILES, MODES)
        parallel = sweep(
            DepthFirstEngine(meta_df, fast_config), tiny, TILES, MODES, jobs=2
        )
        for s, p in zip(serial, parallel):
            assert s.strategy == p.strategy
            assert s.result.total == p.result.total


class TestPicklableEntryPoint:
    def test_evaluate_strategy_matches_engine(self, meta_df, fast_config, tiny):
        strategy = DFStrategy(tile_x=8, tile_y=8)
        via_function = evaluate_strategy(
            meta_df, tiny, strategy, search_config=fast_config
        )
        via_engine = DepthFirstEngine(meta_df, fast_config).evaluate(tiny, strategy)
        assert via_function.total == via_engine.total

    def test_fills_a_shared_cache(self, meta_df, fast_config, tiny):
        cache = MappingCache()
        evaluate_strategy(
            meta_df, tiny, DFStrategy(tile_x=8, tile_y=8),
            search_config=fast_config, cache=cache,
        )
        assert len(cache) > 0
