"""Unit tests for the data-copy cost model (step 4)."""

import pytest

from repro.core.datacopy import DataCopyAction, copy_cost
from repro.hardware.memory import MemoryInstance, level


@pytest.fixture
def levels():
    lb = MemoryInstance.sram("LB_IO", 64 * 1024)
    gb = MemoryInstance.sram("GB_IO", 1 << 20)
    dram = MemoryInstance.dram()
    return level(lb, "IO"), level(gb, "IO"), level(dram, "WIO")


def action(elems, src, dst, bits=8, label="x"):
    return DataCopyAction(label=label, elems=elems, bits=bits, src=src, dst=dst)


class TestCopyCost:
    def test_same_instance_is_free(self, levels):
        lb, _gb, _dram = levels
        cost = copy_cost([action(1000, lb, lb)])
        assert cost.energy_pj == 0
        assert cost.latency_cycles == 0

    def test_zero_elems_free(self, levels):
        lb, gb, _ = levels
        cost = copy_cost([action(0, gb, lb)])
        assert cost.energy_pj == 0

    def test_energy_is_read_plus_write(self, levels):
        lb, gb, _ = levels
        cost = copy_cost([action(1000, gb, lb)])
        expected = 1000 * (
            gb.instance.r_energy_pj_per_byte + lb.instance.w_energy_pj_per_byte
        )
        assert cost.energy_pj == pytest.approx(expected)

    def test_traffic_recorded_as_copy_category(self, levels):
        lb, gb, _ = levels
        cost = copy_cost([action(1000, gb, lb)])
        assert cost.traffic[("copy", "GB_IO")].reads_elems == 1000
        assert cost.traffic[("copy", "LB_IO")].writes_elems == 1000

    def test_precision_scales_bytes(self, levels):
        lb, gb, _ = levels
        one = copy_cost([action(1000, gb, lb, bits=8)])
        two = copy_cost([action(1000, gb, lb, bits=16)])
        assert two.energy_pj == pytest.approx(2 * one.energy_pj)


class TestPortConflicts:
    def test_parallel_actions_different_memories(self, levels):
        lb, gb, dram = levels
        # DRAM->GB and LB->LB'... use distinct pairs: DRAM->LB and GB->LB
        # share LB: serialized there.
        a = action(8000, dram, gb)
        b = action(8000, gb, lb)
        both = copy_cost([a, b])
        # GB carries both transfers: it is the conflict point.
        gb_bytes = 16000
        gb_bw = gb.instance.bandwidth_bytes * gb.instance.ports
        assert both.latency_cycles >= gb_bytes / gb_bw

    def test_dram_is_slowest_port(self, levels):
        lb, _gb, dram = levels
        cost = copy_cost([action(8000, dram, lb)])
        assert cost.latency_cycles == pytest.approx(8000 / 8.0)

    def test_latency_is_max_not_sum_when_disjoint(self, levels):
        lb, gb, dram = levels
        lb2 = level(MemoryInstance.sram("LB_B", 64 * 1024), "IO")
        a = action(8000, dram, lb)
        b = action(100, gb, lb2)
        cost = copy_cost([a, b])
        assert cost.latency_cycles == pytest.approx(8000 / 8.0)
