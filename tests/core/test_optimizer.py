"""Unit tests for the schedule-space exploration helpers."""

import pytest

from repro.core.optimizer import (
    best_combination,
    best_point,
    best_single_strategy,
    sweep,
)
from repro.core.strategy import OverlapMode


TILES = ((4, 4), (16, 16), (48, 32))
MODES = (OverlapMode.FULLY_CACHED,)


class TestSweep:
    def test_sweep_covers_grid(self, tiny_engine, tiny_workload):
        points = sweep(tiny_engine, tiny_workload, TILES, MODES)
        assert len(points) == len(TILES) * len(MODES)
        combos = {(p.strategy.tile_x, p.strategy.tile_y) for p in points}
        assert combos == set(TILES)

    def test_best_point_minimizes_energy(self, tiny_engine, tiny_workload):
        points = sweep(tiny_engine, tiny_workload, TILES, MODES)
        best = best_point(points, "energy")
        assert all(best.result.energy_pj <= p.result.energy_pj for p in points)

    def test_best_point_latency_objective(self, tiny_engine, tiny_workload):
        points = sweep(tiny_engine, tiny_workload, TILES, MODES)
        best = best_point(points, "latency")
        assert all(
            best.result.latency_cycles <= p.result.latency_cycles for p in points
        )

    def test_best_point_empty_raises(self):
        with pytest.raises(ValueError):
            best_point([], "energy")


class TestBestStrategy:
    def test_best_single_strategy(self, tiny_engine, tiny_workload):
        point = best_single_strategy(
            tiny_engine, tiny_workload, tile_sizes=TILES, modes=MODES
        )
        assert point.result.energy_pj > 0

    def test_best_combination_no_worse_than_best_single(
        self, tiny_engine, tiny_workload
    ):
        single = best_single_strategy(
            tiny_engine, tiny_workload, tile_sizes=TILES, modes=MODES
        )
        combo = best_combination(
            tiny_engine, tiny_workload, tile_sizes=TILES, modes=MODES
        )
        assert combo.energy_pj <= single.result.energy_pj * 1.0001

    def test_combination_label_mentions_stacks(self, tiny_engine, tiny_workload):
        combo = best_combination(
            tiny_engine, tiny_workload, tile_sizes=TILES, modes=MODES
        )
        assert combo.strategy_label.startswith("best combination")
