"""Unit tests for stack partitioning (fuse depth, axis 3)."""

import pytest

from repro.core.stacks import branch_free_segments, partition_stacks
from repro.workloads.zoo import resnet18

from ..conftest import make_branchy_workload, make_tiny_workload


class TestSegments:
    def test_linear_chain_segments_per_layer(self, tiny_workload):
        segments = branch_free_segments(tiny_workload)
        assert [len(s) for s in segments] == [1, 1, 1]

    def test_residual_block_is_atomic(self, branchy_workload):
        segments = branch_free_segments(branchy_workload)
        names = [[l.name for l in s] for s in segments]
        assert ["entry"] in names or any("entry" in s and len(s) > 1 for s in names)
        # The c1-c2-join region must sit inside one segment.
        seg_of = {l: i for i, s in enumerate(names) for l in s}
        assert seg_of["c1"] == seg_of["c2"] == seg_of["join"]

    def test_segments_cover_all_layers(self, branchy_workload):
        segments = branch_free_segments(branchy_workload)
        flat = [l.name for s in segments for l in s]
        assert sorted(flat) == sorted(l.name for l in branchy_workload)

    def test_resnet_blocks_atomic(self):
        wl = resnet18()
        segments = branch_free_segments(wl)
        seg_of = {l.name: i for i, s in enumerate(segments) for l in s}
        # Each basic block's two convs and its add share a segment.
        assert seg_of["s1b1_conv1"] == seg_of["s1b1_conv2"] == seg_of["s1b1_add"]
        assert seg_of["s1b1_add"] != seg_of["s1b2_add"]


class TestAutoPartition:
    def test_tiny_workload_fuses_fully(self, tiny_workload, meta_df):
        stacks = partition_stacks(tiny_workload, meta_df)
        assert len(stacks) == 1
        assert stacks[0].layer_names == ("L1", "L2", "L3")

    def test_capacity_rule_splits(self, meta_df):
        # ResNet18's late stages exceed the 1MB weight GB: they fall back
        # to single-layer stacks (the paper's CS2 observation).
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df)
        assert len(stacks) > 1
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        for stack in stacks:
            if len(stack.layers) > 1:
                assert stack.weight_bytes <= capacity

    def test_oversized_atomic_region_goes_per_layer(self, meta_df):
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df)
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        # s4 blocks carry ~4.7MB of weights > 1MB: their layers must be
        # single-layer stacks.
        s4_stacks = [s for s in stacks if any("s4b2" in n for n in s.layer_names)]
        assert all(len(s.layers) == 1 for s in s4_stacks)


class TestExplicitPartition:
    def test_explicit_partition(self, tiny_workload, meta_df):
        stacks = partition_stacks(
            tiny_workload, meta_df, explicit=(("L1", "L2"), ("L3",))
        )
        assert [s.layer_names for s in stacks] == [("L1", "L2"), ("L3",)]

    def test_explicit_must_cover(self, tiny_workload, meta_df):
        with pytest.raises(ValueError):
            partition_stacks(tiny_workload, meta_df, explicit=(("L1",),))

    def test_per_layer(self, tiny_workload, meta_df):
        stacks = partition_stacks(tiny_workload, meta_df, per_layer=True)
        assert [s.layer_names for s in stacks] == [("L1",), ("L2",), ("L3",)]


class TestStack:
    def test_weight_bytes(self, tiny_workload, meta_df):
        stack = partition_stacks(tiny_workload, meta_df)[0]
        assert stack.weight_bytes == tiny_workload.total_weight_bytes

    def test_sink(self, tiny_workload, meta_df):
        stack = partition_stacks(tiny_workload, meta_df)[0]
        assert stack.sink.name == "L3"
