"""Unit tests for stack partitioning (fuse depth, axis 3)."""

import pytest

from repro.core.stacks import branch_free_segments, partition_stacks
from repro.workloads.zoo import WORKLOAD_FACTORIES, get_workload, resnet18

from ..conftest import make_branchy_workload, make_tiny_workload


def quadratic_reference_segments(workload):
    """The original O(n^2) branch-free segmentation, kept verbatim as
    the property-test oracle for the O(n) production rewrite."""
    layers = workload.topological_layers()
    position = {l.name: i for i, l in enumerate(layers)}
    last_use = {}
    for layer in layers:
        consumers = workload.successors(layer.name)
        last_use[layer.name] = max(
            (position[c.name] for c in consumers), default=position[layer.name]
        )
    segments, current = [], []
    for i, layer in enumerate(layers):
        current.append(layer)
        crossing = any(
            position[l.name] <= i < last_use[l.name]
            for l in layers[: i + 1]
            if l.name != layer.name
        )
        if not crossing:
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    return segments


class TestSegments:
    def test_linear_chain_segments_per_layer(self, tiny_workload):
        segments = branch_free_segments(tiny_workload)
        assert [len(s) for s in segments] == [1, 1, 1]

    def test_residual_block_is_atomic(self, branchy_workload):
        segments = branch_free_segments(branchy_workload)
        names = [[l.name for l in s] for s in segments]
        assert ["entry"] in names or any("entry" in s and len(s) > 1 for s in names)
        # The c1-c2-join region must sit inside one segment.
        seg_of = {l: i for i, s in enumerate(names) for l in s}
        assert seg_of["c1"] == seg_of["c2"] == seg_of["join"]

    def test_segments_cover_all_layers(self, branchy_workload):
        segments = branch_free_segments(branchy_workload)
        flat = [l.name for s in segments for l in s]
        assert sorted(flat) == sorted(l.name for l in branchy_workload)

    def test_resnet_blocks_atomic(self):
        wl = resnet18()
        segments = branch_free_segments(wl)
        seg_of = {l.name: i for i, s in enumerate(segments) for l in s}
        # Each basic block's two convs and its add share a segment.
        assert seg_of["s1b1_conv1"] == seg_of["s1b1_conv2"] == seg_of["s1b1_add"]
        assert seg_of["s1b1_add"] != seg_of["s1b2_add"]


class TestAutoPartition:
    def test_tiny_workload_fuses_fully(self, tiny_workload, meta_df):
        stacks = partition_stacks(tiny_workload, meta_df)
        assert len(stacks) == 1
        assert stacks[0].layer_names == ("L1", "L2", "L3")

    def test_capacity_rule_splits(self, meta_df):
        # ResNet18's late stages exceed the 1MB weight GB: they fall back
        # to single-layer stacks (the paper's CS2 observation).
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df)
        assert len(stacks) > 1
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        for stack in stacks:
            if len(stack.layers) > 1:
                assert stack.weight_bytes <= capacity

    def test_oversized_atomic_region_goes_per_layer(self, meta_df):
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df)
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        # s4 blocks carry ~4.7MB of weights > 1MB: their layers must be
        # single-layer stacks.
        s4_stacks = [s for s in stacks if any("s4b2" in n for n in s.layer_names)]
        assert all(len(s.layers) == 1 for s in s4_stacks)


class TestExplicitPartition:
    def test_explicit_partition(self, tiny_workload, meta_df):
        stacks = partition_stacks(
            tiny_workload, meta_df, explicit=(("L1", "L2"), ("L3",))
        )
        assert [s.layer_names for s in stacks] == [("L1", "L2"), ("L3",)]

    def test_explicit_must_cover(self, tiny_workload, meta_df):
        with pytest.raises(ValueError):
            partition_stacks(tiny_workload, meta_df, explicit=(("L1",),))

    def test_per_layer(self, tiny_workload, meta_df):
        stacks = partition_stacks(tiny_workload, meta_df, per_layer=True)
        assert [s.layer_names for s in stacks] == [("L1",), ("L2",), ("L3",)]


class TestExplicitContiguity:
    """Out-of-order or non-contiguous explicit stacks used to fail only
    lazily ("stack N has K sinks") or silently mis-tile; they must be
    rejected up front, naming the offending stack."""

    def test_out_of_order_stacks_rejected(self, tiny_workload, meta_df):
        with pytest.raises(ValueError, match="explicit stack 0"):
            partition_stacks(
                tiny_workload, meta_df, explicit=(("L3",), ("L1", "L2"))
            )

    def test_out_of_order_within_stack_rejected(self, tiny_workload, meta_df):
        with pytest.raises(ValueError, match="not contiguous"):
            partition_stacks(
                tiny_workload, meta_df, explicit=(("L2", "L1"), ("L3",))
            )

    def test_interleaved_stacks_name_the_offender(
        self, branchy_workload, meta_df
    ):
        # entry/c2 and c1/join interleave: stack 0 is not a schedule run.
        with pytest.raises(ValueError, match="explicit stack 0 .*'entry', 'c2'"):
            partition_stacks(
                branchy_workload,
                meta_df,
                explicit=(("entry", "c2"), ("c1", "join"), ("exit",)),
            )

    def test_coverage_still_checked_first(self, tiny_workload, meta_df):
        with pytest.raises(ValueError, match="cover every layer"):
            partition_stacks(
                tiny_workload, meta_df, explicit=(("L1", "L1"), ("L2", "L3"))
            )

    def test_valid_contiguous_partition_still_accepted(
        self, branchy_workload, meta_df
    ):
        stacks = partition_stacks(
            branchy_workload,
            meta_df,
            explicit=(("entry",), ("c1", "c2", "join"), ("exit",)),
        )
        assert [s.layer_names for s in stacks] == [
            ("entry",), ("c1", "c2", "join"), ("exit",)
        ]


class TestFuseCapChunking:
    """A branch-free segment longer than the fuse-depth cap splits into
    cap-sized chunks; only *capacity* overflow keeps the paper's
    per-layer fallback."""

    def test_depth_cap_chunks_instead_of_per_layer(self, meta_df):
        wl = resnet18()
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        stacks = partition_stacks(wl, meta_df, fuse_depth=2)
        assert all(len(s.layers) <= 2 for s in stacks)
        # The early residual blocks (3-4 layer segments, weights fit)
        # must now yield at least one multi-layer chunk, not explode.
        s1 = [s for s in stacks if any("s1b1" in n for n in s.layer_names)]
        assert any(len(s.layers) == 2 for s in s1)
        for s in stacks:
            assert s.weight_bytes <= capacity or len(s.layers) == 1

    def test_capacity_overflow_keeps_per_layer_rule(self, meta_df):
        # s4 blocks exceed the 1MB weight buffer: per-layer, even though
        # a 2-layer chunk would satisfy the depth cap.
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df, fuse_depth=2)
        s4 = [s for s in stacks if any("s4b2" in n for n in s.layer_names)]
        assert s4 and all(len(s.layers) == 1 for s in s4)

    def test_chunks_cover_segment_in_order_with_single_sinks(self, meta_df):
        wl = resnet18()
        stacks = partition_stacks(wl, meta_df, fuse_depth=3)
        flat = [n for s in stacks for n in s.layer_names]
        assert flat == [l.name for l in wl.topological_layers()]
        for s in stacks:
            s.sink  # raises if a chunk stranded two live outputs

    def test_diamond_chunk_shrinks_to_keep_single_sink(self, meta_df):
        """Parallel branches falling in one naive chunk must shrink it:
        a cap-2 slice [a, b] of a diamond holds two sinks, so the chunk
        shrinks to [a] and the rest becomes [b, join]."""
        from repro import WorkloadBuilder

        builder = WorkloadBuilder("diamond", channels=8, x=16, y=16)
        t = builder.input()
        entry = builder.conv("entry", t, k=8, f=3, pad=1)
        a = builder.conv("a", entry, k=8, f=3, pad=1)
        b = builder.conv("b", entry, k=8, f=3, pad=1)
        builder.add("join", a, b)
        wl = builder.build()

        stacks = partition_stacks(wl, meta_df, fuse_depth=2)
        assert all(len(s.layers) <= 2 for s in stacks)
        names = [s.layer_names for s in stacks]
        assert ("a", "b") not in names  # the two-sink slice was shrunk
        assert ("b", "join") in names
        for s in stacks:
            s.sink  # raises if a chunk stranded two live outputs
        flat = [n for s in stacks for n in s.layer_names]
        assert flat == [l.name for l in wl.topological_layers()]


class TestSegmentsLinearTimeEquivalence:
    """The O(n) running-max segmentation must reproduce the original
    O(n^2) rule exactly — checked across the whole workload zoo."""

    @pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
    def test_zoo_segmentation_identical(self, name):
        wl = get_workload(name)
        got = [
            [l.name for l in seg] for seg in branch_free_segments(wl)
        ]
        want = [
            [l.name for l in seg]
            for seg in quadratic_reference_segments(wl)
        ]
        assert got == want

    def test_synthetic_workloads_identical(self):
        for wl in (make_tiny_workload(), make_branchy_workload()):
            got = [[l.name for l in s] for s in branch_free_segments(wl)]
            want = [
                [l.name for l in s] for s in quadratic_reference_segments(wl)
            ]
            assert got == want


class TestPartitionInvariants:
    """Property suite for partition_stacks across the zoo: coverage,
    schedule order, explicit == auto replay, single sink per stack."""

    ZOO_DEPTHS = [(name, depth)
                  for name in sorted(WORKLOAD_FACTORIES)
                  for depth in (None, 1, 2, 4)]

    @pytest.mark.parametrize("name,depth", ZOO_DEPTHS)
    def test_every_layer_covered_once_in_schedule_order(
        self, name, depth, meta_df
    ):
        wl = get_workload(name)
        stacks = partition_stacks(wl, meta_df, fuse_depth=depth)
        flat = [n for s in stacks for n in s.layer_names]
        assert flat == [l.name for l in wl.topological_layers()]

    @pytest.mark.parametrize("name,depth", ZOO_DEPTHS)
    def test_single_sink_per_stack(self, name, depth, meta_df):
        wl = get_workload(name)
        for stack in partition_stacks(wl, meta_df, fuse_depth=depth):
            assert stack.sink.name == stack.layer_names[-1]

    @pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
    def test_explicit_replay_of_auto_rule_is_identical(self, name, meta_df):
        """Replaying the weights-fit rule's own partition explicitly
        must reproduce it stack for stack."""
        wl = get_workload(name)
        auto = partition_stacks(wl, meta_df)
        explicit = partition_stacks(
            wl, meta_df, explicit=tuple(s.layer_names for s in auto)
        )
        assert [s.layer_names for s in explicit] == [
            s.layer_names for s in auto
        ]
        assert [s.index for s in explicit] == [s.index for s in auto]

    @pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
    def test_stacks_respect_weight_capacity_or_are_single_layer(
        self, name, meta_df
    ):
        wl = get_workload(name)
        capacity = meta_df.top_weight_buffer().instance.size_bytes
        for stack in partition_stacks(wl, meta_df):
            assert len(stack.layers) == 1 or stack.weight_bytes <= capacity


class TestStack:
    def test_weight_bytes(self, tiny_workload, meta_df):
        stack = partition_stacks(tiny_workload, meta_df)[0]
        assert stack.weight_bytes == tiny_workload.total_weight_bytes

    def test_sink(self, tiny_workload, meta_df):
        stack = partition_stacks(tiny_workload, meta_df)[0]
        assert stack.sink.name == "L3"
