"""Behavioural tests of the depth-first tile back-calculation (step 2).

Key invariants:

* in cached modes the fresh (to-compute) regions of all tiles partition
  each layer's feature map exactly (no recompute, full coverage);
* in recompute modes they cover each feature map with overlaps;
* MAC counts order as fully-recompute >= H-cached >= fully-cached, with
  fully-cached equal to the workload's nominal MAC count;
* a single tile (LBL corner) behaves identically in all three modes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backcalc import backcalculate
from repro.core.stacks import partition_stacks
from repro.core.strategy import OverlapMode

from ..conftest import make_branchy_workload, make_strided_workload, make_tiny_workload

MODES = list(OverlapMode)


def make_stack(workload, accel):
    stacks = partition_stacks(workload, accel)
    assert len(stacks) == 1
    return stacks[0]


def tile_macs(tiling):
    return tiling.total_mac_count


class TestTileGrid:
    def test_grid_shape(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 16, 8)
        assert tiling.grid_cols == 3  # 48/16
        assert tiling.grid_rows == 4  # 32/8
        assert tiling.tile_count == 12

    def test_tile_clamped_to_feature_map(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 10_000, 10_000)
        assert tiling.tile_count == 1
        assert (tiling.tile_x, tiling.tile_y) == (48, 32)

    def test_counts_sum_to_tile_count(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        for mode in MODES:
            tiling = backcalculate(stack, mode, 7, 5)
            assert sum(t.count for t in tiling.tile_types) == tiling.tile_count

    def test_first_tile_type_unique(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 16, 8)
        firsts = [t for t in tiling.tile_types if t.is_first_tile]
        assert len(firsts) == 1
        assert firsts[0].count == 1


class TestMacInvariants:
    @pytest.mark.parametrize("tile", [(4, 4), (16, 8), (48, 32), (7, 5)])
    def test_fully_cached_matches_nominal_macs(self, tiny_workload, meta_df, tile):
        """Fully-cached never recomputes: total MACs == workload MACs."""
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, *tile)
        assert tile_macs(tiling) == tiny_workload.total_mac_count

    @pytest.mark.parametrize("tile", [(4, 4), (16, 8), (7, 5)])
    def test_mode_ordering(self, tiny_workload, meta_df, tile):
        """Fig. 13: recompute >= H-cached >= fully-cached MAC counts."""
        stack = make_stack(tiny_workload, meta_df)
        macs = [tile_macs(backcalculate(stack, m, *tile)) for m in MODES]
        assert macs[0] >= macs[1] >= macs[2]

    def test_single_tile_modes_identical(self, tiny_workload, meta_df):
        """Section II: with one tile there is no overlap, so the second
        axis has no impact (the LBL corner of Fig. 12)."""
        stack = make_stack(tiny_workload, meta_df)
        macs = {tile_macs(backcalculate(stack, m, 48, 32)) for m in MODES}
        assert len(macs) == 1

    def test_recompute_overhead_grows_for_small_tiles(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        small = tile_macs(backcalculate(stack, OverlapMode.FULLY_RECOMPUTE, 2, 2))
        large = tile_macs(backcalculate(stack, OverlapMode.FULLY_RECOMPUTE, 24, 16))
        assert small > large


class TestCoverage:
    @pytest.mark.parametrize("tile", [(5, 3), (16, 8), (48, 32)])
    def test_fully_cached_partitions_every_layer(self, tiny_workload, meta_df, tile):
        """Per layer, the fresh columns of consecutive tiles must abut and
        cover the full output width/height exactly once."""
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, *tile)
        for layer in stack.layers:
            area = 0
            for t in tiling.tile_types:
                g = next(g for g in t.geometry if g.layer.name == layer.name)
                area += g.compute_w * g.compute_h * t.count
            assert area == layer.ox * layer.oy

    @pytest.mark.parametrize("mode", MODES)
    def test_coverage_at_least_full(self, tiny_workload, meta_df, mode):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, mode, 9, 7)
        for layer in stack.layers:
            area = sum(
                g.compute_w * g.compute_h * t.count
                for t in tiling.tile_types
                for g in t.geometry
                if g.layer.name == layer.name
            )
            assert area >= layer.ox * layer.oy

    def test_strided_network_geometry(self, meta_df):
        """Stride-2 layers leave dead border pixels in their input feature
        map; the back-calculation skips computing them, so the reference
        is the single-tile (whole-map) evaluation, not the nominal MAC
        count."""
        wl = make_strided_workload()
        stack = make_stack(wl, meta_df)
        reference = tile_macs(
            backcalculate(stack, OverlapMode.FULLY_CACHED, 1 << 20, 1 << 20)
        )
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 4, 4)
        assert tile_macs(tiling) == reference
        assert reference <= wl.total_mac_count

    def test_branchy_network_geometry(self, meta_df):
        wl = make_branchy_workload()
        stack = make_stack(wl, meta_df)
        for mode in MODES:
            tiling = backcalculate(stack, mode, 8, 8)
            assert tile_macs(tiling) >= wl.total_mac_count
        cached = backcalculate(stack, OverlapMode.FULLY_CACHED, 8, 8)
        assert tile_macs(cached) == wl.total_mac_count

    @settings(max_examples=20, deadline=None)
    @given(
        tx=st.integers(min_value=1, max_value=48),
        ty=st.integers(min_value=1, max_value=32),
    )
    def test_fully_cached_macs_invariant_any_tile(self, tx, ty):
        from repro.hardware.zoo import meta_proto_like_df

        wl = make_tiny_workload()
        accel = meta_proto_like_df()
        stack = make_stack(wl, accel)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, tx, ty)
        assert tile_macs(tiling) == wl.total_mac_count


class TestCacheBookkeeping:
    def test_recompute_mode_has_no_cache(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_RECOMPUTE, 8, 8)
        for t in tiling.tile_types:
            assert t.h_cache_bytes == 0
            assert t.v_cache_line_bytes == 0

    def test_h_cached_mode_has_h_but_not_v(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.H_CACHED_V_RECOMPUTE, 8, 8)
        regime = [t for t in tiling.tile_types if t.col_index == 1]
        assert any(t.h_cache_bytes > 0 for t in regime)
        assert all(t.v_cache_line_bytes == 0 for t in tiling.tile_types)

    def test_fully_cached_has_v_lines(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 8, 8)
        assert any(t.v_cache_line_bytes > 0 for t in tiling.tile_types)

    def test_last_column_keeps_nothing_horizontally(self, tiny_workload, meta_df):
        stack = make_stack(tiny_workload, meta_df)
        tiling = backcalculate(stack, OverlapMode.FULLY_CACHED, 16, 8)
        last_col = tiling.grid_cols - 1
        for t in tiling.tile_types:
            if t.col_index == last_col:
                assert all(g.x.cache_keep == 0 for g in t.geometry)

    def test_input_fresh_shrinks_with_caching(self, tiny_workload, meta_df):
        """Cached modes fetch only the new part of the first layer's
        input window; recompute re-fetches the halo every tile."""
        stack = make_stack(tiny_workload, meta_df)
        rec = backcalculate(stack, OverlapMode.FULLY_RECOMPUTE, 8, 8)
        cac = backcalculate(stack, OverlapMode.FULLY_CACHED, 8, 8)

        def total_input_fetch(tiling):
            return sum(
                g.input_fresh_elems * t.count
                for t in tiling.tile_types
                for g in t.geometry
                if g.is_source
            )

        # In recompute mode input_fresh == the full window per tile.
        assert total_input_fetch(rec) > total_input_fetch(cac)
        src = tiny_workload.sources()[0]
        assert total_input_fetch(cac) == src.input_count
