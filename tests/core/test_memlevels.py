"""Unit tests for top-memory-level determination (step 3)."""


from repro.core.backcalc import backcalculate
from repro.core.memlevels import (
    MemLevelPolicy,
    plan_tile_memory,
    weight_resident_index,
)
from repro.core.stacks import partition_stacks
from repro.core.strategy import OverlapMode
from repro.workloads.builder import WorkloadBuilder


def big_channel_workload(x=64, y=64, k=32):
    """Channels sized so I+O do not fit a 64KB LB together at large tiles."""
    b = WorkloadBuilder("bigch", channels=k, x=x, y=y)
    t = b.input()
    t = b.conv("L1", t, k=k, f=3, pad=1)
    b.conv("L2", t, k=k, f=3, pad=1)
    return b.build()


def plan_for(workload, accel, mode, tx, ty, tile_index=0, policy=None):
    stack = partition_stacks(workload, accel)[0]
    tiling = backcalculate(stack, mode, tx, ty)
    tile = tiling.tile_types[tile_index]
    out_top = accel.top_level_index("O")
    return tile, plan_tile_memory(
        accel, tile, stack.weight_bytes, {}, out_top, policy=policy
    )


class TestWeightResidency:
    def test_small_weights_live_in_lb(self, meta_df):
        idx = weight_resident_index(meta_df, 10 * 1024)
        assert meta_df.hierarchy("W")[idx].name == "LB_W"

    def test_medium_weights_live_in_gb(self, meta_df):
        idx = weight_resident_index(meta_df, 200 * 1024)
        assert meta_df.hierarchy("W")[idx].name == "GB_W"

    def test_huge_weights_fall_to_dram(self, meta_df):
        idx = weight_resident_index(meta_df, 50 << 20)
        assert meta_df.hierarchy("W")[idx].instance.is_dram


class TestFirstTileWeights:
    def test_first_tile_streams_weights_from_dram(self, tiny_workload, meta_df):
        tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 16, 8, tile_index=0
        )
        assert tile.is_first_tile
        w_hier = meta_df.hierarchy("W")
        for tops in plan.layer_tops:
            assert w_hier[tops.tops["W"]].instance.is_dram

    def test_other_tiles_take_weights_from_resident_level(self, tiny_workload, meta_df):
        tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 16, 8, tile_index=1
        )
        assert not tile.is_first_tile
        w_hier = meta_df.hierarchy("W")
        for tops in plan.layer_tops:
            assert w_hier[tops.tops["W"]].name == "LB_W"


class TestActivationPriority:
    def test_small_tiles_keep_io_in_lb(self, tiny_workload, meta_df):
        tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 8, 8, tile_index=1
        )
        i_hier = meta_df.hierarchy("I")
        o_hier = meta_df.hierarchy("O")
        sink = tile.geometry[-1].layer.name
        for geom, tops in zip(tile.geometry, plan.layer_tops):
            assert i_hier[tops.tops["I"]].name == "LB_IO"
            if geom.layer.name != sink:  # the sink's output top is forced
                assert o_hier[tops.tops["O"]].name in ("LB_IO",)

    def test_io_contention_pushes_o_to_gb(self, meta_df):
        """Fig. 10: when I+O exceed the LB but I alone fits, I keeps the
        LB and O is pushed to the GB."""
        wl = big_channel_workload()
        tile, plan = plan_for(wl, meta_df, OverlapMode.FULLY_CACHED, 48, 24)
        tops = plan.layer_tops[0]
        geom = tile.geometry[0]
        assert geom.input_bytes <= 64 * 1024
        assert geom.input_bytes + geom.output_bytes > 64 * 1024
        assert meta_df.hierarchy("I")[tops.tops["I"]].name == "LB_IO"
        assert meta_df.hierarchy("O")[tops.tops["O"]].name == "GB_IO"

    def test_ranks_are_monotone_with_levels(self, tiny_workload, meta_df):
        _tile, plan = plan_for(tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 8, 8)
        for tops in plan.layer_tops:
            assert set(tops.ranks) == {"W", "I", "O"}


class TestCachePlacement:
    def test_cache_levels_assigned_in_cached_mode(self, tiny_workload, meta_df):
        tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 8, 8, tile_index=1
        )
        assert plan.cache_h_idx is not None or tile.h_cache_bytes == 0
        if plan.cache_h_idx is not None:
            assert plan.cache_level(meta_df, "h") is not None

    def test_no_cache_levels_in_recompute_mode(self, tiny_workload, meta_df):
        _tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_RECOMPUTE, 8, 8
        )
        assert plan.cache_h_idx is None
        assert plan.cache_v_idx is None


class TestSkipPolicy:
    def test_dram_only_skipping_disallows_lb_tops(self, tiny_workload, meta_df):
        """Fig. 18(b) baseline: activations may only top out at the
        highest on-chip level (GB) or DRAM."""
        policy = MemLevelPolicy(multi_level_skip=False)
        _tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 8, 8,
            tile_index=1, policy=policy,
        )
        i_hier = meta_df.hierarchy("I")
        for tops in plan.layer_tops:
            assert i_hier[tops.tops["I"]].name in ("GB_IO", "DRAM")

    def test_multi_level_skipping_uses_lb(self, tiny_workload, meta_df):
        _tile, plan = plan_for(
            tiny_workload, meta_df, OverlapMode.FULLY_CACHED, 8, 8, tile_index=1
        )
        i_hier = meta_df.hierarchy("I")
        names = {i_hier[t.tops["I"]].name for t in plan.layer_tops}
        assert "LB_IO" in names
