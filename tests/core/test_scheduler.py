"""Integration tests for the depth-first engine (steps 1-6 combined)."""

import pytest

from repro import DFStrategy, OverlapMode, StackBoundary
from repro.core.optimizer import evaluate_layer_by_layer, evaluate_single_layer

from ..conftest import make_tiny_workload


class TestEndToEnd:
    def test_result_structure(self, tiny_engine, tiny_workload):
        r = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        assert r.energy_pj > 0
        assert r.latency_cycles > 0
        assert len(r.stacks) == 1
        assert r.workload_name == "tiny"

    def test_mac_count_preserved(self, tiny_engine, tiny_workload):
        r = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        assert r.mac_count == pytest.approx(tiny_workload.total_mac_count)

    def test_recompute_mode_costs_more_macs(self, tiny_engine, tiny_workload):
        rec = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=8, tile_y=8, mode=OverlapMode.FULLY_RECOMPUTE)
        )
        cac = tiny_engine.evaluate(
            tiny_workload, DFStrategy(tile_x=8, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        assert rec.mac_count > cac.mac_count

    def test_single_tile_modes_agree(self, tiny_engine, tiny_workload):
        """LBL corner: all three modes collapse to the same schedule."""
        energies = set()
        for mode in OverlapMode:
            r = tiny_engine.evaluate(
                tiny_workload, DFStrategy(tile_x=48, tile_y=32, mode=mode)
            )
            energies.add(round(r.energy_pj, 3))
        assert len(energies) == 1

    def test_branchy_workload_runs(self, tiny_engine, branchy_workload):
        r = tiny_engine.evaluate(
            branchy_workload, DFStrategy(tile_x=8, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        )
        assert r.energy_pj > 0
        assert r.mac_count == pytest.approx(branchy_workload.total_mac_count)


class TestBaselines:
    def test_sl_uses_dram_boundaries(self, tiny_engine, tiny_workload):
        sl = evaluate_single_layer(tiny_engine, tiny_workload)
        assert sl.total.accesses(level_names=("DRAM",)) > 0
        assert len(sl.stacks) == len(tiny_workload)

    def test_lbl_no_worse_than_sl(self, tiny_engine, tiny_workload):
        sl = evaluate_single_layer(tiny_engine, tiny_workload)
        lbl = evaluate_layer_by_layer(tiny_engine, tiny_workload)
        assert lbl.energy_pj <= sl.energy_pj * 1.0001

    def test_lbl_keeps_small_fms_off_dram(self, tiny_engine, tiny_workload):
        """The tiny net's 6KB feature maps fit on-chip: LBL's DRAM traffic
        must be only the network input + final output + weights."""
        lbl = evaluate_layer_by_layer(tiny_engine, tiny_workload)
        src = tiny_workload.sources()[0]
        sink = tiny_workload.sinks()[0]
        ceiling = (
            src.input_count + sink.output_count + tiny_workload.total_weight_bytes
        ) * 1.1
        assert lbl.total.accesses(level_names=("DRAM",)) <= ceiling

    def test_df_beats_lbl_on_activation_dominant(self, tiny_engine):
        wl = make_tiny_workload(x=128, y=96)  # larger maps: DF should win
        lbl = evaluate_layer_by_layer(tiny_engine, wl)
        df = tiny_engine.evaluate(
            wl, DFStrategy(tile_x=16, tile_y=16, mode=OverlapMode.FULLY_CACHED)
        )
        assert df.energy_pj < lbl.energy_pj


class TestStackBoundaries:
    def test_dram_boundary_increases_dram_traffic(self, tiny_engine, tiny_workload):
        df_dram = tiny_engine.evaluate(
            tiny_workload,
            DFStrategy(
                tile_x=48, tile_y=32, mode=OverlapMode.FULLY_CACHED,
                stacks=(("L1",), ("L2",), ("L3",)),
                stack_boundary=StackBoundary.DRAM,
            ),
        )
        df_fit = tiny_engine.evaluate(
            tiny_workload,
            DFStrategy(
                tile_x=48, tile_y=32, mode=OverlapMode.FULLY_CACHED,
                stacks=(("L1",), ("L2",), ("L3",)),
                stack_boundary=StackBoundary.LOWEST_FIT,
            ),
        )
        assert df_dram.total.accesses(level_names=("DRAM",)) > (
            df_fit.total.accesses(level_names=("DRAM",))
        )

    def test_explicit_stacks_respected(self, tiny_engine, tiny_workload):
        r = tiny_engine.evaluate(
            tiny_workload,
            DFStrategy(
                tile_x=16, tile_y=16, mode=OverlapMode.FULLY_CACHED,
                stacks=(("L1", "L2"), ("L3",)),
            ),
        )
        assert [s.layer_names for s in r.stacks] == [("L1", "L2"), ("L3",)]

    def test_evaluate_stack_matches_full_eval(self, tiny_engine, tiny_workload):
        from repro.core.stacks import partition_stacks

        strategy = DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        full = tiny_engine.evaluate(tiny_workload, strategy)
        stack = partition_stacks(tiny_workload, tiny_engine.accel)[0]
        alone = tiny_engine.evaluate_stack(tiny_workload, strategy, stack)
        assert alone.total.energy_pj == pytest.approx(full.total.energy_pj)


class TestTileTypeAccounting:
    def test_tile_counts_multiply(self, tiny_engine, tiny_workload):
        strategy = DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED)
        r = tiny_engine.evaluate(tiny_workload, strategy)
        sr = r.stacks[0]
        manual = 0.0
        for tr in sr.tile_results:
            manual += tr.cost.energy_pj * tr.tile.count
        assert manual == pytest.approx(sr.total.energy_pj)
