"""Unit tests for schedule result containers and fuse-depth control."""

import pytest

from repro import DFStrategy, OverlapMode
from repro.core.stacks import partition_stacks

from ..conftest import make_tiny_workload


class TestScheduleResult:
    @pytest.fixture
    def result(self, tiny_engine, tiny_workload):
        return tiny_engine.evaluate(
            tiny_workload,
            DFStrategy(tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED),
        )

    def test_unit_conversions(self, result):
        assert result.energy_mj == pytest.approx(result.energy_pj / 1e9)
        assert result.edp == pytest.approx(
            result.energy_pj * result.latency_cycles
        )

    def test_traffic_by_category(self, result):
        cats = result.traffic_by_category()
        assert cats["I"] > 0 and cats["O"] > 0 and cats["W"] > 0
        assert sum(cats.values()) == pytest.approx(result.total.accesses())

    def test_dram_accesses(self, result):
        assert result.dram_accesses() == result.total.accesses(
            level_names=("DRAM",)
        )

    def test_describe_mentions_strategy(self, result):
        assert "fully_cached 16x8" in result.describe()

    def test_stack_result_tile_types(self, result):
        sr = result.stacks[0]
        assert sr.tile_type_count == len(sr.tile_results)
        assert sr.layer_names == ("L1", "L2", "L3")


class TestFuseDepth:
    def test_fuse_depth_caps_stack_size(self, meta_df):
        wl = make_tiny_workload()
        stacks = partition_stacks(wl, meta_df, fuse_depth=2)
        assert all(len(s.layers) <= 2 for s in stacks)
        assert len(stacks) == 2

    def test_fuse_depth_one_equals_per_layer(self, meta_df):
        wl = make_tiny_workload()
        capped = partition_stacks(wl, meta_df, fuse_depth=1)
        per_layer = partition_stacks(wl, meta_df, per_layer=True)
        assert [s.layer_names for s in capped] == [
            s.layer_names for s in per_layer
        ]

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            DFStrategy(tile_x=4, tile_y=4, fuse_depth=0)
        with pytest.raises(ValueError):
            DFStrategy(tile_x=4, tile_y=4, fuse_depth=2, stacks=(("L1",),))

    def test_engine_respects_fuse_depth(self, tiny_engine, tiny_workload):
        r = tiny_engine.evaluate(
            tiny_workload,
            DFStrategy(
                tile_x=16, tile_y=8, mode=OverlapMode.FULLY_CACHED, fuse_depth=2
            ),
        )
        assert len(r.stacks) == 2

    def test_shallower_fusion_changes_cost(self, tiny_engine):
        wl = make_tiny_workload(x=96, y=64)
        deep = tiny_engine.evaluate(
            wl, DFStrategy(tile_x=16, tile_y=16, mode=OverlapMode.FULLY_CACHED)
        )
        shallow = tiny_engine.evaluate(
            wl,
            DFStrategy(
                tile_x=16, tile_y=16, mode=OverlapMode.FULLY_CACHED, fuse_depth=1
            ),
        )
        assert shallow.energy_pj != deep.energy_pj
