"""Unit and property tests for interval geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import EMPTY, Interval, input_interval, tile_edges
from repro.workloads.layer import LayerSpec

intervals = st.builds(
    Interval,
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)


class TestInterval:
    def test_width_and_empty(self):
        assert Interval(2, 5).width == 3
        assert Interval(5, 2).width == 0
        assert Interval(5, 2).empty
        assert EMPTY.empty

    def test_clip(self):
        assert Interval(-3, 10).clip(0, 8) == Interval(0, 8)

    @given(intervals, intervals)
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        for iv in (a, b):
            if not iv.empty:
                assert h.lo <= iv.lo and h.hi >= iv.hi

    @given(intervals)
    def test_hull_with_empty_is_identity(self, a):
        assert a.hull(EMPTY) == a or a.empty

    @given(intervals, intervals)
    def test_intersect_within_both(self, a, b):
        i = a.intersect(b)
        if not i.empty:
            assert i.lo >= max(a.lo, b.lo)
            assert i.hi <= min(a.hi, b.hi)


class TestInputInterval:
    def conv(self, **kw):
        base = dict(k=1, c=1, ox=16, oy=16, fx=3, fy=3, px=1, py=1)
        base.update(kw)
        return LayerSpec(name="c", **base)

    def test_same_padding_center(self):
        # Interior span: needs halo of 1 on each side.
        iv = input_interval(self.conv(), Interval(4, 8), "x")
        assert iv == Interval(3, 9)

    def test_left_edge_clipped_by_padding(self):
        iv = input_interval(self.conv(), Interval(0, 4), "x")
        assert iv == Interval(0, 5)

    def test_right_edge_clipped(self):
        iv = input_interval(self.conv(), Interval(12, 16), "x")
        assert iv.hi == 16

    def test_stride_two(self):
        l = self.conv(sx=2, sy=2, px=0)
        iv = input_interval(l, Interval(2, 4), "x")
        assert iv == Interval(4, 9)

    def test_empty_in_empty_out(self):
        assert input_interval(self.conv(), EMPTY, "x").empty

    def test_full_output_needs_full_input(self):
        l = self.conv()
        iv = input_interval(l, Interval(0, 16), "x")
        assert iv == Interval(0, l.ix)

    def test_bad_axis_raises(self):
        with pytest.raises(ValueError):
            input_interval(self.conv(), Interval(0, 4), "z")


class TestTileEdges:
    def test_exact_division(self):
        edges = tile_edges(12, 4)
        assert edges == [Interval(0, 4), Interval(4, 8), Interval(8, 12)]

    def test_remainder(self):
        # The paper's 540 = 72*7 + 36 case.
        edges = tile_edges(540, 72)
        assert len(edges) == 8
        assert edges[-1].width == 36

    def test_tile_larger_than_total(self):
        assert tile_edges(10, 100) == [Interval(0, 10)]

    @given(
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=1, max_value=2000),
    )
    def test_partition_exact_no_overlap(self, total, tile):
        edges = tile_edges(total, tile)
        assert edges[0].lo == 0
        assert edges[-1].hi == total
        for a, b in zip(edges, edges[1:]):
            assert a.hi == b.lo
        assert sum(e.width for e in edges) == total

    def test_validation(self):
        with pytest.raises(ValueError):
            tile_edges(0, 4)
        with pytest.raises(ValueError):
            tile_edges(4, 0)
