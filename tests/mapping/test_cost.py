"""Unit tests for cost containers and objectives."""

import pytest

from repro.mapping.cost import CostResult, Traffic, resolve_objective


def make_cost():
    c = CostResult(mac_count=100, mac_energy_pj=10.0, compute_cycles=50, latency_cycles=60)
    c.traffic_entry("I", "LB").add(Traffic(reads_elems=10, writes_elems=2, energy_pj=5.0))
    c.traffic_entry("W", "DRAM").add(Traffic(reads_elems=4, writes_elems=0, energy_pj=20.0))
    return c


class TestTraffic:
    def test_add_scaled(self):
        t = Traffic()
        t.add(Traffic(1, 2, 3), scale=2.0)
        assert (t.reads_elems, t.writes_elems, t.energy_pj) == (2, 4, 6)

    def test_accesses(self):
        assert Traffic(3, 4, 0).accesses_elems == 7


class TestCostResult:
    def test_energy_composition(self):
        c = make_cost()
        assert c.memory_energy_pj == 25.0
        assert c.energy_pj == 35.0
        assert c.edp == 35.0 * 60

    def test_accesses_filters(self):
        c = make_cost()
        assert c.accesses() == 16
        assert c.accesses(categories=("W",)) == 4
        assert c.accesses(level_names=("DRAM",)) == 4
        assert c.accesses(categories=("I",), level_names=("DRAM",)) == 0

    def test_energy_filters(self):
        c = make_cost()
        assert c.energy_of(categories=("I",)) == 5.0
        assert c.energy_of(level_names=("DRAM",)) == 20.0

    def test_add_accumulates_and_scales(self):
        total = CostResult()
        total.add(make_cost(), scale=3.0)
        assert total.mac_count == 300
        assert total.latency_cycles == 180
        assert total.traffic[("I", "LB")].reads_elems == 30

    def test_copy_is_independent(self):
        c = make_cost()
        d = c.copy()
        d.traffic_entry("I", "LB").reads_elems += 100
        assert c.traffic[("I", "LB")].reads_elems == 10


class TestObjectives:
    def test_named_objectives(self):
        c = make_cost()
        assert resolve_objective("energy")(c) == c.energy_pj
        assert resolve_objective("latency")(c) == 60
        assert resolve_objective("edp")(c) == c.edp
        assert resolve_objective("dram_accesses")(c) == 4
        assert resolve_objective("activation_energy")(c) == 5.0

    def test_callable_passthrough(self):
        f = lambda c: 42.0
        assert resolve_objective(f) is f

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_objective("carbon")
