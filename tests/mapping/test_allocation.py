"""Unit tests for loop-order-based memory allocation."""

import pytest

from repro.hardware.accelerator import build_accelerator
from repro.hardware.memory import MemoryInstance, level
from repro.hardware.zoo import meta_proto_like_df
from repro.mapping.allocation import AllocationError, allocate
from repro.mapping.loops import lpf_decompose
from repro.mapping.temporal import temporal_sizes
from repro.workloads.layer import LayerSpec


def layer(**kw):
    base = dict(k=8, c=4, ox=16, oy=16, fx=3, fy=3, px=1, py=1)
    base.update(kw)
    return LayerSpec(name="t", **base)


def dram_tops(accel):
    return {op: accel.top_level_index(op) for op in ("W", "I", "O")}


@pytest.fixture(scope="module")
def accel():
    return meta_proto_like_df()


class TestBasics:
    def test_boundaries_monotone_and_complete(self, accel):
        l = layer()
        loops = lpf_decompose(temporal_sizes(l, accel))
        mapping = allocate(l, accel, dram_tops(accel), loops)
        for op, bounds in mapping.boundaries.items():
            assert list(bounds) == sorted(bounds)
            assert bounds[-1] == len(loops)
            assert len(bounds) == len(accel.hierarchy(op))

    def test_truncated_hierarchy_shortens_boundaries(self, accel):
        l = layer()
        loops = lpf_decompose(temporal_sizes(l, accel))
        tops = {"W": 1, "I": 0, "O": 1}
        mapping = allocate(l, accel, tops, loops)
        assert len(mapping.boundaries["W"]) == 2
        assert len(mapping.boundaries["I"]) == 1
        assert len(mapping.boundaries["O"]) == 2

    def test_weightless_layer_w_boundary_trivial(self, accel):
        from repro.workloads.layer import OpType

        pool = LayerSpec(
            name="p", op_type=OpType.POOL, k=8, c=1, ox=8, oy=8,
            fx=2, fy=2, sx=2, sy=2,
        )
        loops = lpf_decompose(temporal_sizes(pool, accel))
        mapping = allocate(pool, accel, dram_tops(accel), loops)
        assert mapping.boundaries["W"] == (len(loops),)

    def test_bad_top_raises(self, accel):
        l = layer()
        loops = lpf_decompose(temporal_sizes(l, accel))
        with pytest.raises(AllocationError):
            allocate(l, accel, {"W": 99, "I": 0, "O": 0}, loops)


class TestCapacity:
    def test_overflowing_top_raises(self, accel):
        # A 27 MB output cannot top out in the 64 KB LB.
        l = layer(k=56, c=56, ox=960, oy=540)
        loops = lpf_decompose(temporal_sizes(l, accel))
        tops = dram_tops(accel)
        tops["O"] = 1  # LB_IO
        with pytest.raises(AllocationError):
            allocate(l, accel, tops, loops)

    def test_shared_top_contention_raises(self):
        # I and O both pinned to a tiny shared LB cannot coexist.
        w_reg = MemoryInstance.register("W_reg", 64)
        lb = MemoryInstance.sram("LB_IO", 512)
        dram = MemoryInstance.dram()
        accel = build_accelerator(
            "tiny", {"K": 2},
            [level(w_reg, "W"), level(lb, "IO"), level(dram, "WIO")],
        )
        l = layer(k=4, c=2, ox=16, oy=16)
        loops = lpf_decompose(temporal_sizes(l, accel))
        with pytest.raises(AllocationError):
            allocate(l, accel, {"W": 1, "I": 0, "O": 0}, loops)

    def test_register_capacity_limits_prefix(self, accel):
        # W_reg holds one byte: the W level-0 prefix must keep the
        # per-PE weight footprint at a single element.
        l = layer()
        loops = [("FX", 3), ("FY", 3), ("C", 2), ("OX", 4)]
        mapping = allocate(l, accel, dram_tops(accel), loops)
        w0 = mapping.boundaries["W"][0]
        assert w0 == 0  # FX is W-relevant: even one loop overflows 1B
