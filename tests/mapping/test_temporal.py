"""Unit tests for temporal mapping footprints and stationarity."""

import pytest

from repro.hardware.zoo import meta_proto_like_df
from repro.mapping.temporal import (
    TemporalMapping,
    operand_footprint_elems,
    temporal_sizes,
    utilized_spatial,
)
from repro.workloads.layer import LayerSpec, OpType


def layer(**kw):
    base = dict(k=8, c=4, ox=16, oy=16, fx=3, fy=3, px=1, py=1)
    base.update(kw)
    return LayerSpec(name="t", **base)


class TestTemporalSizes:
    def test_divides_by_unroll(self):
        accel = meta_proto_like_df()  # K32 C2 OX4 OY4
        sizes = temporal_sizes(layer(k=64, c=4, ox=16, oy=16), accel)
        assert sizes == {"K": 2, "C": 2, "OX": 4, "OY": 4, "FX": 3, "FY": 3}

    def test_ceil_for_nondividing(self):
        accel = meta_proto_like_df()
        sizes = temporal_sizes(layer(k=12), accel)
        assert sizes["K"] == 1

    def test_utilized_spatial_clamped(self):
        accel = meta_proto_like_df()
        sp = utilized_spatial(layer(k=12, ox=2), accel)
        assert sp["K"] == 12
        assert sp["OX"] == 2


class TestFootprints:
    def test_weight_footprint(self):
        fp = operand_footprint_elems(layer(), "W", {"K": 2, "C": 4, "FX": 3, "FY": 3})
        assert fp == 2 * 4 * 9

    def test_weightless_layer(self):
        pool = LayerSpec(name="p", op_type=OpType.POOL, k=8, c=1, ox=8, oy=8, fx=2, fy=2, sx=2, sy=2)
        assert operand_footprint_elems(pool, "W", {"K": 8}) == 0

    def test_output_footprint(self):
        fp = operand_footprint_elems(layer(), "O", {"K": 2, "OX": 4, "OY": 2})
        assert fp == 16

    def test_input_sliding_window(self):
        # ox=4 with fx=3 stride 1 -> ix span 6 (halo reuse inside tile).
        fp = operand_footprint_elems(layer(), "I", {"C": 2, "OX": 4, "FX": 3})
        assert fp == 2 * 6 * 1

    def test_input_stride_two(self):
        fp = operand_footprint_elems(layer(sx=2, px=0), "I", {"OX": 4, "FX": 3})
        assert fp == (4 - 1) * 2 + 3

    def test_depthwise_input_uses_k(self):
        dw = LayerSpec(name="dw", op_type=OpType.DEPTHWISE, c=1, k=8, ox=8, oy=8, fx=3, fy=3, px=1, py=1)
        fp = operand_footprint_elems(
            dw, "I", {"K": 4, "OX": 2, "OY": 2, "FX": 3, "FY": 3}
        )
        assert fp == 4 * 4 * 4

    def test_clamped_to_layer_dims(self):
        # Products beyond the true dimension cannot inflate footprints.
        fp = operand_footprint_elems(layer(k=6), "O", {"K": 8, "OX": 4, "OY": 1})
        assert fp == 6 * 4

    def test_input_clamped_to_clip(self):
        l = layer(px=0, ix_clip=10)
        fp = operand_footprint_elems(l, "I", {"C": 1, "OX": 16, "FX": 3})
        assert fp == 10


class TestTemporalMapping:
    def test_validation_monotone(self):
        with pytest.raises(ValueError):
            TemporalMapping(
                loops=(("K", 2), ("C", 2)),
                boundaries={"W": (2, 1)},
            )

    def test_validation_top_covers_all(self):
        with pytest.raises(ValueError):
            TemporalMapping(loops=(("K", 2),), boundaries={"W": (0,)})

    def test_total_iterations(self):
        m = TemporalMapping(loops=(("K", 2), ("C", 3)), boundaries={"W": (2,)})
        assert m.total_iterations == 6

    def test_stationarity_credit_weight(self):
        # OX above the W boundary is W-irrelevant: full credit.
        m = TemporalMapping(
            loops=(("FX", 3), ("OX", 8), ("K", 2)),
            boundaries={"W": (1, 3), "I": (3,), "O": (3,)},
        )
        assert m.stationarity_credit(layer(), "W", 0) == 8

    def test_stationarity_credit_stops_at_relevant(self):
        m = TemporalMapping(
            loops=(("FX", 3), ("K", 2), ("OX", 8)),
            boundaries={"W": (1, 3), "I": (3,), "O": (3,)},
        )
        # K (relevant) sits directly above the boundary: no credit.
        assert m.stationarity_credit(layer(), "W", 0) == 1

    def test_output_credit_over_reduction_dims(self):
        m = TemporalMapping(
            loops=(("OX", 4), ("C", 2), ("FX", 3), ("K", 2)),
            boundaries={"W": (4,), "I": (4,), "O": (1, 4)},
        )
        # C and FX iterate above the psum: accumulation stays put.
        assert m.stationarity_credit(layer(), "O", 0) == 6

    def test_describe(self):
        m = TemporalMapping(loops=(("K", 2),), boundaries={"W": (1,)})
        assert m.describe() == "K2"
