"""Behavioural tests of the single-layer cost model.

These check the *physics* of the access-count model: conservation (every
element crosses at least once), stationarity credits, read-modify-write
psum accounting, spatial underutilization effects and bandwidth stalls.
"""

import pytest

from repro.hardware.accelerator import build_accelerator
from repro.hardware.memory import MemoryInstance, level
from repro.mapping.allocation import allocate
from repro.mapping.loops import lpf_decompose
from repro.mapping.temporal import temporal_sizes
from repro.mapping.zigzag import evaluate_mapping
from repro.workloads.layer import LayerSpec


def scalar_accel(lb_bytes=1 << 20, name="scalar"):
    """A 1-PE accelerator: no spatial effects, easy hand-counting."""
    lb = MemoryInstance.sram("LB_WIO", lb_bytes)
    dram = MemoryInstance.dram()
    return build_accelerator(name, {}, [level(lb, "WIO"), level(dram, "WIO")])


def layer(**kw):
    base = dict(k=4, c=2, ox=8, oy=8, fx=3, fy=3, px=0, py=0)
    base.update(kw)
    return LayerSpec(name="t", **base)


def evaluate(l, accel, loops=None, tops=None):
    tops = tops or {op: accel.top_level_index(op) for op in ("W", "I", "O")}
    loops = loops or lpf_decompose(temporal_sizes(l, accel), lpf_limit=8)
    mapping = allocate(l, accel, tops, loops)
    return evaluate_mapping(l, accel, tops, mapping)


class TestConservation:
    def test_dram_weight_reads_equal_footprint_when_fits(self):
        accel = scalar_accel()
        l = layer()
        cost = evaluate(l, accel)
        w_dram = cost.traffic[("W", "DRAM")]
        assert w_dram.reads_elems == pytest.approx(l.weight_count)

    def test_dram_output_writes_equal_footprint_when_fits(self):
        accel = scalar_accel()
        l = layer()
        cost = evaluate(l, accel)
        o_dram = cost.traffic[("O", "DRAM")]
        assert o_dram.writes_elems == pytest.approx(l.output_count)
        assert o_dram.reads_elems == pytest.approx(0.0)

    def test_dram_input_reads_equal_footprint_when_fits(self):
        accel = scalar_accel()
        l = layer()
        cost = evaluate(l, accel)
        i_dram = cost.traffic[("I", "DRAM")]
        assert i_dram.reads_elems == pytest.approx(l.input_count)

    def test_mac_count(self):
        accel = scalar_accel()
        l = layer()
        assert evaluate(l, accel).mac_count == l.mac_count

    def test_truncated_top_removes_dram_traffic(self):
        accel = scalar_accel()
        l = layer()
        cost = evaluate(l, accel, tops={"W": 0, "I": 0, "O": 0})
        assert not any(lvl == "DRAM" for (_op, lvl) in cost.traffic)


class TestRefetch:
    def test_small_buffer_forces_weight_refetch(self):
        # LB too small for all weights with a K-outer OX-outer loop order:
        # weights must be refetched from DRAM across OX iterations.
        accel = scalar_accel(lb_bytes=16)
        l = layer(k=8, c=8, ox=64, oy=1, fx=1, fy=1)
        loops = [("C", 8), ("K", 8), ("OX", 64)]  # OX outermost
        cost = evaluate(l, accel, loops=loops)
        w_dram = cost.traffic[("W", "DRAM")]
        assert w_dram.reads_elems > l.weight_count  # refetched

    def test_weight_stationary_order_avoids_refetch(self):
        accel = scalar_accel(lb_bytes=16)
        l = layer(k=8, c=8, ox=64, oy=1, fx=1, fy=1)
        loops = [("OX", 64), ("C", 8), ("K", 8)]  # OX innermost
        cost = evaluate(l, accel, loops=loops)
        w_dram = cost.traffic[("W", "DRAM")]
        # OX below the LB boundary: each weight crosses DRAM once.
        assert w_dram.reads_elems == pytest.approx(l.weight_count)


class TestOutputRmw:
    def test_psum_readback_when_reduction_above_boundary(self):
        # Tiny LB: K*OX psums do not fit, C iterates above -> psums
        # bounce to DRAM and back.
        accel = scalar_accel(lb_bytes=8)
        l = layer(k=4, c=16, ox=16, oy=1, fx=1, fy=1)
        loops = [("K", 4), ("OX", 16), ("C", 16)]
        cost = evaluate(l, accel, loops=loops)
        o_dram = cost.traffic[("O", "DRAM")]
        assert o_dram.writes_elems > l.output_count
        assert o_dram.reads_elems == pytest.approx(
            o_dram.writes_elems - l.output_count
        )

    def test_no_readback_when_reduction_inside(self):
        accel = scalar_accel()
        l = layer(k=4, c=16, ox=16, oy=1, fx=1, fy=1)
        loops = [("C", 16), ("K", 4), ("OX", 16)]
        cost = evaluate(l, accel, loops=loops)
        o_dram = cost.traffic[("O", "DRAM")]
        assert o_dram.reads_elems == pytest.approx(0.0)


class TestSpatialEffects:
    def make_spatial(self):
        w_reg = MemoryInstance.register("W_reg", 1)
        lb = MemoryInstance.sram("LB_WIO", 1 << 20)
        dram = MemoryInstance.dram()
        return build_accelerator(
            "spatial", {"K": 4, "OX": 2, "OY": 2},
            [level(w_reg, "W"), level(lb, "WIO"), level(dram, "WIO")],
        )

    def test_weight_lb_reads_scale_with_ox_underutilization(self):
        """Fig. 14(b): a (1,1) tile cannot broadcast weights over OX/OY,
        multiplying weight LB reads."""
        accel = self.make_spatial()
        big = layer(k=4, c=2, ox=8, oy=8, fx=1, fy=1)
        tiny = layer(k=4, c=2, ox=1, oy=1, fx=1, fy=1)
        r_big = evaluate(big, accel).traffic[("W", "LB_WIO")].reads_elems
        r_tiny = evaluate(tiny, accel).traffic[("W", "LB_WIO")].reads_elems
        per_mac_big = r_big / big.mac_count
        per_mac_tiny = r_tiny / tiny.mac_count
        assert per_mac_tiny == pytest.approx(per_mac_big * 4, rel=0.01)

    def test_compute_cycles_reflect_underutilization(self):
        accel = self.make_spatial()
        l = layer(k=1, c=2, ox=8, oy=8, fx=1, fy=1)  # 1 of 4 K lanes
        cost = evaluate(l, accel)
        ideal = l.mac_count / accel.pe_count
        assert cost.compute_cycles >= ideal * 3.9


class TestLatency:
    def test_dram_bandwidth_stall(self):
        # A wide array turning over lots of data at 8 B/cycle DRAM must be
        # bandwidth-limited, not compute-limited.
        w_reg = MemoryInstance.register("W_reg", 4)
        lb = MemoryInstance.sram("LB_WIO", 256)
        dram = MemoryInstance.dram()
        accel = build_accelerator(
            "wide", {"K": 16}, [level(w_reg, "W"), level(lb, "WIO"), level(dram, "WIO")]
        )
        l = layer(k=16, c=1, ox=256, oy=32, fx=1, fy=1)
        cost = evaluate(l, accel)
        assert cost.latency_cycles > cost.compute_cycles

    def test_compute_bound_when_data_tiny(self):
        accel = scalar_accel()
        l = layer(k=2, c=64, ox=2, oy=2, fx=3, fy=3)
        cost = evaluate(l, accel)
        assert cost.latency_cycles == pytest.approx(cost.compute_cycles)

    def test_energy_positive_and_composed(self):
        accel = scalar_accel()
        cost = evaluate(layer(), accel)
        assert cost.energy_pj > 0
        assert cost.energy_pj == pytest.approx(
            cost.mac_energy_pj + cost.memory_energy_pj
        )
