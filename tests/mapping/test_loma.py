"""Unit tests for the LOMA-style mapping search engine."""

import pytest

from repro.hardware.zoo import meta_proto_like_df
from repro.mapping.loma import MappingSearchEngine, SearchConfig
from repro.workloads.layer import LayerSpec


def layer(**kw):
    base = dict(k=16, c=8, ox=24, oy=24, fx=3, fy=3, px=1, py=1)
    base.update(kw)
    return LayerSpec(name="t", **base)


@pytest.fixture(scope="module")
def accel():
    return meta_proto_like_df()


class TestSearch:
    def test_finds_a_mapping(self, accel):
        engine = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=50))
        result = engine.search(layer(), accel)
        assert result.cost.energy_pj > 0
        assert result.evaluated > 0

    def test_larger_budget_never_worse(self, accel):
        small = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=10))
        big = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=400))
        l = layer()
        assert big.search(l, accel).cost.energy_pj <= (
            small.search(l, accel).cost.energy_pj * 1.0001
        )

    def test_search_beats_worst_canonical(self, accel):
        """The optimizer must do better than an adversarial ordering."""
        from repro.mapping.allocation import allocate
        from repro.mapping.loops import lpf_decompose
        from repro.mapping.temporal import temporal_sizes
        from repro.mapping.zigzag import evaluate_mapping

        engine = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=200))
        l = layer()
        best = engine.search(l, accel).cost.energy_pj
        tops = {op: accel.top_level_index(op) for op in ("W", "I", "O")}
        loops = lpf_decompose(temporal_sizes(l, accel), 5)
        worst = max(
            evaluate_mapping(l, accel, tops, allocate(l, accel, tops, ordering)).energy_pj
            for ordering in [tuple(loops), tuple(reversed(loops))]
        )
        assert best <= worst

    def test_latency_objective_changes_preference(self, accel):
        engine_e = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=100, objective="energy"))
        engine_l = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=100, objective="latency"))
        l = layer(k=64, c=32, ox=56, oy=56)
        r_e = engine_e.search(l, accel)
        r_l = engine_l.search(l, accel)
        assert r_l.cost.latency_cycles <= r_e.cost.latency_cycles * 1.0001


class TestCaching:
    def test_cache_hit_returns_same_object(self, accel):
        engine = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=50))
        a = engine.search(layer(), accel)
        before = engine.cache_size
        b = engine.search(layer(), accel)
        assert a is b
        assert engine.cache_size == before

    def test_different_tops_cached_separately(self, accel):
        engine = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=50))
        engine.search(layer(), accel)
        engine.search(layer(), accel, tops={"W": 1, "I": 0, "O": 1})
        assert engine.cache_size == 2

    def test_clear_cache(self, accel):
        engine = MappingSearchEngine(SearchConfig(lpf_limit=5, budget=50))
        engine.search(layer(), accel)
        engine.clear_cache()
        assert engine.cache_size == 0


class TestFixedMapping:
    def test_evaluate_fixed_ordering(self, accel):
        engine = MappingSearchEngine()
        ordering = [("FX", 3), ("FY", 3), ("C", 4), ("OX", 6), ("OY", 6), ("K", 1)]
        l = layer(k=1)
        result = engine.evaluate_fixed(l, accel, ordering)
        assert result.evaluated == 1
        assert result.cost.mac_count == l.mac_count
