"""Unit and property tests for loop prime factor machinery."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mapping.loops import (
    count_multiset_permutations,
    lpf_decompose,
    multiset_permutations,
    prime_factors,
    product,
)


class TestPrimeFactors:
    def test_one(self):
        assert prime_factors(1) == []

    def test_prime(self):
        assert prime_factors(97) == [97]

    def test_composite(self):
        assert prime_factors(360) == [2, 2, 2, 3, 3, 5]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            prime_factors(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, n):
        assert product(prime_factors(n)) == n

    @given(st.integers(min_value=2, max_value=100_000))
    def test_factors_are_prime(self, n):
        for f in prime_factors(n):
            assert f >= 2
            assert all(f % d for d in range(2, int(math.isqrt(f)) + 1))


class TestLpfDecompose:
    def test_drops_unit_dims(self):
        loops = lpf_decompose({"K": 1, "OX": 4})
        assert all(dim != "K" for dim, _ in loops)

    def test_respects_limit(self):
        loops = lpf_decompose({"OX": 960, "OY": 540}, lpf_limit=6)
        assert len(loops) <= 6

    @given(
        st.dictionaries(
            st.sampled_from(["K", "C", "OX", "OY"]),
            st.integers(min_value=1, max_value=4096),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=1, max_value=10),
    )
    def test_products_preserved(self, sizes, limit):
        """Merging LPFs must never change any dimension's trip count."""
        loops = lpf_decompose(sizes, lpf_limit=limit)
        for dim, size in sizes.items():
            got = product(f for d, f in loops if d == dim)
            assert got == size

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            lpf_decompose({"K": 4}, lpf_limit=0)


class TestMultisetPermutations:
    def test_empty(self):
        assert list(multiset_permutations([])) == [()]

    def test_distinct_items(self):
        perms = list(multiset_permutations([("A", 2), ("B", 3)]))
        assert len(perms) == 2

    def test_duplicates_not_repeated(self):
        items = [("A", 2), ("A", 2), ("B", 3)]
        perms = list(multiset_permutations(items))
        assert len(perms) == 3  # 3!/2!
        assert len(set(perms)) == 3

    @given(
        st.lists(
            st.tuples(st.sampled_from(["K", "C", "OX"]), st.sampled_from([2, 3])),
            min_size=0,
            max_size=6,
        )
    )
    def test_count_matches_formula(self, items):
        perms = list(multiset_permutations(items))
        assert len(perms) == count_multiset_permutations(items)
        assert len(set(perms)) == len(perms)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["K", "C"]), st.sampled_from([2, 3, 5])),
            min_size=1,
            max_size=5,
        )
    )
    def test_each_is_permutation(self, items):
        for perm in multiset_permutations(items):
            assert sorted(perm) == sorted(items)
