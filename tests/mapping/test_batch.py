"""Bit-identity property suite: batch engine vs. scalar reference.

The vectorized engine's contract is *exact* equality — same winning
mapping, same ``CostResult`` floats, same evaluated count, same error
messages — so every comparison here goes through the persistent cache
encoding (the byte-compatibility surface) rather than approximate
asserts.
"""

import itertools
import random

import pytest

from repro.hardware.zoo import ACCELERATOR_FACTORIES, get_accelerator
from repro.mapping import batch as batch_mod
from repro.mapping.allocation import AllocationError
from repro.mapping.batch import BatchFallback, evaluate_candidates
from repro.mapping.cache import encode_search_result
from repro.mapping.cost import OBJECTIVE_NAMES
from repro.mapping.loma import ENGINES, MappingSearchEngine, SearchConfig
from repro.workloads.layer import LayerSpec, OpType
from repro.workloads.zoo import get_workload


def search_both(layer, accel, tops=None, objective=None, **config):
    """Run one search problem on both engines; returns the two results
    (either may be an AllocationError message string)."""
    results = []
    for engine in ENGINES:
        searcher = MappingSearchEngine(SearchConfig(engine=engine, **config))
        try:
            results.append(searcher.search(layer, accel, tops, objective))
        except AllocationError as exc:
            results.append(str(exc))
    return results


def assert_identical(layer, accel, tops=None, objective=None, **config):
    batch, scalar = search_both(layer, accel, tops, objective, **config)
    if isinstance(batch, str) or isinstance(scalar, str):
        assert batch == scalar, f"{layer.name}: error mismatch"
        return batch
    # The cache encoding covers mapping loops, boundaries, every cost
    # field and the traffic table entry-by-entry.
    assert encode_search_result(batch) == encode_search_result(scalar), (
        f"{layer.name} on {accel.name}: encoded result differs"
    )
    assert batch.evaluated == scalar.evaluated
    # Insertion order of the traffic dict is part of byte-compatibility
    # (objective sums and JSON encoding both iterate it).
    assert list(batch.cost.traffic) == list(scalar.cost.traffic)
    return batch


# ----------------------------------------------------------------------
# Zoo sweep
# ----------------------------------------------------------------------
class TestZooParity:
    @pytest.mark.parametrize("accel_name", sorted(ACCELERATOR_FACTORIES))
    def test_accelerator_zoo(self, accel_name):
        accel = get_accelerator(accel_name)
        for workload_name in ("fsrcnn", "resnet18"):
            for layer in get_workload(workload_name).layers()[:2]:
                assert_identical(layer, accel, lpf_limit=5, budget=120)

    def test_workload_zoo(self):
        accel = get_accelerator("meta_proto_like_df")
        for workload_name in ("dmcnn_vd", "mccnn", "mobilenet_v1", "reference"):
            for layer in get_workload(workload_name).layers()[:3]:
                assert_identical(layer, accel, lpf_limit=5, budget=120)

    def test_all_tops_combinations(self):
        """Every hierarchy truncation, including the (many) infeasible
        ones — those must raise the same AllocationError message."""
        accel = get_accelerator("meta_proto_like_df")
        layer = get_workload("fsrcnn").layers()[1]
        ranges = [range(len(accel.hierarchy(op))) for op in ("W", "I", "O")]
        outcomes = [
            assert_identical(
                layer,
                accel,
                tops={"W": tw, "I": ti, "O": to},
                lpf_limit=5,
                budget=60,
            )
            for tw, ti, to in itertools.product(*ranges)
        ]
        # the sweep must exercise both feasible and infeasible problems
        assert any(isinstance(o, str) for o in outcomes)
        assert any(not isinstance(o, str) for o in outcomes)

    @pytest.mark.parametrize("objective", OBJECTIVE_NAMES)
    def test_named_objectives(self, objective):
        accel = get_accelerator("edge_tpu_like")
        layer = get_workload("fsrcnn").layers()[0]
        assert_identical(
            layer, accel, objective=objective, lpf_limit=5, budget=120
        )

    def test_callable_objective(self):
        accel = get_accelerator("meta_proto_like_df")
        layer = get_workload("fsrcnn").layers()[0]
        assert_identical(
            layer,
            accel,
            objective=lambda c: c.latency_cycles + 0.25 * c.energy_pj,
            lpf_limit=5,
            budget=80,
        )


# ----------------------------------------------------------------------
# Randomized layer shapes
# ----------------------------------------------------------------------
def random_layer(rng: random.Random, index: int) -> LayerSpec:
    op_type = rng.choice(
        [OpType.CONV, OpType.CONV, OpType.DEPTHWISE, OpType.POOL, OpType.ADD, OpType.FC]
    )
    fx, fy = rng.choice([1, 2, 3, 5]), rng.choice([1, 3, 7])
    ox, oy = rng.randint(1, 56), rng.randint(1, 56)
    kw = dict(
        name=f"rand{index}",
        op_type=op_type,
        k=rng.choice([1, 3, 8, 24, 64]),
        c=1 if op_type is OpType.DEPTHWISE else rng.choice([1, 5, 16, 48]),
        ox=ox,
        oy=oy,
        fx=fx,
        fy=fy,
        sx=rng.choice([1, 2, 3]),
        sy=rng.choice([1, 2, 5]),
        dx=rng.choice([1, 1, 2]),
        dy=rng.choice([1, 1, 3]),
        px=rng.choice([0, 1]),
        py=rng.choice([0, 2]),
        act_bits=rng.choice([4, 8, 16]),
        w_bits=rng.choice([4, 8]),
        psum_bits=rng.choice([16, 24, 32]),
    )
    if op_type in (OpType.POOL, OpType.ADD):
        kw["c"] = 1
    layer = LayerSpec(**kw)
    if rng.random() < 0.3:  # clipped input windows (tile-border layers)
        kw["ix_clip"] = max(1, layer.ix - rng.randint(1, 3))
        kw["iy_clip"] = max(1, layer.iy - rng.randint(1, 3))
        layer = LayerSpec(**kw)
    return layer


class TestRandomizedParity:
    SEED = 20230423  # fixed: failures must reproduce

    @pytest.mark.parametrize("accel_name", ["meta_proto_like_df", "tpu_like"])
    def test_random_shapes(self, accel_name):
        rng = random.Random(self.SEED)
        accel = get_accelerator(accel_name)
        for index in range(25):
            layer = random_layer(rng, index)
            assert_identical(layer, accel, lpf_limit=5, budget=80)

    def test_random_shapes_with_truncated_tops(self):
        rng = random.Random(self.SEED + 1)
        accel = get_accelerator("meta_proto_like_df")
        for index in range(15):
            layer = random_layer(rng, index)
            tops = {
                op: rng.randrange(len(accel.hierarchy(op)))
                for op in ("W", "I", "O")
            }
            assert_identical(layer, accel, tops=tops, lpf_limit=5, budget=60)


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngineKnob:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown search engine"):
            SearchConfig(engine="vectorized")

    def test_engine_not_in_cache_token(self):
        """Caches written by one engine must be valid for the other."""
        assert (
            SearchConfig(engine="batch").cache_token()
            == SearchConfig(engine="scalar").cache_token()
        )

    def test_all_infeasible_raises_same_message(self):
        accel = get_accelerator("meta_proto_like_df")
        layer = LayerSpec(name="huge", k=512, c=512, ox=64, oy=64, fx=3, fy=3)
        tops = {"W": 0, "I": 0, "O": 0}  # nothing fits in the registers
        batch, scalar = search_both(layer, accel, tops, lpf_limit=5, budget=40)
        assert isinstance(batch, str) and isinstance(scalar, str)
        assert batch == scalar
        assert "no feasible mapping" in batch

    def test_batch_fallback_routes_to_scalar(self, monkeypatch):
        """A BatchFallback inside the vectorized path must silently rerun
        the search on the scalar reference, not surface to the caller."""
        from repro.mapping import loma as loma_mod

        def boom(*args, **kwargs):
            raise BatchFallback("forced")

        monkeypatch.setattr(loma_mod, "evaluate_candidates", boom)
        accel = get_accelerator("meta_proto_like_df")
        layer = get_workload("fsrcnn").layers()[0]
        via_fallback = MappingSearchEngine(
            SearchConfig(engine="batch", lpf_limit=5, budget=60)
        ).search(layer, accel)
        monkeypatch.undo()
        scalar = MappingSearchEngine(
            SearchConfig(engine="scalar", lpf_limit=5, budget=60)
        ).search(layer, accel)
        assert encode_search_result(via_fallback) == encode_search_result(scalar)

    def test_overflow_guard_raises_fallback(self):
        """Loop volumes beyond 2**53 cannot be reproduced exactly in
        float64, so the batch evaluator must refuse them."""
        accel = get_accelerator("meta_proto_like_df")
        layer = LayerSpec(name="t", k=4, c=4, ox=4, oy=4)
        tops = {op: accel.top_level_index(op) for op in ("W", "I", "O")}
        huge = ((("K", 1 << 30), ("C", 1 << 30)),)
        with pytest.raises(BatchFallback):
            evaluate_candidates(layer, accel, tops, huge)

    def test_missing_numpy_names_scalar_fallback(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "np", None)
        accel = get_accelerator("meta_proto_like_df")
        layer = get_workload("fsrcnn").layers()[0]
        engine = MappingSearchEngine(SearchConfig(engine="batch", budget=20))
        with pytest.raises(RuntimeError, match=r'engine="scalar"'):
            engine.search(layer, accel)

    def test_scorers_cover_every_named_objective(self):
        """A new named objective in cost.py silently falls back to the
        per-candidate path; keep the fast scorer table in sync."""
        assert set(batch_mod._SCORERS) == set(OBJECTIVE_NAMES)

    def test_evaluate_fixed_unchanged_by_engine(self):
        """evaluate_fixed stays on the scalar reference path."""
        from repro.mapping.loops import lpf_decompose
        from repro.mapping.temporal import temporal_sizes

        accel = get_accelerator("meta_proto_like_df")
        layer = get_workload("fsrcnn").layers()[0]
        ordering = lpf_decompose(temporal_sizes(layer, accel), 5)
        a = MappingSearchEngine(SearchConfig(engine="batch")).evaluate_fixed(
            layer, accel, ordering
        )
        b = MappingSearchEngine(SearchConfig(engine="scalar")).evaluate_fixed(
            layer, accel, ordering
        )
        assert encode_search_result(a) == encode_search_result(b)
