"""Runner semantics: baseline reconciliation, CHK001, report rendering."""

from __future__ import annotations

import pytest

from repro.check.findings import Baseline, BaselineEntry, Finding
from repro.check.registry import all_rules, get_rule
from repro.check.runner import render_report, run_checks

from .conftest import fixture_source


def _bless(report, justification="deliberate, see DESIGN.md"):
    return Baseline(
        entries=[
            BaselineEntry(
                code=finding.code,
                file=finding.file,
                message=finding.message,
                justification=justification,
            )
            for finding in report.new
        ]
    )


def test_unparseable_file_fails_the_run(tree):
    root = tree(
        {"src/repro/mapping/broken.py": fixture_source("chk001_trigger.py")}
    )
    report = run_checks(root)
    assert len(report.broken) == 1
    assert report.broken[0].code == "CHK001"
    assert report.failed()
    assert "does not parse" in report.broken[0].message


def test_blessed_findings_pass(tree):
    files = {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    root = tree(files)
    first = run_checks(root)
    assert first.failed()
    baseline = _bless(first)
    second = run_checks(root, baseline=baseline)
    assert second.new == []
    assert len(second.blessed) == len(first.new)
    assert not second.failed()
    assert not second.failed(strict=True)


def test_baseline_matching_ignores_line_numbers(tree):
    files = {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    root = tree(files)
    baseline = _bless(run_checks(root))
    # Shift every finding down two lines; the blessing must survive.
    shifted = "# shifted\n# shifted\n" + files["src/repro/mapping/mod.py"]
    (root / "src/repro/mapping/mod.py").write_text(shifted)
    report = run_checks(root, baseline=baseline)
    assert report.new == []
    assert not report.failed(strict=True)


def test_unjustified_entries_fail_only_strict(tree):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    )
    baseline = _bless(run_checks(root), justification="   ")
    report = run_checks(root, baseline=baseline)
    assert report.new == []
    assert report.unjustified
    assert not report.failed()
    assert report.failed(strict=True)


def test_stale_entries_fail_only_strict(tree):
    root = tree({"src/repro/mapping/mod.py": "x = 1\n"})
    baseline = Baseline(
        entries=[
            BaselineEntry(
                code="DET001",
                file="src/repro/mapping/mod.py",
                message="long gone",
                justification="was deliberate once",
            )
        ]
    )
    report = run_checks(root, baseline=baseline)
    assert report.stale == baseline.entries
    assert not report.failed()
    assert report.failed(strict=True)


def test_rule_subset_runs_only_those_rules(tree):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det002_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("DET001")])
    assert report.new == []
    assert report.rules_run == 1


def test_every_rule_code_is_registered():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    expected = {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "RACE001",
        "RACE002",
        "RACE003",
        "CACHE001",
        "CACHE002",
        "DOC001",
        "DOC002",
    }
    assert expected <= set(codes)


def test_render_report_verdict_and_findings(tree):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    )
    report = run_checks(root)
    text = render_report(report)
    assert "repro check: FAILED" in text
    for finding in report.new:
        assert finding.render() in text

    blessed = run_checks(root, baseline=_bless(report))
    ok_text = render_report(blessed, verbose=True)
    assert "repro check: ok" in ok_text
    assert "blessed findings" in ok_text
    assert "deliberate, see DESIGN.md" in ok_text


def test_finding_render_and_ordering():
    finding = Finding(
        file="src/x.py", line=3, code="DET001", message="boom"
    )
    assert finding.render() == "src/x.py:3: DET001 boom"
    earlier = Finding(file="src/a.py", line=9, code="DET001", message="m")
    assert sorted([finding, earlier])[0] is earlier


def test_baseline_rejects_unknown_format(tmp_path):
    target = tmp_path / "check_baseline.json"
    target.write_text('{"format": 99, "entries": []}')
    with pytest.raises(ValueError):
        Baseline.load(target)
    assert Baseline.load(tmp_path / "missing.json").entries == []
