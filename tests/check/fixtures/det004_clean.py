"""DET004 near-miss: sets are sorted before iteration, or never iterated."""


def walk():
    out = []
    for item in sorted({"a", "b", "c"}):
        out.append(item)
    return out


def materialize(values):
    return sorted(set(values))


def membership(x):
    return x in {1, 2, 3}
