"""CACHE002 trigger (place at src/repro/dse/space.py): a stale
NON_SEMANTIC entry naming no current field."""

from dataclasses import dataclass


@dataclass
class DesignSpace:
    budget: int = 100

    NON_SEMANTIC = frozenset({"ghost"})

    def to_json(self):
        return {"budget": self.budget}
