"""RACE002 near-miss: every mutable shared attribute is annotated, a
lock, or a thread-safe primitive (place at src/repro/mapping/cache.py)."""

import threading


class MappingCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._entries = {}  # guarded-by: <owner>
        self.hits = 0  # guarded-by: <owner>

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def reset(self):
        self._ready.clear()
        self._entries.clear()
