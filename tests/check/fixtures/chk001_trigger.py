"""CHK001 trigger: this file deliberately does not parse."""

def broken(:
    pass
