"""RACE003 trigger: a non-reentrant Lock re-acquired through a
same-class method call while already held."""

import threading


class Reentry:
    def __init__(self):
        self._a = threading.Lock()

    def outer(self):
        with self._a:
            self.inner()

    def inner(self):
        with self._a:
            pass
