"""DET001 trigger: wall-clock reads in a determinism-scoped package."""

import time
from datetime import datetime


def stamp():
    return time.time()


def today():
    return datetime.now()
