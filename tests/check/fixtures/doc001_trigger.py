"""DOC001 trigger: reads an env var the README never mentions."""

import os


def secret():
    return os.environ.get("REPRO_SECRET_KNOB")
