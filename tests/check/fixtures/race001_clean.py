"""RACE001 near-miss: every guarded mutation holds its lock; <owner>
state is exempt from the lexical check."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock
        self.frames = 0  # guarded-by: <owner>

    def bump(self):
        with self._lock:
            self.count += 1

    def record(self, event):
        with self._lock:
            self.events.append(event)

    def tick(self):
        # Owner-thread state: mutated without a lock by design.
        self.frames += 1
