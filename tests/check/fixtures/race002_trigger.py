"""RACE002 trigger: a required-guarded class (place this file at
src/repro/mapping/cache.py) with unannotated mutable shared state."""


class MappingCache:
    def __init__(self):
        self._entries = {}
        self.hits = 0

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def put(self, key, value):
        self._entries[key] = value
