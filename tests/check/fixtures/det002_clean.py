"""DET002 near-miss: all randomness flows through seeded instances."""

import random

import numpy as np


def jitter(seed):
    rng = random.Random(seed)
    return rng.random()


def noise(seed):
    gen = np.random.default_rng(seed)
    return gen.normal(size=3)
