"""DET003 trigger: RNG instances constructed without a seed."""

import random

import numpy as np


def make_rngs():
    rng = random.Random()
    gen = np.random.default_rng()
    return rng, gen
