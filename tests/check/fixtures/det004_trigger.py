"""DET004 trigger: iteration over unordered set expressions."""


def walk():
    out = []
    for item in {"a", "b", "c"}:
        out.append(item)
    return out


def materialize(values):
    return list(set(values))


def comprehend():
    return [x for x in {1, 2, 3}]
