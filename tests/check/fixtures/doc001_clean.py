"""DOC001 near-miss: the env var it reads is in the README."""

import os


def documented():
    return os.environ.get("REPRO_DOCUMENTED_KNOB")
