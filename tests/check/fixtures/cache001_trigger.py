"""CACHE001 trigger (place at src/repro/dse/space.py): a field outside
the token, and a contract class with no token method at all."""

from dataclasses import dataclass


@dataclass(frozen=True)
class DesignPoint:
    tile_x: int = 1
    comment: str = ""

    def to_json(self):
        return {"tile_x": self.tile_x}


@dataclass
class DesignSpace:
    budget: int = 100
