"""DOC002 trigger: registers a long option the README never mentions."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--mystery-knob", help="undocumented")
    return parser
