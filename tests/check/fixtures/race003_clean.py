"""RACE003 near-miss: a consistent acquisition order everywhere, and
reentry on an RLock (reentrant by construction)."""

import threading


class Ordered:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._r = threading.RLock()

    def first(self):
        with self._a:
            with self._b:
                pass

    def second(self):
        with self._a:
            with self._b:
                pass

    def outer(self):
        with self._r:
            self.inner()

    def inner(self):
        with self._r:
            pass
