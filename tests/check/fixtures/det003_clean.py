"""DET003 near-miss: every RNG instance gets an explicit seed."""

import random

import numpy as np


def make_rngs(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng, gen
