"""RACE001 trigger: guarded attributes mutated outside their lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock

    def bump(self):
        self.count += 1

    def record(self, event):
        self.events.append(event)
