"""CACHE001/002 near-miss (place at src/repro/dse/space.py): every
field is in the token or allowlisted, and the allowlist is fresh."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class DesignPoint:
    tile_x: int = 1
    comment: str = ""
    _scratch: int = 0

    NON_SEMANTIC = frozenset({"comment"})
    FORMAT: ClassVar[int] = 1

    def to_json(self):
        return {"tile_x": self.tile_x}


@dataclass
class DesignSpace:
    budget: int = 100

    def to_json(self):
        return {"budget": self.budget}
