"""DET001 near-miss: monotonic durations are telemetry, not results."""

import time


def timed(fn):
    start = time.monotonic()
    result = fn()
    return result, time.monotonic() - start


def precise(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
