"""DOC002 near-miss: the long option is documented; short options are
out of scope."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--documented-flag", help="in the README")
    parser.add_argument("-q", action="store_true", help="short-only")
    return parser
