"""RACE003 trigger: two methods acquire the same locks in opposite
orders — the classic AB/BA deadlock."""

import threading


class Inverted:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            with self._a:
                pass
