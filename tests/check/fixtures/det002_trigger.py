"""DET002 trigger: draws from the process-global RNG state."""

import random

import numpy as np


def jitter():
    return random.random()


def shuffle(items):
    random.shuffle(items)
    return items


def noise():
    return np.random.rand(3)
