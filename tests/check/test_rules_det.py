"""DET0xx determinism lints: trigger and near-miss fixtures."""

from __future__ import annotations

import pytest

from repro.check.registry import get_rule
from repro.check.runner import run_checks

from .conftest import fixture_source

DET_CODES = ("DET001", "DET002", "DET003", "DET004")


@pytest.mark.parametrize("code", DET_CODES)
def test_trigger_fires(tree, code):
    root = tree(
        {
            "src/repro/mapping/mod.py": fixture_source(
                f"{code.lower()}_trigger.py"
            )
        }
    )
    report = run_checks(root, rules=[get_rule(code)])
    assert report.new, f"{code} trigger fixture produced no findings"
    assert all(finding.code == code for finding in report.new)


@pytest.mark.parametrize("code", DET_CODES)
def test_near_miss_is_clean(tree, code):
    root = tree(
        {
            "src/repro/mapping/mod.py": fixture_source(
                f"{code.lower()}_clean.py"
            )
        }
    )
    report = run_checks(root, rules=[get_rule(code)])
    assert report.new == []


@pytest.mark.parametrize("code", DET_CODES)
def test_rules_only_police_determinism_dirs(tree, code):
    """The same trigger outside mapping/dse/explore is out of scope."""
    root = tree(
        {
            "src/repro/serve/mod.py": fixture_source(
                f"{code.lower()}_trigger.py"
            )
        }
    )
    report = run_checks(root, rules=[get_rule(code)])
    assert report.new == []


def test_det001_names_the_call(tree):
    root = tree(
        {"src/repro/dse/mod.py": fixture_source("det001_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("DET001")])
    messages = " ".join(finding.message for finding in report.new)
    assert "time.time" in messages
    assert "datetime.now" in messages


def test_det002_counts_every_draw(tree):
    root = tree(
        {"src/repro/explore/mod.py": fixture_source("det002_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("DET002")])
    # random.random, random.shuffle, np.random.rand
    assert len(report.new) == 3


def test_det004_flags_each_iteration_site(tree):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det004_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("DET004")])
    # for-loop over a set literal, list(set(...)), set-driven listcomp
    assert len(report.new) == 3
    assert len({finding.line for finding in report.new}) == 3
