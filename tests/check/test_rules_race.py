"""RACE0xx guarded-by analysis: trigger and near-miss fixtures."""

from __future__ import annotations

from repro.check.registry import get_rule
from repro.check.runner import run_checks

from .conftest import fixture_source


def _run(tree, files, code):
    return run_checks(tree(files), rules=[get_rule(code)])


def test_race001_trigger(tree):
    report = _run(
        tree,
        {"src/repro/serve/counter.py": fixture_source("race001_trigger.py")},
        "RACE001",
    )
    assert len(report.new) == 2
    messages = " ".join(finding.message for finding in report.new)
    assert "bump()" in messages and "record()" in messages
    assert "Counter.count" in messages and "Counter.events" in messages


def test_race001_clean(tree):
    report = _run(
        tree,
        {"src/repro/serve/counter.py": fixture_source("race001_clean.py")},
        "RACE001",
    )
    assert report.new == []


def test_race002_trigger_in_required_class(tree):
    report = _run(
        tree,
        {"src/repro/mapping/cache.py": fixture_source("race002_trigger.py")},
        "RACE002",
    )
    attrs = {finding.message.split()[3] for finding in report.new}
    assert attrs == {"MappingCache._entries", "MappingCache.hits"}


def test_race002_clean(tree):
    report = _run(
        tree,
        {"src/repro/mapping/cache.py": fixture_source("race002_clean.py")},
        "RACE002",
    )
    assert report.new == []


def test_race002_ignores_unlisted_classes(tree):
    """The same unannotated class outside the required (file, class)
    list is out of scope."""
    report = _run(
        tree,
        {"src/repro/mapping/other.py": fixture_source("race002_trigger.py")},
        "RACE002",
    )
    assert report.new == []


def test_race003_order_inversion(tree):
    report = _run(
        tree,
        {"src/repro/serve/locks.py": fixture_source("race003_trigger.py")},
        "RACE003",
    )
    # The AB/BA cycle is reported once, not once per direction.
    assert len(report.new) == 1
    assert "lock-order inversion" in report.new[0].message


def test_race003_reacquire_through_method_call(tree):
    report = _run(
        tree,
        {
            "src/repro/serve/locks.py": fixture_source(
                "race003_reentry_trigger.py"
            )
        },
        "RACE003",
    )
    assert len(report.new) == 1
    assert "not reentrant" in report.new[0].message


def test_race003_clean(tree):
    """Consistent order and RLock reentry raise nothing."""
    report = _run(
        tree,
        {"src/repro/serve/locks.py": fixture_source("race003_clean.py")},
        "RACE003",
    )
    assert report.new == []
