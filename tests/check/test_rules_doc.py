"""DOC0xx documentation-drift checks: trigger and near-miss fixtures."""

from __future__ import annotations

from repro.check.registry import get_rule
from repro.check.runner import run_checks

from .conftest import fixture_source


def test_doc001_undocumented_env_var(tree):
    root = tree({"src/repro/util.py": fixture_source("doc001_trigger.py")})
    report = run_checks(root, rules=[get_rule("DOC001")])
    assert len(report.new) == 1
    assert "REPRO_SECRET_KNOB" in report.new[0].message


def test_doc001_documented_env_var(tree):
    root = tree(
        {"src/repro/util.py": fixture_source("doc001_clean.py")},
        readme="Set REPRO_DOCUMENTED_KNOB to tune it.\n",
    )
    report = run_checks(root, rules=[get_rule("DOC001")])
    assert report.new == []


def test_doc001_mentioning_the_var_fixes_the_finding(tree):
    root = tree(
        {"src/repro/util.py": fixture_source("doc001_trigger.py")},
        readme="| REPRO_SECRET_KNOB | does a thing |\n",
    )
    report = run_checks(root, rules=[get_rule("DOC001")])
    assert report.new == []


def test_doc001_reports_each_var_once(tree):
    source = fixture_source("doc001_trigger.py")
    root = tree(
        {"src/repro/a.py": source, "src/repro/b.py": source}
    )
    report = run_checks(root, rules=[get_rule("DOC001")])
    assert len(report.new) == 1


def test_doc002_undocumented_flag(tree):
    root = tree({"src/repro/cli.py": fixture_source("doc002_trigger.py")})
    report = run_checks(root, rules=[get_rule("DOC002")])
    assert len(report.new) == 1
    assert "--mystery-knob" in report.new[0].message


def test_doc002_documented_and_short_flags(tree):
    root = tree(
        {"src/repro/cli.py": fixture_source("doc002_clean.py")},
        readme="Use `--documented-flag` for the thing.\n",
    )
    report = run_checks(root, rules=[get_rule("DOC002")])
    assert report.new == []


def test_doc002_ignores_benchmarks(tree):
    """Only src/ parsers are held to the README; benchmark helpers are
    not operator-facing."""
    root = tree(
        {"benchmarks/bench_x.py": fixture_source("doc002_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("DOC002")])
    assert report.new == []
