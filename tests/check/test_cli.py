"""The ``repro check`` CLI family: exit codes and the baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.check.cli import run_check
from repro.cli import main

from .conftest import fixture_source

CLEAN = {"src/repro/mapping/mod.py": "x = 1\n"}
DIRTY = {"src/repro/mapping/mod.py": None}  # filled per test


def _argv(root, *extra):
    return ["run", "--root", str(root), *extra]


def test_run_clean_tree_exits_zero(tree, capsys):
    root = tree(CLEAN)
    assert run_check(_argv(root)) == 0
    assert "repro check: ok" in capsys.readouterr().out


def test_run_findings_exit_nonzero(tree, capsys):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    )
    assert run_check(_argv(root)) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "repro check: FAILED" in out


def test_run_rule_filter(tree):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det002_trigger.py")}
    )
    assert run_check(_argv(root, "--rules", "DET001")) == 0
    assert run_check(_argv(root, "--rules", "DET001,DET002")) == 1


def test_unknown_rule_code_is_an_error(tree):
    root = tree(CLEAN)
    with pytest.raises(SystemExit):
        run_check(_argv(root, "--rules", "NOPE999"))


def test_missing_root_is_an_error(tmp_path):
    with pytest.raises(SystemExit):
        run_check(["run", "--root", str(tmp_path / "nowhere")])


def test_corrupt_baseline_is_an_error(tree):
    root = tree(CLEAN)
    (root / "check_baseline.json").write_text("not json")
    with pytest.raises(SystemExit):
        run_check(_argv(root))


def test_baseline_workflow(tree, capsys):
    """bless -> unjustified under strict -> justify -> fix -> stale."""
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    )
    baseline_path = root / "check_baseline.json"

    assert run_check(["baseline", "--root", str(root)]) == 0
    payload = json.loads(baseline_path.read_text())
    assert payload["format"] == 1 and payload["entries"]
    capsys.readouterr()

    # Blessed but unjustified: plain run passes, strict fails.
    assert run_check(_argv(root)) == 0
    assert run_check(_argv(root, "--strict")) == 1
    assert "without a justification" in capsys.readouterr().out

    for entry in payload["entries"]:
        entry["justification"] = "blessed for the workflow test"
    baseline_path.write_text(json.dumps(payload))
    assert run_check(_argv(root, "--strict")) == 0

    # Regenerating preserves the hand-written justifications.
    assert run_check(["baseline", "--root", str(root)]) == 0
    regenerated = json.loads(baseline_path.read_text())
    assert all(
        entry["justification"] == "blessed for the workflow test"
        for entry in regenerated["entries"]
    )

    # Fix the findings: entries go stale, strict demands their removal.
    (root / "src/repro/mapping/mod.py").write_text("x = 1\n")
    capsys.readouterr()
    assert run_check(_argv(root)) == 0
    assert run_check(_argv(root, "--strict")) == 1
    assert "stale" in capsys.readouterr().out


def test_baseline_never_blesses_syntax_errors(tree, capsys):
    root = tree(
        {"src/repro/mapping/broken.py": fixture_source("chk001_trigger.py")}
    )
    assert run_check(["baseline", "--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "NOT baselined" in out
    assert run_check(_argv(root)) == 1


def test_verbose_lists_blessed_findings(tree, capsys):
    root = tree(
        {"src/repro/mapping/mod.py": fixture_source("det001_trigger.py")}
    )
    run_check(["baseline", "--root", str(root)])
    capsys.readouterr()
    assert run_check(_argv(root, "--verbose")) == 0
    assert "blessed findings" in capsys.readouterr().out


def test_rules_listing(capsys):
    assert run_check(["rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "RACE003", "CACHE002", "DOC002"):
        assert code in out


def test_dispatch_through_main(tree, capsys):
    root = tree(CLEAN)
    assert main(["check", "run", "--root", str(root)]) == 0
    assert "repro check: ok" in capsys.readouterr().out
