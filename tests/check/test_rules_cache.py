"""CACHE0xx cache-token purity: trigger and near-miss fixtures."""

from __future__ import annotations

from repro.check.registry import get_rule
from repro.check.runner import run_checks

from .conftest import fixture_source


def test_cache001_trigger(tree):
    root = tree(
        {"src/repro/dse/space.py": fixture_source("cache001_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("CACHE001")])
    messages = sorted(finding.message for finding in report.new)
    assert len(messages) == 2
    # An out-of-token field and a contract class missing its method.
    assert any("DesignPoint.comment" in m for m in messages)
    assert any("no to_json() method" in m for m in messages)


def test_cache001_clean(tree):
    """Token references, NON_SEMANTIC entries, private and ClassVar
    attributes all satisfy the contract — and the allowlist is fresh."""
    root = tree(
        {"src/repro/dse/space.py": fixture_source("cache001_clean.py")}
    )
    report = run_checks(
        root, rules=[get_rule("CACHE001"), get_rule("CACHE002")]
    )
    assert report.new == []


def test_cache002_stale_allowlist_entry(tree):
    root = tree(
        {"src/repro/dse/space.py": fixture_source("cache002_trigger.py")}
    )
    report = run_checks(root, rules=[get_rule("CACHE002")])
    assert len(report.new) == 1
    assert "'ghost'" in report.new[0].message


def test_contract_is_keyed_to_the_file(tree):
    """The same class at a non-contract path is out of scope."""
    root = tree(
        {"src/repro/dse/other.py": fixture_source("cache001_trigger.py")}
    )
    report = run_checks(
        root, rules=[get_rule("CACHE001"), get_rule("CACHE002")]
    )
    assert report.new == []
