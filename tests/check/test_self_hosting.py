"""The checker checks its own repository.

Two contracts from the issue: the real tree must be clean under the
committed baseline (strict — no unjustified or stale entries either),
and *every* trigger fixture, dropped into a source tree, must fail a
full ``repro check run``.
"""

from __future__ import annotations

import pytest

from repro.check.findings import BASELINE_NAME, Baseline
from repro.check.runner import run_checks

from .conftest import REPO_ROOT, all_fixture_names, destination, fixture_source

#: A minimal clean scaffold so DOC/required-class rules have a tree to
#: scan; each trigger fixture is layered on top of it.
SCAFFOLD = {"src/repro/__init__.py": ""}


def test_repo_tree_is_clean_under_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / BASELINE_NAME)
    report = run_checks(REPO_ROOT, baseline=baseline)
    assert report.broken == []
    rendered = "\n".join(finding.render() for finding in report.new)
    assert not report.new, f"unblessed findings in the repo:\n{rendered}"
    assert not report.failed(strict=True), (
        "stale or unjustified baseline entries: "
        f"{[e.key() for e in (*report.stale, *report.unjustified)]}"
    )


def test_committed_baseline_entries_are_justified():
    baseline = Baseline.load(REPO_ROOT / BASELINE_NAME)
    for entry in baseline.entries:
        assert entry.justification.strip(), entry.key()


@pytest.mark.parametrize("name", all_fixture_names("_trigger.py"))
def test_every_trigger_fixture_fails_a_full_run(tree, name):
    files = dict(SCAFFOLD)
    files[destination(name)] = fixture_source(name)
    report = run_checks(tree(files))
    assert report.failed(), f"{name} placed in src/ did not fail the run"


@pytest.mark.parametrize("name", all_fixture_names("_clean.py"))
def test_every_clean_fixture_passes_its_family(tree, name):
    """Each near-miss fixture is clean under the full rule set (with a
    README documenting its deliberately-used knobs)."""
    files = dict(SCAFFOLD)
    files[destination(name)] = fixture_source(name)
    readme = "REPRO_DOCUMENTED_KNOB and `--documented-flag` are documented.\n"
    report = run_checks(tree(files, readme=readme))
    rendered = "\n".join(finding.render() for finding in report.new)
    assert not report.failed(), f"{name} raised findings:\n{rendered}"
