"""Shared helpers for the checker tests: fixture snippets and fake
repo trees the rules run over."""

from __future__ import annotations

from pathlib import Path

import pytest

#: The real repository root (the tree the self-hosting test scans).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Directory of trigger / near-miss snippet files.
FIXTURES = Path(__file__).parent / "fixtures"

#: Where a fixture must live inside a checked tree for its rule to
#: apply — some rules are keyed to specific files (the required-guarded
#: classes, the token contracts).  Everything else lands in a fresh
#: module under the determinism-scoped mapping package.
DESTINATIONS = {
    "race002_trigger.py": "src/repro/mapping/cache.py",
    "race002_clean.py": "src/repro/mapping/cache.py",
    "cache001_trigger.py": "src/repro/dse/space.py",
    "cache001_clean.py": "src/repro/dse/space.py",
    "cache002_trigger.py": "src/repro/dse/space.py",
}

DEFAULT_DESTINATION = "src/repro/mapping/fixture_mod.py"


def fixture_source(name: str) -> str:
    return (FIXTURES / name).read_text()


def destination(name: str) -> str:
    return DESTINATIONS.get(name, DEFAULT_DESTINATION)


def all_fixture_names(suffix: str) -> list[str]:
    """Fixture file names ending in ``suffix`` (sorted, for parametrize)."""
    return sorted(p.name for p in FIXTURES.glob(f"*{suffix}"))


@pytest.fixture
def tree(tmp_path):
    """Factory: build a fake repo root from ``{relpath: source}`` plus a
    README, and return its path."""

    def build(files: dict[str, str], readme: str = "# fake repo\n") -> Path:
        for rel, content in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        (tmp_path / "README.md").write_text(readme)
        return tmp_path

    return build
