"""Tests for multi-workload scenarios: parsing, aggregation semantics,
and the serial/parallel determinism of scenario DSE runs."""

import pytest

from repro.core.strategy import OverlapMode
from repro.dse import (
    DesignSpace,
    DSERunner,
    ExhaustiveSearch,
    GeneticSearch,
    Scenario,
    WeightedWorkload,
)
from repro.explore import Executor, MappingCache

from ..conftest import make_strided_workload, make_tiny_workload

SPACE = DesignSpace(
    accelerators=("meta_proto_like_df",),
    tile_x=(4, 16),
    tile_y=(4, 18),
    modes=(OverlapMode.FULLY_CACHED,),
)


def executor(fast_config, jobs=1):
    return Executor(jobs=jobs, search_config=fast_config, cache=MappingCache())


class TestScenarioParsing:
    def test_parse_names_and_weights(self):
        scenario = Scenario.parse("resnet18:3,fsrcnn,mccnn:0.5")
        assert scenario.workload_names() == ("resnet18", "fsrcnn", "mccnn")
        assert [m.weight for m in scenario.members] == [3.0, 1.0, 0.5]
        assert scenario.total_weight == 4.5
        assert scenario.describe() == "resnet18:3,fsrcnn,mccnn:0.5"

    def test_default_name_joins_members(self):
        assert Scenario.parse("a,b").name == "a+b"
        assert Scenario.parse("a,b", ).token() == [["a", 1.0], ["b", 1.0]]

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="empty scenario"):
            Scenario.parse(" , ")
        with pytest.raises(ValueError, match="weight"):
            Scenario.parse("a:heavy")
        with pytest.raises(ValueError):
            Scenario.parse("a:0")  # weights must be positive

    def test_parse_rejects_empty_names(self):
        with pytest.raises(ValueError, match="no workload name"):
            Scenario.parse(":2")
        with pytest.raises(ValueError, match="no workload name"):
            Scenario.parse("a,:3")

    def test_parse_rejects_trailing_colon(self):
        """'resnet18:' used to silently mean weight 1.0."""
        with pytest.raises(ValueError, match="without a\n?.*weight"):
            Scenario.parse("resnet18:")
        with pytest.raises(ValueError, match="':'"):
            Scenario.parse("a:1, b:")

    def test_parse_rejects_non_positive_and_non_finite_weights(self):
        for bad in ("a:0", "a:-2", "a:nan", "a:inf"):
            with pytest.raises(ValueError, match="positive finite"):
                Scenario.parse(bad)

    def test_parse_names_offending_member(self):
        with pytest.raises(ValueError, match="'b:-1'"):
            Scenario.parse("a:2,b:-1")

    def test_of_validates_lengths_and_duplicates(self):
        with pytest.raises(ValueError, match="weights"):
            Scenario.of(("a", "b"), weights=(1.0,))
        with pytest.raises(ValueError, match="duplicate"):
            Scenario.of(("a", "a"))
        with pytest.raises(ValueError, match="at least one"):
            Scenario(members=())

    def test_weighted_workload_accepts_objects(self):
        workload = make_tiny_workload()
        member = WeightedWorkload(workload=workload, weight=2.0)
        assert member.name == workload.name
        with pytest.raises(ValueError):
            WeightedWorkload(workload=workload, weight=-1.0)


class TestScenarioRuns:
    def test_aggregate_is_weighted_average_of_member_runs(self, fast_config):
        """The scenario objective vector of a design must equal the
        weight-normalized average of per-workload runs of that design."""
        tiny = make_tiny_workload()
        strided = make_strided_workload()
        scenario = Scenario.of((tiny, strided), weights=(3.0, 1.0))

        def run(workload):
            runner = DSERunner(
                SPACE,
                workload,
                ("energy", "latency"),
                executor(fast_config),
                seed=0,
            )
            return runner.run(ExhaustiveSearch())

        combined = run(scenario)
        alone = {name: run(wl) for name, wl in (("t", tiny), ("s", strided))}
        assert combined.evaluations == SPACE.size
        for key, (point, values, violation) in combined.evaluated.items():
            vt = alone["t"].evaluated[key][1]
            vs = alone["s"].evaluated[key][1]
            for got, a, b in zip(values, vt, vs):
                assert got == pytest.approx((3.0 * a + 1.0 * b) / 4.0)
            assert violation == 0.0

    def test_scenario_runner_name_and_stamp(self, fast_config):
        scenario = Scenario.of(
            (make_tiny_workload(), make_strided_workload())
        )
        runner = DSERunner(
            SPACE, scenario, ("energy",), executor(fast_config)
        )
        assert runner.workload_name == "tiny+strided"
        stamp = runner._checkpoint_stamp()
        assert stamp["workload"] == [["tiny", 1.0], ["strided", 1.0]]

    def test_scenario_serial_equals_parallel(self, fast_config):
        """The acceptance property: a multi-workload genetic run is
        bit-identical between --jobs 1 and --jobs 4 (frontier entries,
        violations, and per-generation hypervolume)."""
        scenario = Scenario.of(
            (make_tiny_workload(), make_strided_workload()),
            weights=(1.0, 2.0),
        )

        def run(jobs):
            runner = DSERunner(
                SPACE,
                scenario,
                ("energy", "latency"),
                executor(fast_config, jobs=jobs),
                seed=0,
            )
            return runner.run(GeneticSearch(population=4, generations=2))

        serial, parallel = run(1), run(4)
        assert serial.evaluations == parallel.evaluations
        assert [
            (e.point, e.values, e.violation) for e in serial.frontier.entries
        ] == [
            (e.point, e.values, e.violation)
            for e in parallel.frontier.entries
        ]
        assert [g.hypervolume for g in serial.generations] == [
            g.hypervolume for g in parallel.generations
        ]


class TestScenarioPartitionDecoding:
    """Partition genes are segment-relative: each scenario member
    decodes the same genome against its own segment table."""

    def test_segment_tables_resolve_members(self):
        scenario = Scenario.of((make_tiny_workload(), make_strided_workload()))
        tables = scenario.segment_tables()
        assert tables[0] == (("L1",), ("L2",), ("L3",))
        assert len(tables) == 2

    def test_scenario_run_decodes_per_member(self, fast_config):
        """A partitioned scenario design must score the weight-average
        of per-member runs of the *member-decoded* explicit strategies."""
        from repro.core.scheduler import DepthFirstEngine
        from repro.dse import PartitionAxis
        from repro.hardware.zoo import get_accelerator

        tiny = make_tiny_workload()
        strided = make_strided_workload()
        scenario = Scenario.of((tiny, strided), weights=(2.0, 1.0))
        space = DesignSpace(
            accelerators=("meta_proto_like_df",),
            tile_x=(8,),
            tile_y=(8,),
            modes=(OverlapMode.FULLY_CACHED,),
            partitions=PartitionAxis(segments=3, candidates=((1,), ())),
        )
        runner = DSERunner(
            space, scenario, ("energy",), executor(fast_config), seed=0
        )
        result = runner.run(ExhaustiveSearch())
        assert result.evaluations == space.size

        engine = DepthFirstEngine(
            get_accelerator("meta_proto_like_df"), fast_config
        )
        tables = scenario.segment_tables()
        for point, values, _ in result.evaluated.values():
            expected = (
                2.0 * engine.evaluate(
                    tiny, point.strategy(segments=tables[0])
                ).total.energy_pj
                + 1.0 * engine.evaluate(
                    strided, point.strategy(segments=tables[1])
                ).total.energy_pj
            ) / 3.0
            assert values[0] == pytest.approx(expected)
