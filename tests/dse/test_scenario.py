"""Tests for multi-workload scenarios: parsing, aggregation semantics,
and the serial/parallel determinism of scenario DSE runs."""

import pytest

from repro.core.strategy import OverlapMode
from repro.dse import (
    DesignSpace,
    DSERunner,
    ExhaustiveSearch,
    GeneticSearch,
    Scenario,
    WeightedWorkload,
)
from repro.explore import Executor, MappingCache

from ..conftest import make_strided_workload, make_tiny_workload

SPACE = DesignSpace(
    accelerators=("meta_proto_like_df",),
    tile_x=(4, 16),
    tile_y=(4, 18),
    modes=(OverlapMode.FULLY_CACHED,),
)


def executor(fast_config, jobs=1):
    return Executor(jobs=jobs, search_config=fast_config, cache=MappingCache())


class TestScenarioParsing:
    def test_parse_names_and_weights(self):
        scenario = Scenario.parse("resnet18:3,fsrcnn,mccnn:0.5")
        assert scenario.workload_names() == ("resnet18", "fsrcnn", "mccnn")
        assert [m.weight for m in scenario.members] == [3.0, 1.0, 0.5]
        assert scenario.total_weight == 4.5
        assert scenario.describe() == "resnet18:3,fsrcnn,mccnn:0.5"

    def test_default_name_joins_members(self):
        assert Scenario.parse("a,b").name == "a+b"
        assert Scenario.parse("a,b", ).token() == [["a", 1.0], ["b", 1.0]]

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="empty scenario"):
            Scenario.parse(" , ")
        with pytest.raises(ValueError, match="weight"):
            Scenario.parse("a:heavy")
        with pytest.raises(ValueError):
            Scenario.parse("a:0")  # weights must be positive

    def test_of_validates_lengths_and_duplicates(self):
        with pytest.raises(ValueError, match="weights"):
            Scenario.of(("a", "b"), weights=(1.0,))
        with pytest.raises(ValueError, match="duplicate"):
            Scenario.of(("a", "a"))
        with pytest.raises(ValueError, match="at least one"):
            Scenario(members=())

    def test_weighted_workload_accepts_objects(self):
        workload = make_tiny_workload()
        member = WeightedWorkload(workload=workload, weight=2.0)
        assert member.name == workload.name
        with pytest.raises(ValueError):
            WeightedWorkload(workload=workload, weight=-1.0)


class TestScenarioRuns:
    def test_aggregate_is_weighted_average_of_member_runs(self, fast_config):
        """The scenario objective vector of a design must equal the
        weight-normalized average of per-workload runs of that design."""
        tiny = make_tiny_workload()
        strided = make_strided_workload()
        scenario = Scenario.of((tiny, strided), weights=(3.0, 1.0))

        def run(workload):
            runner = DSERunner(
                SPACE,
                workload,
                ("energy", "latency"),
                executor(fast_config),
                seed=0,
            )
            return runner.run(ExhaustiveSearch())

        combined = run(scenario)
        alone = {name: run(wl) for name, wl in (("t", tiny), ("s", strided))}
        assert combined.evaluations == SPACE.size
        for key, (point, values, violation) in combined.evaluated.items():
            vt = alone["t"].evaluated[key][1]
            vs = alone["s"].evaluated[key][1]
            for got, a, b in zip(values, vt, vs):
                assert got == pytest.approx((3.0 * a + 1.0 * b) / 4.0)
            assert violation == 0.0

    def test_scenario_runner_name_and_stamp(self, fast_config):
        scenario = Scenario.of(
            (make_tiny_workload(), make_strided_workload())
        )
        runner = DSERunner(
            SPACE, scenario, ("energy",), executor(fast_config)
        )
        assert runner.workload_name == "tiny+strided"
        stamp = runner._checkpoint_stamp()
        assert stamp["workload"] == [["tiny", 1.0], ["strided", 1.0]]

    def test_scenario_serial_equals_parallel(self, fast_config):
        """The acceptance property: a multi-workload genetic run is
        bit-identical between --jobs 1 and --jobs 4 (frontier entries,
        violations, and per-generation hypervolume)."""
        scenario = Scenario.of(
            (make_tiny_workload(), make_strided_workload()),
            weights=(1.0, 2.0),
        )

        def run(jobs):
            runner = DSERunner(
                SPACE,
                scenario,
                ("energy", "latency"),
                executor(fast_config, jobs=jobs),
                seed=0,
            )
            return runner.run(GeneticSearch(population=4, generations=2))

        serial, parallel = run(1), run(4)
        assert serial.evaluations == parallel.evaluations
        assert [
            (e.point, e.values, e.violation) for e in serial.frontier.entries
        ] == [
            (e.point, e.values, e.violation)
            for e in parallel.frontier.entries
        ]
        assert [g.hypervolume for g in serial.generations] == [
            g.hypervolume for g in parallel.generations
        ]
