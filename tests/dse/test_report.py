"""Tests for the frontier text/CSV reports in :mod:`repro.analysis`."""

import csv
import io

from repro.analysis import frontier_csv, frontier_table
from repro.core.strategy import OverlapMode
from repro.dse import DesignPoint, ParetoFrontier


def sample_frontier():
    frontier = ParetoFrontier(("energy", "latency"))
    frontier.offer(
        DesignPoint("meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED),
        (2.0e9, 1.0e6),
    )
    frontier.offer(
        DesignPoint(
            "edge_tpu_like_df", 60, 72, OverlapMode.H_CACHED_V_RECOMPUTE, 2
        ),
        (1.0e9, 3.0e6),
    )
    return frontier


class TestFrontierTable:
    def test_header_and_rows(self):
        text = frontier_table(sample_frontier())
        lines = text.splitlines()
        assert "energy [mJ]" in lines[0] and "latency [Mcycles]" in lines[0]
        assert len(lines) == 3  # header + two entries
        assert "edge_tpu_like_df h_cached_v_recompute 60x72 fuse<=2" in text
        # Display scaling: 2.0e9 pJ = 2 mJ.
        assert "2" in lines[1]

    def test_rows_sorted_by_first_objective(self):
        lines = frontier_table(sample_frontier()).splitlines()
        assert lines[1].startswith("edge_tpu_like_df")
        assert lines[2].startswith("meta_proto_like_df")

    def test_empty_frontier(self):
        assert "(empty frontier)" in frontier_table(ParetoFrontier(("energy",)))


class TestFrontierCsv:
    def test_round_trippable_rows(self):
        text = frontier_csv(sample_frontier())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["accelerator"] == "edge_tpu_like_df"
        assert rows[0]["fuse_depth"] == "2"
        assert float(rows[0]["energy"]) == 1.0e9
        assert rows[1]["fuse_depth"] == ""  # automatic partition
        assert float(rows[1]["latency"]) == 1.0e6

    def test_header_names_axes_then_objectives(self):
        header = frontier_csv(sample_frontier()).splitlines()[0]
        assert header == (
            "accelerator,tile_x,tile_y,mode,fuse_depth,partition,"
            "energy,latency,violation"
        )

    def test_partition_column_renders_winning_cuts(self):
        frontier = ParetoFrontier(("energy",))
        frontier.offer(
            DesignPoint(
                "meta_proto_like_df", 4, 4, OverlapMode.FULLY_CACHED,
                partition=(1, 3),
            ),
            (1.0e9,),
        )
        frontier.offer(
            DesignPoint(
                "meta_proto_like_df", 8, 4, OverlapMode.FULLY_CACHED,
                partition=(),
            ),
            (1.0e9,),
        )
        rows = list(csv.DictReader(io.StringIO(frontier_csv(frontier))))
        cells = {r["tile_x"]: r["partition"] for r in rows}
        assert cells == {"4": "1|3", "8": "all"}
        assert "cuts=[1|3]" in frontier_table(frontier)
