"""Property-based tests for the Pareto/dominance machinery.

Cases are generated with seeded ``random.Random`` instances (no extra
dependencies), so every run exercises the same few hundred scenarios
deterministically.  The invariants under test are the ones the DSE
correctness rests on:

* a frontier never contains a (constrained-)dominated pair;
* merging frontiers is order-insensitive and equivalent to offering
  every point into one frontier;
* with a fixed reference point, the frontier hypervolume is monotone
  non-decreasing as points are offered;
* non-dominated rank 0 matches a brute-force non-dominated set, and
  constrained ranks never place an infeasible design before a feasible
  one.
"""

import random

from repro.core.strategy import OverlapMode
from repro.dse import (
    ParetoFrontier,
    constrained_dominates,
    crowding_distances,
    dominates,
    nondominated_ranks,
)
from repro.dse.space import DesignPoint

#: How many random scenarios each property replays.
CASES = 60


def make_point(index: int) -> DesignPoint:
    """Distinct, deterministic designs (identity only; values are
    synthetic)."""
    modes = tuple(OverlapMode)
    return DesignPoint(
        accelerator="meta_proto_like_df",
        tile_x=1 + index,
        tile_y=1 + (index % 7),
        mode=modes[index % len(modes)],
        fuse_depth=None if index % 3 == 0 else index % 3,
    )


def random_offers(rng: random.Random, dims: int, count: int):
    """Random (point, values, violation) triples; a small integer value
    grid provokes ties, duplicates and dominance chains."""
    offers = []
    for i in range(count):
        values = tuple(float(rng.randrange(8)) for _ in range(dims))
        violation = rng.choice((0.0, 0.0, 0.0, 0.5, 1.5, float(rng.randrange(4))))
        offers.append((make_point(i), values, violation))
    return offers


class TestFrontierInvariants:
    def test_never_contains_dominated_pair(self):
        for seed in range(CASES):
            rng = random.Random(seed)
            dims = rng.choice((1, 2, 3))
            frontier = ParetoFrontier([f"o{i}" for i in range(dims)])
            for point, values, violation in random_offers(
                rng, dims, rng.randrange(2, 30)
            ):
                frontier.offer(point, values, violation)
            entries = frontier.entries
            for a in entries:
                for b in entries:
                    assert not constrained_dominates(
                        a.values, b.values, a.violation, b.violation
                    ), (seed, a, b)

    def test_feasible_entry_evicts_all_infeasible(self):
        for seed in range(CASES):
            rng = random.Random(1000 + seed)
            frontier = ParetoFrontier(("o0", "o1"))
            offers = random_offers(rng, 2, rng.randrange(2, 25))
            for point, values, violation in offers:
                frontier.offer(point, values, violation)
            if any(v == 0.0 for _, _, v in offers):
                assert all(e.feasible for e in frontier.entries), seed
            else:
                min_violation = min(v for _, _, v in offers)
                assert all(
                    e.violation == min_violation for e in frontier.entries
                ), seed

    def test_accepted_counts_are_consistent(self):
        for seed in range(CASES):
            rng = random.Random(2000 + seed)
            frontier = ParetoFrontier(("o0", "o1"))
            offers = random_offers(rng, 2, 20)
            for point, values, violation in offers:
                frontier.offer(point, values, violation)
            assert frontier.offered == len(offers)
            assert len(frontier) == frontier.accepted - frontier.pruned


class TestMergeProperties:
    def test_merge_is_order_insensitive(self):
        for seed in range(CASES):
            rng = random.Random(3000 + seed)
            dims = rng.choice((1, 2))
            objectives = [f"o{i}" for i in range(dims)]
            offers = random_offers(rng, dims, rng.randrange(2, 24))
            split = rng.randrange(len(offers) + 1)

            def build(chunk):
                f = ParetoFrontier(objectives)
                for point, values, violation in chunk:
                    f.offer(point, values, violation)
                return f

            ab = build(offers[:split])
            ab.merge(build(offers[split:]))
            ba = build(offers[split:])
            ba.merge(build(offers[:split]))
            direct = build(offers)
            assert ab.entries == ba.entries == direct.entries, seed

    def test_merge_is_idempotent(self):
        for seed in range(0, CASES, 4):
            rng = random.Random(4000 + seed)
            offers = random_offers(rng, 2, 12)
            frontier = ParetoFrontier(("o0", "o1"))
            for point, values, violation in offers:
                frontier.offer(point, values, violation)
            other = ParetoFrontier(("o0", "o1"))
            other.merge(frontier)
            before = other.entries
            assert other.merge(frontier) == 0
            assert other.entries == before


class TestHypervolumeMonotonicity:
    def test_monotone_as_points_are_offered(self):
        reference = (10.0, 10.0)
        for seed in range(CASES):
            rng = random.Random(5000 + seed)
            frontier = ParetoFrontier(("o0", "o1"))
            previous = 0.0
            for point, values, violation in random_offers(rng, 2, 25):
                frontier.offer(point, values, violation)
                current = frontier.hypervolume(reference)
                assert current >= previous, (seed, point, values)
                previous = current

    def test_single_objective_monotone_too(self):
        reference = (10.0,)
        for seed in range(0, CASES, 3):
            rng = random.Random(6000 + seed)
            frontier = ParetoFrontier(("o0",))
            previous = 0.0
            for point, values, violation in random_offers(rng, 1, 15):
                frontier.offer(point, values, violation)
                current = frontier.hypervolume(reference)
                assert current >= previous, seed
                previous = current


class TestRankProperties:
    def test_rank_zero_matches_bruteforce_front(self):
        for seed in range(CASES):
            rng = random.Random(7000 + seed)
            dims = rng.choice((1, 2, 3))
            values = [
                tuple(float(rng.randrange(6)) for _ in range(dims))
                for _ in range(rng.randrange(1, 20))
            ]
            ranks = nondominated_ranks(values)
            brute = {
                i
                for i, v in enumerate(values)
                if not any(dominates(w, v) for w in values)
            }
            assert {i for i, r in enumerate(ranks) if r == 0} == brute, seed

    def test_constrained_ranks_put_feasible_first(self):
        for seed in range(CASES):
            rng = random.Random(8000 + seed)
            offers = random_offers(rng, 2, rng.randrange(2, 20))
            values = [v for _, v, _ in offers]
            violations = [x for _, _, x in offers]
            ranks = nondominated_ranks(values, violations)
            feasible = [r for r, x in zip(ranks, violations) if x == 0.0]
            infeasible = [r for r, x in zip(ranks, violations) if x > 0.0]
            if feasible and infeasible:
                assert max(feasible) < min(infeasible), seed

    def test_crowding_boundary_points_are_infinite(self):
        for seed in range(0, CASES, 5):
            rng = random.Random(9000 + seed)
            values = [
                (float(rng.randrange(10)), float(rng.randrange(10)))
                for _ in range(rng.randrange(2, 12))
            ]
            distances = crowding_distances(values)
            for m in (0, 1):
                extremes = (
                    min(range(len(values)), key=lambda i: values[i][m]),
                    max(range(len(values)), key=lambda i: values[i][m]),
                )
                for i in extremes:
                    # The sort in crowding_distances may pick a tied
                    # extreme; some point at each extreme value is inf.
                    tied = [
                        j
                        for j in range(len(values))
                        if values[j][m] == values[i][m]
                    ]
                    assert any(
                        distances[j] == float("inf") for j in tied
                    ), seed
