"""Unit tests for the search strategies, driven with synthetic
objective values (no cost-model evaluations)."""

import random

import pytest

from repro.core.strategy import OverlapMode
from repro.dse import (
    DesignSpace,
    ExhaustiveSearch,
    GeneticSearch,
    RandomSearch,
    create_strategy,
)


def space(**overrides):
    base = dict(
        accelerators=("meta_proto_like_df",),
        tile_x=(1, 4, 16, 60),
        tile_y=(1, 4, 18, 72),
        modes=tuple(OverlapMode),
        fuse_depths=(None, 2),
    )
    base.update(overrides)
    return DesignSpace(**base)


def fake_values(point):
    """A deterministic two-objective landscape: small tiles are 'fast',
    big tiles are 'efficient', so the front is a real trade-off."""
    area = point.tile_x * point.tile_y
    return (1e6 / (area + 1), float(area))


def drive(strategy, sp, seed=0, max_rounds=50):
    """Run a strategy against the synthetic landscape; returns the
    proposal batches."""
    rng = random.Random(seed)
    strategy.reset(sp, rng)
    batches = []
    for _ in range(max_rounds):
        batch = strategy.propose()
        if not batch:
            break
        batches.append(batch)
        unique = {p.key(): p for p in batch}
        strategy.observe(
            [(p, fake_values(p), 0.0) for p in unique.values()]
        )
    return batches


class TestExhaustive:
    def test_proposes_entire_space_once(self):
        sp = space()
        batches = drive(ExhaustiveSearch(), sp)
        assert len(batches) == 1
        assert batches[0] == list(sp.enumerate())


class TestRandom:
    def test_samples_without_replacement(self):
        sp = space()
        batches = drive(RandomSearch(samples=20), sp)
        assert len(batches) == 1
        keys = [p.key() for p in batches[0]]
        assert len(keys) == 20 and len(set(keys)) == 20
        assert all(p in sp for p in batches[0])

    def test_caps_at_space_size(self):
        sp = space(tile_x=(4,), tile_y=(4,), fuse_depths=(None,))
        (batch,) = drive(RandomSearch(samples=99), sp)
        assert len(batch) == sp.size

    def test_seed_determinism(self):
        sp = space()
        a = drive(RandomSearch(samples=10), sp, seed=3)
        b = drive(RandomSearch(samples=10), sp, seed=3)
        c = drive(RandomSearch(samples=10), sp, seed=4)
        assert a == b
        assert a != c

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            RandomSearch(samples=0)


class TestGenetic:
    def test_generation_count_and_batch_size(self):
        sp = space()
        batches = drive(GeneticSearch(population=6, generations=4), sp)
        assert len(batches) == 4
        assert all(len(batch) == 6 for batch in batches)

    def test_offspring_stay_inside_space(self):
        sp = space()
        for batch in drive(GeneticSearch(population=8, generations=5), sp):
            assert all(p in sp for p in batch)

    def test_seed_determinism(self):
        sp = space()
        a = drive(GeneticSearch(population=6, generations=4), sp, seed=0)
        b = drive(GeneticSearch(population=6, generations=4), sp, seed=0)
        assert a == b

    def test_different_seeds_diverge(self):
        sp = space()
        a = drive(GeneticSearch(population=6, generations=4), sp, seed=0)
        b = drive(GeneticSearch(population=6, generations=4), sp, seed=1)
        assert a != b

    def test_selection_prefers_nondominated(self):
        """After convergence pressure, the surviving pool should be
        enriched in low-rank (near-front) designs of the landscape."""
        sp = space()
        strategy = GeneticSearch(population=6, generations=6)
        drive(strategy, sp, seed=0)
        # The pool is the elite; every member must be evaluated and
        # bounded by the population size.
        assert 0 < len(strategy._pool) <= 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GeneticSearch(population=1)
        with pytest.raises(ValueError):
            GeneticSearch(generations=0)
        with pytest.raises(ValueError):
            GeneticSearch(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GeneticSearch(mutation_rate=-0.1)


class TestGeneticOverPartitionGenes:
    """The first variable-length axis: partition-aware breeding must
    stay deterministic and only ever produce valid genomes."""

    def partition_space(self, **overrides):
        from repro.dse import PartitionAxis

        base = dict(
            accelerators=("meta_proto_like_df",),
            tile_x=(1, 4, 16),
            tile_y=(1, 4, 18),
            modes=(OverlapMode.FULLY_CACHED, OverlapMode.FULLY_RECOMPUTE),
            partitions=PartitionAxis(segments=5),
        )
        base.update(overrides)
        return DesignSpace(**base)

    def test_offspring_stay_inside_space(self):
        sp = self.partition_space()
        for batch in drive(GeneticSearch(population=8, generations=5), sp):
            assert all(p in sp for p in batch)
            for p in batch:
                assert p.fuse_depth is None

    def test_search_recombines_partitions(self):
        """Across a run the search must actually explore the partition
        axis, not just the auto rule."""
        sp = self.partition_space()
        batches = drive(GeneticSearch(population=8, generations=6), sp)
        partitions = {p.partition for batch in batches for p in batch}
        assert len(partitions) > 2

    def test_seed_determinism(self):
        sp = self.partition_space()
        a = drive(GeneticSearch(population=6, generations=4), sp, seed=0)
        b = drive(GeneticSearch(population=6, generations=4), sp, seed=0)
        c = drive(GeneticSearch(population=6, generations=4), sp, seed=1)
        assert a == b
        assert a != c

    def test_candidates_mode(self):
        from repro.dse import PartitionAxis

        sp = self.partition_space(
            partitions=PartitionAxis(
                segments=5, candidates=(None, (1,), (2, 4))
            )
        )
        batches = drive(GeneticSearch(population=6, generations=4), sp)
        for batch in batches:
            for p in batch:
                assert p.partition in (None, (1,), (2, 4))

    def test_random_and_exhaustive_cover_partition_space(self):
        sp = self.partition_space(
            tile_x=(4,), tile_y=(4,), modes=(OverlapMode.FULLY_CACHED,)
        )
        (batch,) = drive(ExhaustiveSearch(), sp)
        assert len(batch) == sp.size
        assert len({p.key() for p in batch}) == sp.size
        (sampled,) = drive(RandomSearch(samples=10), sp, seed=3)
        assert len(sampled) == 10
        assert all(p in sp for p in sampled)


class TestCreateStrategy:
    def test_by_name(self):
        assert isinstance(create_strategy("exhaustive"), ExhaustiveSearch)
        assert isinstance(create_strategy("random", samples=5), RandomSearch)
        genetic = create_strategy("genetic", population=4, generations=2)
        assert isinstance(genetic, GeneticSearch)
        assert genetic.population == 4 and genetic.generations == 2

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            create_strategy("annealing")
